"""The IR interpreter: executes modules on the simulated platform.

One :class:`Machine` owns the whole simulated platform for a program
run: CPU memory (globals/heap/stack), the GPU device, the shared
cost-model clock, and the external-function table.  CPU code runs by
direct interpretation against CPU memory; ``launch`` instructions run
kernel grids thread-by-thread against *device* memory, charging GPU
time for the modelled parallel execution.

Address spaces are strictly separate: kernels cannot touch host
memory, host code cannot touch device memory, and kernels may not
store pointers (a documented CGCM restriction).

Three execution engines share this machine model:

* ``engine="tree"`` -- the tree-walking interpreter in
  :meth:`Machine._execute`: the reference semantics.
* ``engine="compiled"`` -- the closure compiler in
  :mod:`repro.interp.codegen`: each function is translated once into
  flat per-block lists of zero-argument closures and cached on the
  machine.
* ``engine="source"`` -- the source compiler in
  :mod:`repro.interp.srcgen`: each function is emitted as real Python
  source (registers as locals, blocks as a ``while``-dispatched jump
  table, typed-memoryview loads/stores), ``compile()``-d, and cached
  on the machine.

Both ahead-of-time engines must be observationally *and*
clock-for-clock indistinguishable from the tree-walker (see
``tests/interp/test_engine_equivalence.py``).
"""

from __future__ import annotations

import math
import struct
import weakref
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..errors import CgcmUnsupportedError, InterpError
from ..gpu.device import GpuDevice
from ..gpu.timing import (CostModel, LANE_CPU, LANE_GPU, STREAM_COMPUTE,
                          STREAM_D2H, STREAM_H2D, SimClock)
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                               CondBranch, GetElementPtr, LaunchKernel, Load,
                               Return, Select, Store, Unreachable)
from ..ir.module import Module
from ..ir.types import ArrayType, FloatType, IntType, PointerType, StructType
from ..ir.values import (Argument, Constant, GlobalVariable, UndefValue,
                         Value)
from ..memory.flatmem import FlatMemory
from ..memory.heap import Heap
from ..memory.layout import GlobalLayout, STACK_BASE, make_cpu_memory
from .externals import (ExitProgram, GPU_SAFE, call_cost, default_externals,
                        external_signatures)

#: Modelled op cost per interpreted instruction class.
_OP_COSTS = {
    "load": 2, "store": 2, "gep": 1, "binop": 1, "cmp": 1, "cast": 1,
    "select": 1, "br": 1, "cbr": 1, "ret": 1, "alloca": 2, "call": 5,
    "launch": 5, "unreachable": 0,
}
_DIV_EXTRA = 8

MAX_CALL_DEPTH = 256

#: Engines :class:`Machine` can execute IR with.
ENGINES = ("tree", "compiled", "source")

_F32_STRUCT = struct.Struct("<f")


class Frame:
    """One activation record."""

    __slots__ = ("function", "regs", "sp_base", "frame_id")

    def __init__(self, function: Function, frame_id: int, sp_base: int):
        self.function = function
        #: Register file; materialized by the tree-walker only (the
        #: ahead-of-time engines keep registers in Python locals).
        self.regs: Optional[Dict[Value, Union[int, float]]] = None
        self.sp_base = sp_base
        self.frame_id = frame_id


#: Memoized :func:`needs_frame` verdicts (weak: fuzz corpora churn
#: through throwaway functions).
_NEEDS_FRAME: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def needs_frame(fn: Function) -> bool:
    """Whether activations of ``fn`` can touch their own frame.

    Only stack allocation reads the current frame: ``alloca``
    instructions register into it, and the ``declareAlloca`` runtime
    entry point resolves ``Machine.current_frame``.  Everything else
    -- including nested calls, which push their own frames -- is
    frame-oblivious, so the ahead-of-time engines skip the frame
    push/pop (but not the frame-id sequencing or the exit-hook
    sweep) for functions without either.
    """
    cached = _NEEDS_FRAME.get(fn)
    if cached is None:
        cached = any(
            isinstance(inst, Alloca)
            or (isinstance(inst, Call) and inst.callee.is_declaration
                and inst.callee.name == "declareAlloca")
            for inst in fn.instructions())
        _NEEDS_FRAME[fn] = cached
    return cached


class Machine:
    """Interprets one module on the simulated CPU+GPU platform."""

    def __init__(self, module: Module,
                 cost_model: Optional[CostModel] = None,
                 record_events: bool = False,
                 engine: str = "tree",
                 streams: bool = False,
                 fault_injector: Optional["object"] = None,
                 device_heap_limit: Optional[int] = None):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of "
                             f"{ENGINES}")
        self.module = module
        self.engine = engine
        #: Overlap-aware timing discipline: kernel launches become
        #: asynchronous (scheduled on the "compute" stream) and the
        #: runtime may issue transfers on the "h2d"/"d2h" streams.
        self.streams = streams
        self.clock = SimClock(cost_model, record_events)
        if streams:
            self.clock.enable_streams()
        self.cpu_memory = make_cpu_memory()
        self.layout = GlobalLayout(module)
        self.layout.install(self.cpu_memory)
        self.heap = Heap(self.cpu_memory, "heap")
        self.device = GpuDevice(self.clock, fault_injector=fault_injector,
                                heap_limit=device_heap_limit)
        self.device.load_module(self.layout)
        self.externals = default_externals()
        self.external_types = external_signatures()
        self.stdout: List[str] = []
        self.rng_state = 0x9E3779B97F4A7C15
        self.mode = "cpu"
        self._cpu_sp = STACK_BASE
        self._gpu_sp = self.device.stack_base
        self._frame_counter = 0
        self._depth = 0
        self._frame_stack: List[Frame] = []
        self._pending_cpu_ops = 0
        self._gpu_ops = 0
        #: Dynamic count of interpreted IR instructions (both engines;
        #: the compiled engine bumps it once per basic-block entry).
        self.executed_instructions = 0
        #: Compiled-code cache: (function, mode, hooked) -> CompiledFunction.
        self._compiled: Dict[tuple, Callable] = {}
        self.kernel_launch_count = 0
        #: Admission gate run before each launch, set by the resilient
        #: runtime.  Called as ``gate(kernel, grid, args)``; it ensures
        #: operand residency (evicting/restoring under memory pressure)
        #: and performs the driver launch call with retry.  Returns
        #: None to proceed on the GPU, or the reverse-translated host
        #: argument list to degrade this launch to the CPU path.
        self.launch_gate: Optional[Callable] = None
        #: Hooks fired before each kernel launch:
        #: ``hook(machine, kernel, grid, args)``.
        self.launch_hooks: List[Callable] = []
        #: Hooks fired after a GPU launch's modelled duration is known:
        #: ``hook(machine, kernel_name, grid, total_ops, max_ops,
        #: duration)``.  CPU-fallback launches never fire these (their
        #: cost lands on the CPU lane).  The serve layer records per-
        #: launch costs here to re-price batched grid dispatches.
        self.launch_cost_hooks: List[Callable] = []
        #: Hooks fired when a function returns: ``hook(machine, frame_id)``.
        self.frame_exit_hooks: List[Callable] = []
        #: Hooks fired on heap activity: ``hook(machine, kind, addr, size)``.
        self.heap_hooks: List[Callable] = []
        #: Hooks fired before every interpreted load/store:
        #: ``hook(machine, kind, address, size)`` with kind "load" or
        #: "store".  Empty by default so the interpreter's hot path only
        #: pays one truthiness check; the sanitizer attaches here.
        self.mem_hooks: List[Callable] = []
        #: Multi-GPU grid placement: called as ``scheduler(kernel,
        #: grid, args, total_ops, max_ops, duration)`` after the grid's
        #: cost is known.  Returning True means the scheduler placed
        #: the launch's modelled span(s) itself (possibly sharded
        #: across devices) and the default single-device charging is
        #: skipped.  Set by ``repro.multigpu.MultiGpuCoordinator``.
        self.grid_scheduler: Optional[Callable] = None

    # -- plumbing ----------------------------------------------------------

    @property
    def mode(self) -> str:
        """Which code is executing: "cpu", "gpu", or a baseline mode."""
        return self._mode

    @mode.setter
    def mode(self, value: str) -> None:
        # The active address space is cached on every mode switch so
        # the per-access ``memory`` read is one attribute load instead
        # of a string compare (mode switches are rare; accesses are
        # the hottest path in the interpreter).
        self._mode = value
        self._active_memory = self.device.memory if value == "gpu" \
            else self.cpu_memory

    @property
    def memory(self) -> FlatMemory:
        """The address space current code executes against.

        Mode "cpu" and "ie" (the inspector-executor baseline's oracle
        placement) use host memory; mode "gpu" uses device memory.
        """
        return self._active_memory

    @property
    def in_kernel(self) -> bool:
        return self._mode != "cpu"

    def charge_ops(self, ops: int) -> None:
        if self.mode == "cpu":
            self._pending_cpu_ops += ops
        else:
            self._gpu_ops += ops

    def flush_cpu(self) -> None:
        """Convert accumulated CPU ops into clock time."""
        if self._pending_cpu_ops:
            self.clock.advance(LANE_CPU,
                               self.clock.model.cpu_time(self._pending_cpu_ops),
                               "cpu")
            self._pending_cpu_ops = 0

    def notify_heap(self, kind: str, address: int, size: int) -> None:
        for hook in self.heap_hooks:
            hook(self, kind, address, size)

    def global_address(self, name: str) -> int:
        """Host address of a global (for tests and the harness)."""
        return self.layout.address_of(name)

    def read_global(self, name: str) -> bytes:
        gv = self.module.get_global(name)
        return self.cpu_memory.read(self.layout.address_of(name), gv.size)

    # -- entry points --------------------------------------------------------

    def run(self, entry: str = "main",
            args: Sequence[Union[int, float]] = ()) -> int:
        """Execute ``entry`` to completion; returns its exit code."""
        fn = self.module.get_function(entry)
        try:
            result = self.call(fn, list(args))
        except ExitProgram as exit_:
            result = exit_.code
        self.flush_cpu()
        return int(result) if result is not None else 0

    def call(self, fn: Function, args: List[Union[int, float]]):
        """Call a function (defined or external) with evaluated args."""
        if fn.is_declaration:
            return self._call_external(fn.name, args)
        if len(args) != len(fn.args):
            raise InterpError(f"@{fn.name}: expected {len(fn.args)} args, "
                              f"got {len(args)}")
        if self._depth >= MAX_CALL_DEPTH:
            raise InterpError(f"call depth exceeded at @{fn.name}")
        mode = self._mode
        code = None
        if self.engine != "tree" and (mode == "cpu" or mode == "gpu"):
            code = self.compiled_for(fn)
        self._depth += 1
        sp_base = self._gpu_sp if mode == "gpu" else self._cpu_sp
        self._frame_counter += 1
        frame = Frame(fn, self._frame_counter, sp_base)
        self._frame_stack.append(frame)
        try:
            if code is not None:
                return code(args)
            frame.regs = {}
            for formal, actual in zip(fn.args, args):
                frame.regs[formal] = actual
            return self._execute(frame)
        finally:
            if self._mode == "gpu":
                self._gpu_sp = sp_base
            else:
                self._cpu_sp = sp_base
            self._frame_stack.pop()
            for hook in self.frame_exit_hooks:
                hook(self, frame.frame_id)
            self._depth -= 1

    def compiled_for(self, fn: Function):
        """The cached compiled variant of ``fn`` for the current mode.

        Variants are keyed by (function, mode, armed hook *set*):
        globals resolve to different addresses per address space, and
        armed ``mem_hooks`` select hook-calling load/store code so the
        sanitizer observes exactly what the tree-walker would show it.
        Keying by the hook set's identity (not just "any hooks?")
        guarantees a body compiled while one combination of
        sanitizer/fault/trace hooks was armed is never reused under a
        different combination -- and an unhooked body is never reused
        once hooks arm.
        """
        key = (fn, self._mode, tuple(self.mem_hooks))
        code = self._compiled.get(key)
        if code is None:
            hooked = bool(self.mem_hooks)
            if self.engine == "source":
                from .srcgen import compile_function_source
                code = compile_function_source(self, fn, self._mode,
                                               hooked)
            else:
                from .codegen import compile_function
                code = compile_function(self, fn, self._mode, hooked)
            self._compiled[key] = code
        return code

    def _is_device_stack(self, address: int) -> bool:
        segment = self.device.memory.segment("device-stack")
        return segment.contains(address)

    @property
    def current_frame(self) -> Optional[Frame]:
        """The innermost IR frame (externals run in their caller's frame)."""
        return self._frame_stack[-1] if self._frame_stack else None

    def stack_allocate(self, size: int, align: int = 16) -> int:
        """Bump-allocate in the current frame's stack (for declareAlloca)."""
        if self.mode == "gpu":
            address = (self._gpu_sp + align - 1) // align * align
            self._gpu_sp = address + size
        else:
            address = (self._cpu_sp + align - 1) // align * align
            self._cpu_sp = address + size
        if size:
            self.memory.fill(address, size, 0)
        return address

    def _call_external(self, name: str, args: List):
        handler = self.externals.get(name)
        if handler is None:
            raise InterpError(f"call to undefined external @{name}")
        if self.in_kernel and name not in GPU_SAFE:
            raise InterpError(f"kernel called host-only external @{name}")
        self.charge_ops(call_cost(name))
        return handler(self, args)

    # -- evaluation ------------------------------------------------------------

    def eval(self, value: Value, frame: Frame) -> Union[int, float]:
        if isinstance(value, Constant):
            return value.value
        if value in frame.regs:
            return frame.regs[value]
        if isinstance(value, GlobalVariable):
            if self.mode == "gpu":
                return self.device.module_get_global(value.name)
            return self.layout.address_of(value.name)
        if isinstance(value, UndefValue):
            return 0
        raise InterpError(f"read of undefined register {value.ref} in "
                          f"@{frame.function.name} (no value was ever "
                          "written to it on this path)")

    # -- the interpreter loop --------------------------------------------------

    def _execute(self, frame: Frame):
        block = frame.function.entry_block
        regs = frame.regs
        evaluate = self.eval
        while True:
            for inst in block.instructions:
                self.executed_instructions += 1
                self.charge_ops(_OP_COSTS.get(inst.opcode, 1))
                if isinstance(inst, Load):
                    address = evaluate(inst.pointer, frame)
                    if self.mem_hooks:
                        for hook in self.mem_hooks:
                            hook(self, "load", int(address), inst.type.size)
                    regs[inst] = self.memory.load_scalar(
                        int(address), inst.type)
                elif isinstance(inst, Store):
                    value = evaluate(inst.value, frame)
                    address = evaluate(inst.pointer, frame)
                    if self.mem_hooks:
                        for hook in self.mem_hooks:
                            hook(self, "store", int(address),
                                 inst.value.type.size)
                    if self.mode == "gpu" and inst.value.type.is_pointer \
                            and not self._is_device_stack(int(address)):
                        # Spilling a pointer to the thread's private
                        # stack is fine; storing one into data is the
                        # restriction (paper section 2.3).
                        raise CgcmUnsupportedError(
                            f"kernel @{frame.function.name} stores a "
                            "pointer into memory (CGCM restriction)")
                    self.memory.store_scalar(int(address),
                                             inst.value.type, value)
                elif isinstance(inst, GetElementPtr):
                    regs[inst] = self._gep(inst, frame)
                elif isinstance(inst, BinaryOp):
                    regs[inst] = self._binop(inst, frame)
                elif isinstance(inst, Compare):
                    regs[inst] = self._compare(inst, frame)
                elif isinstance(inst, Cast):
                    regs[inst] = self._cast(inst, frame)
                elif isinstance(inst, Select):
                    cond = evaluate(inst.condition, frame)
                    chosen = inst.if_true if cond else inst.if_false
                    regs[inst] = evaluate(chosen, frame)
                elif isinstance(inst, Alloca):
                    regs[inst] = self._alloca(inst, frame)
                elif isinstance(inst, Call):
                    args = [evaluate(a, frame) for a in inst.args]
                    result = self.call(inst.callee, args)
                    if inst.produces_value:
                        regs[inst] = result
                elif isinstance(inst, LaunchKernel):
                    self._launch(inst, frame)
                elif isinstance(inst, Branch):
                    block = inst.target
                    break
                elif isinstance(inst, CondBranch):
                    cond = evaluate(inst.condition, frame)
                    block = inst.if_true if cond else inst.if_false
                    break
                elif isinstance(inst, Return):
                    if inst.value is None:
                        return None
                    return evaluate(inst.value, frame)
                elif isinstance(inst, Unreachable):
                    raise InterpError(
                        f"reached unreachable in @{frame.function.name}")
                else:
                    raise InterpError(f"cannot interpret {inst.opcode}")
            else:
                raise InterpError(
                    f"block {block.name} in @{frame.function.name} fell "
                    "through without a terminator")

    # -- instruction semantics -----------------------------------------------

    def _alloca(self, inst: Alloca, frame: Frame) -> int:
        count = int(self.eval(inst.count, frame))
        if count < 0:
            raise InterpError("alloca with negative count")
        size = inst.allocated_type.size * count
        align = max(inst.allocated_type.align, 8)
        if self.mode == "gpu":
            address = (self._gpu_sp + align - 1) // align * align
            self._gpu_sp = address + size
        else:
            address = (self._cpu_sp + align - 1) // align * align
            self._cpu_sp = address + size
        if size:
            self.memory.fill(address, size, 0)
        return address

    def _gep(self, inst: GetElementPtr, frame: Frame) -> int:
        address = int(self.eval(inst.pointer, frame))
        pointee = inst.pointer.type.pointee
        indices = inst.indices
        address += int(self.eval(indices[0], frame)) * pointee.size
        current = pointee
        for index in indices[1:]:
            if isinstance(current, ArrayType):
                current = current.element
                address += int(self.eval(index, frame)) * current.size
            elif isinstance(current, StructType):
                field = int(self.eval(index, frame))
                address += current.field_offset(field)
                current = current.fields[field][1]
            else:
                raise InterpError(f"gep into non-aggregate {current}")
        return address

    def _binop(self, inst: BinaryOp, frame: Frame):
        lhs = self.eval(inst.lhs, frame)
        rhs = self.eval(inst.rhs, frame)
        op = inst.op
        type_ = inst.type
        if isinstance(type_, FloatType):
            if op == "add":
                return lhs + rhs
            if op == "sub":
                return lhs - rhs
            if op == "mul":
                return lhs * rhs
            if op == "div":
                self.charge_ops(_DIV_EXTRA)
                if rhs == 0.0:
                    return float("inf") if lhs > 0 else (
                        float("-inf") if lhs < 0 else float("nan"))
                return lhs / rhs
            if op == "rem":
                self.charge_ops(_DIV_EXTRA)
                return float("nan") if rhs == 0.0 else float(
                    lhs - rhs * _trunc_div_float(lhs, rhs))
            raise InterpError(f"float binop {op}")
        assert isinstance(type_, (IntType, PointerType))
        lhs, rhs = int(lhs), int(rhs)
        if op == "add":
            result = lhs + rhs
        elif op == "sub":
            result = lhs - rhs
        elif op == "mul":
            result = lhs * rhs
        elif op == "div":
            self.charge_ops(_DIV_EXTRA)
            result = _trunc_div_int(lhs, rhs)
        elif op == "rem":
            self.charge_ops(_DIV_EXTRA)
            result = lhs - rhs * _trunc_div_int(lhs, rhs)
        elif op == "and":
            result = lhs & rhs
        elif op == "or":
            result = lhs | rhs
        elif op == "xor":
            result = lhs ^ rhs
        elif op == "shl":
            result = lhs << (rhs & 63)
        elif op == "shr":
            result = lhs >> (rhs & 63)
        else:
            raise InterpError(f"int binop {op}")
        if isinstance(type_, IntType):
            return type_.wrap(result)
        return result & 0xFFFFFFFFFFFFFFFF

    def _compare(self, inst: Compare, frame: Frame) -> int:
        lhs = self.eval(inst.lhs, frame)
        rhs = self.eval(inst.rhs, frame)
        pred = inst.pred
        if pred == "eq":
            return int(lhs == rhs)
        if pred == "ne":
            return int(lhs != rhs)
        if pred == "lt":
            return int(lhs < rhs)
        if pred == "le":
            return int(lhs <= rhs)
        if pred == "gt":
            return int(lhs > rhs)
        return int(lhs >= rhs)

    def _cast(self, inst: Cast, frame: Frame):
        value = self.eval(inst.value, frame)
        kind = inst.kind
        to_type = inst.type
        if kind in ("bitcast", "inttoptr"):
            return int(value) & 0xFFFFFFFFFFFFFFFF if to_type.is_pointer \
                else value
        if kind == "ptrtoint":
            assert isinstance(to_type, IntType)
            return to_type.wrap(int(value))
        if kind in ("trunc", "zext", "sext"):
            assert isinstance(to_type, IntType)
            src_type = inst.value.type
            assert isinstance(src_type, IntType)
            if kind == "zext":
                value = int(value) & ((1 << src_type.bits) - 1)
            return to_type.wrap(int(value))
        if kind in ("fptrunc", "fpext"):
            if to_type == FloatType(32):
                return _round_f32(float(value))
            return float(value)
        if kind == "sitofp":
            return float(int(value))
        if kind == "fptosi":
            assert isinstance(to_type, IntType)
            fvalue = float(value)
            if fvalue != fvalue or fvalue in (float("inf"), float("-inf")):
                return 0
            return to_type.wrap(int(fvalue))
        raise InterpError(f"cast kind {kind}")

    # -- kernel launches -----------------------------------------------------

    def _launch(self, inst: LaunchKernel, frame: Frame) -> None:
        grid = int(self.eval(inst.grid, frame))
        args = [self.eval(a, frame) for a in inst.args]
        self.launch_evaluated(inst.kernel, grid, args)

    def launch_evaluated(self, kernel: Function, grid: int,
                         args: List[Union[int, float]]) -> None:
        """Run one kernel grid with already-evaluated operands.

        Shared by both engines: the tree-walker evaluates the launch
        operands through :meth:`eval`, compiled code through register
        slots, and everything from the launch hooks onwards is
        identical.
        """
        if grid < 0:
            raise InterpError(f"negative grid size {grid}")
        self.flush_cpu()
        cpu_args: Optional[List] = None
        if self.launch_gate is not None:
            # The resilient runtime admits the launch: residency is
            # ensured (or the launch degrades to the CPU path) and the
            # driver call happens inside the gate, with retry.  Runs
            # before the launch hooks so the gate sees the pre-bump
            # epoch, matching what map/refresh recorded.
            cpu_args = self.launch_gate(kernel, grid, args)
        else:
            self.device.launch_begin(kernel.name, grid)
        for hook in self.launch_hooks:
            hook(self, kernel, grid, args)
        self.kernel_launch_count += 1
        if cpu_args is not None:
            self.clock.count("cpu_fallback_launches")
            for tid in range(grid):
                self.call(kernel, [tid] + cpu_args)
            return
        self.clock.count("kernel_launches")
        previous_mode = self.mode
        self.mode = "gpu"
        self._gpu_ops = 0
        total_ops = 0
        max_ops = 0
        try:
            if self.engine != "tree" and not kernel.is_declaration:
                max_ops = self._run_grid_compiled(kernel, grid, args)
            else:
                for tid in range(grid):
                    before = self._gpu_ops
                    self.call(kernel, [tid] + args)
                    thread_ops = self._gpu_ops - before
                    if thread_ops > max_ops:
                        max_ops = thread_ops
            total_ops = self._gpu_ops
        finally:
            self.mode = previous_mode
            self._gpu_ops = 0
        model = self.clock.model
        duration = model.kernel_launch_latency_s
        if grid:
            duration += model.gpu_time(total_ops, max_ops)
        if self.launch_cost_hooks:
            for hook in self.launch_cost_hooks:
                hook(self, kernel.name, grid, total_ops, max_ops, duration)
        if self.grid_scheduler is not None \
                and self.grid_scheduler(kernel, grid, args, total_ops,
                                        max_ops, duration):
            return
        if not self.streams:
            self.clock.advance(LANE_GPU, duration, f"{kernel.name}[{grid}]")
            return
        # Streams discipline: the launch is asynchronous.  Thread
        # execution above already happened eagerly (data effects are
        # immediate in the simulator); only the modelled span is
        # scheduled.  The kernel waits for every transfer issued so
        # far -- default-stream semantics against the copy streams --
        # which is exactly the ordering the runtime's event edges need:
        # operand HtoD copies precede the launch in program order, and
        # in-flight DtoH write-backs must drain before device memory
        # they cover can be reused.
        clock = self.clock
        clock.schedule(
            LANE_GPU, duration, STREAM_COMPUTE, f"{kernel.name}[{grid}]",
            after=(clock.stream_cursor(STREAM_H2D),
                   clock.stream_cursor(STREAM_D2H)))

    def _run_grid_compiled(self, kernel: Function, grid: int,
                           args: List[Union[int, float]]) -> int:
        """Per-thread kernel loop for the ahead-of-time engines.

        Inlines the compiled-code path of :meth:`call` -- the
        per-thread bookkeeping (depth, stack pointer, frame,
        ``frame_exit_hooks``) is identical, but the callee
        resolution, arity check, and depth test hoist out of the
        loop.  The compiled body is re-resolved if the armed hook
        set changes mid-grid, matching what per-thread
        :meth:`compiled_for` lookups would select.  Returns the
        max per-thread op count for the GPU time model.
        """
        if len(args) + 1 != len(kernel.args):
            raise InterpError(f"@{kernel.name}: expected "
                              f"{len(kernel.args)} args, got "
                              f"{len(args) + 1}")
        if self._depth >= MAX_CALL_DEPTH:
            raise InterpError(f"call depth exceeded at @{kernel.name}")
        code = self.compiled_for(kernel)
        snapshot = list(self.mem_hooks)
        stack = self._frame_stack
        frame_type = Frame
        framed = needs_frame(kernel)
        # Threads run sequentially and each restores the stack
        # pointer, so the save/restore base is loop-invariant; the
        # argument list is reused because the emitted prologue
        # unpacks it into locals before any nested call can run.
        sp_base = self._gpu_sp
        argv = [0] + args
        max_ops = 0
        self._depth += 1
        try:
            for tid in range(grid):
                before = self._gpu_ops
                if self.mem_hooks != snapshot:
                    code = self.compiled_for(kernel)
                    snapshot = list(self.mem_hooks)
                self._frame_counter += 1
                if framed:
                    frame = frame_type(kernel, self._frame_counter,
                                       sp_base)
                    stack.append(frame)
                    argv[0] = tid
                    try:
                        code(argv)
                    finally:
                        self._gpu_sp = sp_base
                        stack.pop()
                        for hook in self.frame_exit_hooks:
                            hook(self, frame.frame_id)
                else:
                    # Frame-oblivious kernel: keep the frame-id
                    # sequencing and the exit-hook sweep, skip the
                    # frame object and stack-pointer churn.
                    fid = self._frame_counter
                    argv[0] = tid
                    try:
                        code(argv)
                    finally:
                        for hook in self.frame_exit_hooks:
                            hook(self, fid)
                thread_ops = self._gpu_ops - before
                if thread_ops > max_ops:
                    max_ops = thread_ops
        finally:
            self._depth -= 1
        return max_ops


def _trunc_div_int(lhs: int, rhs: int) -> int:
    if rhs == 0:
        raise InterpError("integer division by zero")
    quotient = lhs // rhs
    if (lhs % rhs != 0) and ((lhs < 0) != (rhs < 0)):
        quotient += 1
    return quotient


def _trunc_div_float(lhs: float, rhs: float) -> float:
    return math.trunc(lhs / rhs)


def _round_f32(value: float) -> float:
    # The format is pre-compiled once at module load; per-call
    # struct.pack("<f", ...) re-parses the format string on every
    # float32 rounding, which sits on the cast hot path.
    return _F32_STRUCT.unpack(_F32_STRUCT.pack(value))[0]
