"""Closure-compiled execution engine ("threaded code").

The tree-walking interpreter in :mod:`repro.interp.machine` pays, for
*every dynamic instruction*, an isinstance dispatch chain, per-operand
``eval`` dispatch, and ``Dict[Value]`` register traffic.  This module
translates each IR function **once** into flat per-block lists of
zero-argument Python closures -- the scripting-language run-time code
generation play of PyCUDA/PyOpenCL, applied to our own interpreter:

* **Register slot allocation.**  Every value a function touches --
  formal arguments, instruction results, constants, global addresses,
  undef -- is assigned an index into one flat register list ``R``.
  Constants and global addresses are *baked* into an initialization
  template at compile time, so operand access inside a closure is a
  single ``R[i]`` list index: no isinstance chain, no dict hashing,
  no per-use global address resolution.

* **Basic-block-fused cost charging.**  The static ``_OP_COSTS`` of a
  straight-line run of instructions are summed at compile time and
  charged by one closure per run instead of one ``charge_ops`` call
  per instruction.  Runs are split at ``call``/``launch`` boundaries:
  those are the only instructions that can flush pending CPU ops into
  the :class:`~repro.gpu.timing.SimClock` (or advance other lanes), so
  the integer op totals visible at every clock advance -- and hence
  every simulated timestamp -- are *bit-identical* to the
  tree-walker's.  Dynamic costs (`div`/`rem` extra ops) stay inside
  their own closures.

* **Mode variants.**  A function is compiled per (address space,
  hooks-armed) pair: globals resolve to host or device addresses,
  stores compile in the kernel pointer-store restriction only for GPU
  code, and armed ``mem_hooks`` select hook-calling load/store
  closures so the communication sanitizer observes the same stream of
  events as under the tree-walker.

* **Compile-time undefined-register detection.**  The structural
  verifier only checks that every operand is defined *somewhere*; the
  compiler additionally requires every (reachable) use to be dominated
  by its definition, turning a would-be silent garbage read into an
  :class:`InterpError` at compile time.  (The tree-walker raises the
  equivalent error at run time, on first use.)

Compiled code is cached on the machine (``Machine.compiled_for``) and
selected with ``Machine(engine="compiled")``; the tree-walker remains
the reference semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.cfg import reverse_postorder
from ..analysis.dominators import DominatorTree
from ..errors import CgcmUnsupportedError, InterpError, MemoryFault
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                               CondBranch, GetElementPtr, Instruction,
                               LaunchKernel, Load, Return, Select, Store,
                               Unreachable)
from ..ir.types import ArrayType, FloatType, IntType, PointerType, StructType
from ..ir.values import Constant, GlobalVariable, UndefValue, Value
from ..memory.flatmem import scalar_struct
from .machine import (_DIV_EXTRA, _OP_COSTS, _round_f32, _trunc_div_float,
                      _trunc_div_int)

_MASK64 = 0xFFFFFFFFFFFFFFFF
_INF = float("inf")
_NINF = float("-inf")
_NAN = float("nan")

#: Shared return cell for ``ret void`` (avoids a tuple per call).
_VOID_RETURN = (None,)


def _ret_void():
    return _VOID_RETURN


class CompiledFunction:
    """One function translated to threaded code for one mode.

    The register file ``R`` is a single list owned by this object and
    reused across calls; every closure captured it (and its slot
    indices) at compile time, which is what makes the closures
    zero-argument.  Re-entrant calls (recursion, or a kernel calling
    back into an already-active helper) save and restore ``R`` around
    the inner activation.
    """

    __slots__ = ("function", "mode", "hooked", "_regs", "_template",
                 "_nargs", "_blocks", "_active")

    def __init__(self, function: Function, mode: str, hooked: bool,
                 template: List, nargs: int,
                 blocks: List[Tuple[tuple, Callable]]):
        self.function = function
        self.mode = mode
        self.hooked = hooked
        self._template = template
        self._regs = list(template)
        self._nargs = nargs
        self._blocks = blocks
        self._active = False

    @property
    def n_slots(self) -> int:
        return len(self._template)

    def __call__(self, args: List):
        R = self._regs
        if self._active:
            saved = R[:]
        else:
            saved = None
            self._active = True
        try:
            R[:] = self._template
            R[:self._nargs] = args
            blocks = self._blocks
            body, terminator = blocks[0]
            while True:
                for op in body:
                    op()
                tag = terminator()
                if tag.__class__ is int:
                    body, terminator = blocks[tag]
                else:
                    return tag[0]
        finally:
            if saved is None:
                self._active = False
            else:
                R[:] = saved

    def __repr__(self) -> str:
        return (f"<CompiledFunction @{self.function.name} mode={self.mode} "
                f"hooked={self.hooked} slots={self.n_slots}>")


# -- closure factories -------------------------------------------------------
#
# Each factory bakes its operands into default-free closure cells; the
# closures themselves take no arguments and communicate only through
# the shared register list R and the machine's counters.

def _make_charge_cpu(machine, ops: int, insts: int):
    def op():
        machine._pending_cpu_ops += ops
        machine.executed_instructions += insts
    return op


def _make_charge_gpu(machine, ops: int, insts: int):
    def op():
        machine._gpu_ops += ops
        machine.executed_instructions += insts
    return op


# Loads and stores bake the struct codec, access size, and target
# address space at compile time; the segment one-entry cache and
# bounds checks are inlined so the fast path is straight-line Python
# with no isinstance dispatch and no intermediate bytes objects.

def _make_load(R, d, p, memory, codec, i1):
    size = codec.size
    unpack_from = codec.unpack_from
    if i1:
        def op():
            address = R[p]
            segment = memory._cached_segment
            if not (segment.base <= address < segment.limit):
                segment = memory.segment_for(address)
            offset = address - segment.base
            end = offset + size
            if end > segment.capacity:
                raise MemoryFault(
                    f"{memory.name}: access of {size} bytes at "
                    f"{address:#x} overruns segment {segment.name}",
                    address)
            if end > len(segment.data):
                segment.grow_to(end)
            R[d] = unpack_from(segment.data, offset)[0] & 1
    else:
        def op():
            address = R[p]
            segment = memory._cached_segment
            if not (segment.base <= address < segment.limit):
                segment = memory.segment_for(address)
            offset = address - segment.base
            end = offset + size
            if end > segment.capacity:
                raise MemoryFault(
                    f"{memory.name}: access of {size} bytes at "
                    f"{address:#x} overruns segment {segment.name}",
                    address)
            if end > len(segment.data):
                segment.grow_to(end)
            R[d] = unpack_from(segment.data, offset)[0]
    return op


def _make_load_hooked(R, d, p, load_scalar, type_, machine, size):
    def op():
        address = R[p]
        for hook in machine.mem_hooks:
            hook(machine, "load", address, size)
        R[d] = load_scalar(address, type_)
    return op


def _make_store_int(R, v, p, memory, codec, mask, hi, span):
    size = codec.size
    pack_into = codec.pack_into

    def op():
        address = R[p]
        value = R[v] & mask
        if value > hi:
            value -= span
        segment = memory._cached_segment
        if not (segment.base <= address < segment.limit):
            segment = memory.segment_for(address)
        offset = address - segment.base
        end = offset + size
        if end > segment.capacity:
            raise MemoryFault(
                f"{memory.name}: access of {size} bytes at {address:#x} "
                f"overruns segment {segment.name}", address)
        if end > len(segment.data):
            segment.grow_to(end)
        pack_into(segment.data, offset, value)
    return op


def _make_store_float(R, v, p, memory, codec):
    size = codec.size
    pack_into = codec.pack_into

    def op():
        address = R[p]
        segment = memory._cached_segment
        if not (segment.base <= address < segment.limit):
            segment = memory.segment_for(address)
        offset = address - segment.base
        end = offset + size
        if end > segment.capacity:
            raise MemoryFault(
                f"{memory.name}: access of {size} bytes at {address:#x} "
                f"overruns segment {segment.name}", address)
        if end > len(segment.data):
            segment.grow_to(end)
        pack_into(segment.data, offset, R[v])
    return op


def _make_store_ptr(R, v, p, memory, codec, on_device_stack, fname):
    size = codec.size
    pack_into = codec.pack_into

    def op():
        address = R[p]
        if on_device_stack is not None and not on_device_stack(address):
            raise CgcmUnsupportedError(
                f"kernel @{fname} stores a pointer into memory "
                "(CGCM restriction)")
        segment = memory._cached_segment
        if not (segment.base <= address < segment.limit):
            segment = memory.segment_for(address)
        offset = address - segment.base
        end = offset + size
        if end > segment.capacity:
            raise MemoryFault(
                f"{memory.name}: access of {size} bytes at {address:#x} "
                f"overruns segment {segment.name}", address)
        if end > len(segment.data):
            segment.grow_to(end)
        pack_into(segment.data, offset, R[v] & _MASK64)
    return op


def _make_store_hooked(R, v, p, store_scalar, type_, machine, size,
                       on_device_stack, fname):
    def op():
        address = R[p]
        for hook in machine.mem_hooks:
            hook(machine, "store", address, size)
        if on_device_stack is not None and not on_device_stack(address):
            raise CgcmUnsupportedError(
                f"kernel @{fname} stores a pointer into memory "
                "(CGCM restriction)")
        store_scalar(address, type_, R[v])
    return op


# Integer results are wrapped into the type's signed range inline:
# v = raw & mask; v - span if v > hi else v.  Pointer results reuse the
# same shape with hi = mask and span = 0, i.e. plain unsigned masking.

def _int_params(type_) -> Tuple[int, int, int]:
    if isinstance(type_, PointerType):
        return _MASK64, _MASK64, 0
    if type_.bits == 1:
        return 1, 1, 0
    mask = (1 << type_.bits) - 1
    return mask, type_.max_value, 1 << type_.bits


def check_definitions(fn: Function) -> None:
    """Reject (reachable) uses not dominated by their definition.

    The tree-walker discovers such reads at run time and raises
    :class:`InterpError`; both ahead-of-time engines (closure and
    source) call this up front so a malformed function can never
    start executing half-compiled.
    """
    reachable = set(reverse_postorder(fn))
    dom = DominatorTree(fn)
    positions: Dict[Instruction, Tuple[object, int]] = {}
    for block in fn.blocks:
        for index, inst in enumerate(block.instructions):
            positions[inst] = (block, index)
    for block in fn.blocks:
        if block not in reachable:
            continue
        for index, inst in enumerate(block.instructions):
            for operand in inst.operands:
                if not isinstance(operand, Instruction):
                    continue
                defined = positions.get(operand)
                if defined is None:
                    raise InterpError(
                        f"@{fn.name}/{block.name}: read of undefined "
                        f"register {operand.ref} (defined in another "
                        "function)")
                def_block, def_index = defined
                if def_block is block:
                    ok = def_index < index
                else:
                    ok = dom.dominates(def_block, block)
                if not ok:
                    raise InterpError(
                        f"@{fn.name}/{block.name}: read of register "
                        f"{operand.ref} whose definition does not "
                        "dominate the use (undefined on some path)")


def _make_int_add(R, d, a, b, mask, hi, span):
    def op():
        v = (R[a] + R[b]) & mask
        R[d] = v - span if v > hi else v
    return op


def _make_int_sub(R, d, a, b, mask, hi, span):
    def op():
        v = (R[a] - R[b]) & mask
        R[d] = v - span if v > hi else v
    return op


def _make_int_mul(R, d, a, b, mask, hi, span):
    def op():
        v = (R[a] * R[b]) & mask
        R[d] = v - span if v > hi else v
    return op


def _make_int_div(R, d, a, b, mask, hi, span, charge_div):
    def op():
        charge_div()
        v = _trunc_div_int(R[a], R[b]) & mask
        R[d] = v - span if v > hi else v
    return op


def _make_int_rem(R, d, a, b, mask, hi, span, charge_div):
    def op():
        charge_div()
        lhs, rhs = R[a], R[b]
        v = (lhs - rhs * _trunc_div_int(lhs, rhs)) & mask
        R[d] = v - span if v > hi else v
    return op


def _make_int_bitwise(opname, R, d, a, b, mask, hi, span):
    if opname == "and":
        def raw(x, y):
            return x & y
    elif opname == "or":
        def raw(x, y):
            return x | y
    else:
        def raw(x, y):
            return x ^ y

    def op():
        v = raw(R[a], R[b]) & mask
        R[d] = v - span if v > hi else v
    return op


def _make_int_shl(R, d, a, b, mask, hi, span):
    def op():
        v = (R[a] << (R[b] & 63)) & mask
        R[d] = v - span if v > hi else v
    return op


def _make_int_shr(R, d, a, b, mask, hi, span):
    def op():
        v = (R[a] >> (R[b] & 63)) & mask
        R[d] = v - span if v > hi else v
    return op


def _make_float_add(R, d, a, b):
    def op():
        R[d] = R[a] + R[b]
    return op


def _make_float_sub(R, d, a, b):
    def op():
        R[d] = R[a] - R[b]
    return op


def _make_float_mul(R, d, a, b):
    def op():
        R[d] = R[a] * R[b]
    return op


def _make_float_div(R, d, a, b, charge_div):
    def op():
        charge_div()
        rhs = R[b]
        if rhs == 0.0:
            lhs = R[a]
            R[d] = _INF if lhs > 0 else (_NINF if lhs < 0 else _NAN)
        else:
            R[d] = R[a] / rhs
    return op


def _make_float_rem(R, d, a, b, charge_div):
    def op():
        charge_div()
        rhs = R[b]
        if rhs == 0.0:
            R[d] = _NAN
        else:
            lhs = R[a]
            R[d] = float(lhs - rhs * _trunc_div_float(lhs, rhs))
    return op


def _make_compare(pred, R, d, a, b):
    # Unary plus narrows the bool to a plain int, matching the
    # tree-walker's int(...) result even under str()-based printing.
    if pred == "eq":
        def op():
            R[d] = +(R[a] == R[b])
    elif pred == "ne":
        def op():
            R[d] = +(R[a] != R[b])
    elif pred == "lt":
        def op():
            R[d] = +(R[a] < R[b])
    elif pred == "le":
        def op():
            R[d] = +(R[a] <= R[b])
    elif pred == "gt":
        def op():
            R[d] = +(R[a] > R[b])
    else:
        def op():
            R[d] = +(R[a] >= R[b])
    return op


def _make_copy(R, d, s):
    def op():
        R[d] = R[s]
    return op


def _make_mask64(R, d, s):
    def op():
        R[d] = R[s] & _MASK64
    return op


def _make_int_wrap(R, d, s, mask, hi, span):
    def op():
        v = R[s] & mask
        R[d] = v - span if v > hi else v
    return op


def _make_zext(R, d, s, src_mask, mask, hi, span):
    def op():
        v = (R[s] & src_mask) & mask
        R[d] = v - span if v > hi else v
    return op


def _make_round_f32(R, d, s):
    def op():
        R[d] = _round_f32(R[s])
    return op


def _make_sitofp(R, d, s):
    def op():
        R[d] = float(R[s])
    return op


def _make_fptosi(R, d, s, mask, hi, span):
    def op():
        f = R[s]
        if f != f or f == _INF or f == _NINF:
            R[d] = 0
        else:
            v = int(f) & mask
            R[d] = v - span if v > hi else v
    return op


def _make_gep0(R, d, p, off):
    def op():
        R[d] = R[p] + off
    return op


def _make_gep1(R, d, p, off, i0, s0):
    def op():
        R[d] = R[p] + off + R[i0] * s0
    return op


def _make_gep2(R, d, p, off, i0, s0, i1, s1):
    def op():
        R[d] = R[p] + off + R[i0] * s0 + R[i1] * s1
    return op


def _make_gepn(R, d, p, off, pairs):
    def op():
        address = R[p] + off
        for i, scale in pairs:
            address += R[i] * scale
        R[d] = address
    return op


def _make_select(R, d, c, t, f):
    def op():
        R[d] = R[t] if R[c] else R[f]
    return op


def _make_alloca_cpu(R, d, c, elem_size, align, machine, fill):
    def op():
        count = R[c]
        if count < 0:
            raise InterpError("alloca with negative count")
        size = elem_size * count
        address = (machine._cpu_sp + align - 1) // align * align
        machine._cpu_sp = address + size
        if size:
            fill(address, size, 0)
        R[d] = address
    return op


def _make_alloca_gpu(R, d, c, elem_size, align, machine, fill):
    def op():
        count = R[c]
        if count < 0:
            raise InterpError("alloca with negative count")
        size = elem_size * count
        address = (machine._gpu_sp + align - 1) // align * align
        machine._gpu_sp = address + size
        if size:
            fill(address, size, 0)
        R[d] = address
    return op


def _make_call(R, d, call, callee, arg_slots):
    if d is None:
        def op():
            call(callee, [R[i] for i in arg_slots])
    else:
        def op():
            R[d] = call(callee, [R[i] for i in arg_slots])
    return op


def _make_launch(R, launch, kernel, g, arg_slots):
    def op():
        launch(kernel, int(R[g]), [R[i] for i in arg_slots])
    return op


def _make_branch(target_index):
    def op():
        return target_index
    return op


def _make_cond_branch(R, c, true_index, false_index):
    def op():
        return true_index if R[c] else false_index
    return op


def _make_return(R, s):
    def op():
        return (R[s],)
    return op


def _make_unreachable(fname):
    def op():
        raise InterpError(f"reached unreachable in @{fname}")
    return op


# -- the compiler ------------------------------------------------------------

class _Compiler:
    """Translates one function for one (mode, hooked) pair."""

    def __init__(self, machine, fn: Function, mode: str, hooked: bool):
        if fn.is_declaration:
            raise InterpError(f"cannot compile declaration @{fn.name}")
        if mode not in ("cpu", "gpu"):
            raise InterpError(f"cannot compile for mode {mode!r}")
        self.machine = machine
        self.fn = fn
        self.mode = mode
        self.hooked = hooked
        self.memory = machine.device.memory if mode == "gpu" \
            else machine.cpu_memory
        self.slots: Dict[Value, int] = {}
        self.template: List = []
        if mode == "gpu":
            def charge_div():
                machine._gpu_ops += _DIV_EXTRA
        else:
            def charge_div():
                machine._pending_cpu_ops += _DIV_EXTRA
        self.charge_div = charge_div

    # -- slot allocation ---------------------------------------------------

    def _new_slot(self, initial) -> int:
        self.template.append(initial)
        return len(self.template) - 1

    def _allocate_slots(self) -> None:
        machine, fn, mode = self.machine, self.fn, self.mode
        for arg in fn.args:
            self.slots[arg] = self._new_slot(None)
        for inst in fn.instructions():
            if inst.produces_value:
                self.slots[inst] = self._new_slot(None)
        # Second pass: literal-like operands get baked template slots.
        # Constants hash by (type, value), so each distinct literal
        # occupies exactly one slot no matter how often it is used.
        for inst in fn.instructions():
            for operand in inst.operands:
                if operand is None or operand in self.slots:
                    continue
                if isinstance(operand, Constant):
                    self.slots[operand] = self._new_slot(operand.value)
                elif isinstance(operand, GlobalVariable):
                    if mode == "gpu":
                        address = machine.device.module_get_global(
                            operand.name)
                    else:
                        address = machine.layout.address_of(operand.name)
                    self.slots[operand] = self._new_slot(address)
                elif isinstance(operand, UndefValue):
                    self.slots[operand] = self._new_slot(0)
                else:
                    raise InterpError(
                        f"@{fn.name}: operand {operand!r} is not a "
                        "constant, global, or local definition")

    def _check_definitions(self) -> None:
        check_definitions(self.fn)

    # -- per-instruction translation ---------------------------------------

    def _slot(self, value: Value) -> int:
        return self.slots[value]

    def _compile_inst(self, inst: Instruction, R) -> Callable:
        machine, mode = self.machine, self.mode
        memory = self.memory
        if isinstance(inst, Load):
            d, p = self._slot(inst), self._slot(inst.pointer)
            if self.hooked:
                return _make_load_hooked(R, d, p, memory.load_scalar,
                                         inst.type, machine,
                                         inst.type.size)
            i1 = isinstance(inst.type, IntType) and inst.type.bits == 1
            return _make_load(R, d, p, memory, scalar_struct(inst.type),
                              i1)
        if isinstance(inst, Store):
            v, p = self._slot(inst.value), self._slot(inst.pointer)
            stored = inst.value.type
            on_stack = None
            if mode == "gpu" and stored.is_pointer:
                on_stack = machine.device.memory.segment(
                    "device-stack").contains
            if self.hooked:
                return _make_store_hooked(
                    R, v, p, memory.store_scalar, stored,
                    machine, stored.size, on_stack, self.fn.name)
            codec = scalar_struct(stored)
            if isinstance(stored, IntType):
                return _make_store_int(R, v, p, memory, codec,
                                       *_int_params(stored))
            if isinstance(stored, PointerType):
                return _make_store_ptr(R, v, p, memory, codec, on_stack,
                                       self.fn.name)
            return _make_store_float(R, v, p, memory, codec)
        if isinstance(inst, GetElementPtr):
            return self._compile_gep(inst, R)
        if isinstance(inst, BinaryOp):
            return self._compile_binop(inst, R)
        if isinstance(inst, Compare):
            return _make_compare(inst.pred, R, self._slot(inst),
                                 self._slot(inst.lhs),
                                 self._slot(inst.rhs))
        if isinstance(inst, Cast):
            return self._compile_cast(inst, R)
        if isinstance(inst, Select):
            return _make_select(R, self._slot(inst),
                                self._slot(inst.condition),
                                self._slot(inst.if_true),
                                self._slot(inst.if_false))
        if isinstance(inst, Alloca):
            factory = _make_alloca_gpu if mode == "gpu" else _make_alloca_cpu
            return factory(R, self._slot(inst), self._slot(inst.count),
                           inst.allocated_type.size,
                           max(inst.allocated_type.align, 8),
                           machine, memory.fill)
        if isinstance(inst, Call):
            d = self._slot(inst) if inst.produces_value else None
            arg_slots = tuple(self._slot(a) for a in inst.args)
            return _make_call(R, d, machine.call, inst.callee, arg_slots)
        if isinstance(inst, LaunchKernel):
            arg_slots = tuple(self._slot(a) for a in inst.args)
            return _make_launch(R, machine.launch_evaluated, inst.kernel,
                                self._slot(inst.grid), arg_slots)
        raise InterpError(f"cannot compile {inst.opcode}")

    def _compile_gep(self, inst: GetElementPtr, R) -> Callable:
        d, p = self._slot(inst), self._slot(inst.pointer)
        pointee = inst.pointer.type.pointee
        indices = inst.indices
        offset = 0
        pairs: List[Tuple[int, int]] = []

        def accumulate(index: Value, scale: int) -> None:
            nonlocal offset
            if isinstance(index, Constant):
                offset += int(index.value) * scale
            else:
                pairs.append((self._slot(index), scale))

        accumulate(indices[0], pointee.size)
        current = pointee
        for index in indices[1:]:
            if isinstance(current, ArrayType):
                current = current.element
                accumulate(index, current.size)
            elif isinstance(current, StructType):
                if not isinstance(index, Constant):
                    raise InterpError(
                        f"@{self.fn.name}: struct gep index must be "
                        "constant")
                field = int(index.value)
                offset += current.field_offset(field)
                current = current.fields[field][1]
            else:
                raise InterpError(f"gep into non-aggregate {current}")
        if not pairs:
            return _make_gep0(R, d, p, offset)
        if len(pairs) == 1:
            return _make_gep1(R, d, p, offset, *pairs[0])
        if len(pairs) == 2:
            return _make_gep2(R, d, p, offset, *pairs[0], *pairs[1])
        return _make_gepn(R, d, p, offset, tuple(pairs))

    def _compile_binop(self, inst: BinaryOp, R) -> Callable:
        d = self._slot(inst)
        a, b = self._slot(inst.lhs), self._slot(inst.rhs)
        op = inst.op
        if isinstance(inst.type, FloatType):
            if op == "add":
                return _make_float_add(R, d, a, b)
            if op == "sub":
                return _make_float_sub(R, d, a, b)
            if op == "mul":
                return _make_float_mul(R, d, a, b)
            if op == "div":
                return _make_float_div(R, d, a, b, self.charge_div)
            if op == "rem":
                return _make_float_rem(R, d, a, b, self.charge_div)
            raise InterpError(f"float binop {op}")
        mask, hi, span = _int_params(inst.type)
        if op == "add":
            return _make_int_add(R, d, a, b, mask, hi, span)
        if op == "sub":
            return _make_int_sub(R, d, a, b, mask, hi, span)
        if op == "mul":
            return _make_int_mul(R, d, a, b, mask, hi, span)
        if op == "div":
            return _make_int_div(R, d, a, b, mask, hi, span,
                                 self.charge_div)
        if op == "rem":
            return _make_int_rem(R, d, a, b, mask, hi, span,
                                 self.charge_div)
        if op in ("and", "or", "xor"):
            return _make_int_bitwise(op, R, d, a, b, mask, hi, span)
        if op == "shl":
            return _make_int_shl(R, d, a, b, mask, hi, span)
        if op == "shr":
            return _make_int_shr(R, d, a, b, mask, hi, span)
        raise InterpError(f"int binop {op}")

    def _compile_cast(self, inst: Cast, R) -> Callable:
        d, s = self._slot(inst), self._slot(inst.value)
        kind = inst.kind
        to_type = inst.type
        if kind in ("bitcast", "inttoptr"):
            if to_type.is_pointer:
                return _make_mask64(R, d, s)
            return _make_copy(R, d, s)
        if kind == "ptrtoint":
            return _make_int_wrap(R, d, s, *_int_params(to_type))
        if kind in ("trunc", "sext"):
            return _make_int_wrap(R, d, s, *_int_params(to_type))
        if kind == "zext":
            src = inst.value.type
            assert isinstance(src, IntType)
            src_mask = (1 << src.bits) - 1
            return _make_zext(R, d, s, src_mask, *_int_params(to_type))
        if kind in ("fptrunc", "fpext"):
            if to_type == FloatType(32):
                return _make_round_f32(R, d, s)
            return _make_sitofp(R, d, s)  # float(value), same as tree
        if kind == "sitofp":
            return _make_sitofp(R, d, s)
        if kind == "fptosi":
            return _make_fptosi(R, d, s, *_int_params(inst.type))
        raise InterpError(f"cast kind {kind}")

    def _compile_terminator(self, inst: Instruction, R,
                            block_index: Dict) -> Callable:
        if isinstance(inst, Branch):
            return _make_branch(block_index[inst.target])
        if isinstance(inst, CondBranch):
            return _make_cond_branch(R, self._slot(inst.condition),
                                     block_index[inst.if_true],
                                     block_index[inst.if_false])
        if isinstance(inst, Return):
            if inst.value is None:
                return _ret_void
            if isinstance(inst.value, Constant):
                baked = (inst.value.value,)

                def op():
                    return baked
                return op
            return _make_return(R, self._slot(inst.value))
        if isinstance(inst, Unreachable):
            return _make_unreachable(self.fn.name)
        raise InterpError(f"cannot compile terminator {inst.opcode}")

    # -- block assembly ----------------------------------------------------

    def compile(self) -> CompiledFunction:
        fn = self.fn
        self._check_definitions()
        self._allocate_slots()
        R: List = [None] * len(self.template)
        make_charge = _make_charge_gpu if self.mode == "gpu" \
            else _make_charge_cpu
        block_index = {block: i for i, block in enumerate(fn.blocks)}
        blocks: List[Tuple[tuple, Callable]] = []
        for block in fn.blocks:
            ops: List[Callable] = []
            pending_cost = 0
            pending_insts = 0
            pending_ops: List[Callable] = []
            for inst in block.instructions:
                pending_cost += _OP_COSTS.get(inst.opcode, 1)
                pending_insts += 1
                if inst.is_terminator:
                    pending_ops.append(
                        self._compile_terminator(inst, R, block_index))
                else:
                    pending_ops.append(self._compile_inst(inst, R))
                # Calls and launches are the only instructions that can
                # move pending op counts onto the clock; close the
                # fused-charge segment at each one so the integers
                # visible at every flush match the tree-walker exactly.
                if isinstance(inst, (Call, LaunchKernel)):
                    ops.append(make_charge(self.machine, pending_cost,
                                           pending_insts))
                    ops.extend(pending_ops)
                    pending_cost = pending_insts = 0
                    pending_ops = []
            if pending_insts:
                ops.append(make_charge(self.machine, pending_cost,
                                       pending_insts))
                ops.extend(pending_ops)
            if not block.is_terminated:
                ops.append(_make_unterminated(fn.name, block.name))
            # The dispatch loop runs the body for effect and asks only
            # the terminator for a (block index | return) tag.
            blocks.append((tuple(ops[:-1]), ops[-1]))
        regs = R
        compiled = CompiledFunction(fn, self.mode, self.hooked,
                                    self.template, len(fn.args), blocks)
        # The closures captured the pre-sized scratch list ``R``; hand
        # that exact object to the CompiledFunction as its register
        # file so they stay one and the same.
        compiled._regs = regs
        return compiled


def _make_unterminated(fname: str, bname: str):
    def op():
        raise InterpError(f"block {bname} in @{fname} fell through "
                          "without a terminator")
    return op


def compile_function(machine, fn: Function, mode: str,
                     hooked: bool) -> CompiledFunction:
    """Translate ``fn`` into threaded code for one machine and mode."""
    return _Compiler(machine, fn, mode, hooked).compile()
