"""IR interpreter, external functions, and execution traces.

Three engines execute IR on the same :class:`Machine` model: the
tree-walker (reference semantics), the closure compiler in
:mod:`repro.interp.codegen` (``engine="compiled"``), and the source
compiler in :mod:`repro.interp.srcgen` (``engine="source"``, the
default fast path).
"""

from .codegen import CompiledFunction, check_definitions, compile_function
from .externals import (ExitProgram, GPU_SAFE, call_cost, default_externals,
                        external_signatures)
from .machine import ENGINES, Frame, Machine, MAX_CALL_DEPTH
from .srcgen import compile_function_source
from .trace import count_direction_switches, render_schedule, summarize_events

__all__ = [
    "CompiledFunction", "check_definitions", "compile_function",
    "compile_function_source", "ExitProgram", "GPU_SAFE", "call_cost",
    "default_externals", "external_signatures", "ENGINES", "Frame",
    "Machine", "MAX_CALL_DEPTH", "count_direction_switches",
    "render_schedule", "summarize_events",
]
