"""IR interpreter, external functions, and execution traces.

Two engines execute IR on the same :class:`Machine` model: the
tree-walker (reference semantics) and the closure compiler in
:mod:`repro.interp.codegen` (fast path, ``engine="compiled"``).
"""

from .codegen import CompiledFunction, compile_function
from .externals import (ExitProgram, GPU_SAFE, call_cost, default_externals,
                        external_signatures)
from .machine import ENGINES, Frame, Machine, MAX_CALL_DEPTH
from .trace import count_direction_switches, render_schedule, summarize_events

__all__ = [
    "CompiledFunction", "compile_function", "ExitProgram", "GPU_SAFE",
    "call_cost", "default_externals", "external_signatures", "ENGINES",
    "Frame", "Machine", "MAX_CALL_DEPTH", "count_direction_switches",
    "render_schedule", "summarize_events",
]
