"""IR interpreter, external functions, and execution traces."""

from .externals import (ExitProgram, GPU_SAFE, call_cost, default_externals,
                        external_signatures)
from .machine import Frame, Machine, MAX_CALL_DEPTH
from .trace import count_direction_switches, render_schedule, summarize_events

__all__ = [
    "ExitProgram", "GPU_SAFE", "call_cost", "default_externals",
    "external_signatures", "Frame", "Machine", "MAX_CALL_DEPTH",
    "count_direction_switches", "render_schedule", "summarize_events",
]
