"""Command-line interface: compile and simulate MiniC programs.

Usage::

    python -m repro run program.c [--level optimized] [--streams]
    python -m repro run program.c [--faults SEED] [--heap-limit BYTES]
    python -m repro run program.c [--validate]
    python -m repro emit-ir program.c [--level unoptimized] [--streams]
    python -m repro bench [<workload> ...] [--out BENCH_interp.json]
    python -m repro bench --streams [--out BENCH_streams.json]
    python -m repro faultbench [<workload> ...] [--out BENCH_faults.json]
    python -m repro trace <workload-or-source> [--streams] [--out t.json]
    python -m repro sanitize <workload-or-source> [...] [--level opt]
    python -m repro lint [<workload-or-source> ...] [--json] [--sarif]
    python -m repro lint [--corpus] [--faults SEED] [--validate]
    python -m repro fuzz [--seed N] [--count M] [--slow] [--artifacts D]
    python -m repro serve [--clients N] [--policy fair] [--tenants SPEC]
    python -m repro servebench [--clients 10 100 1000] [--out F.json]
    python -m repro list

``run`` compiles a MiniC source file at the chosen optimization level
and executes it on the simulated platform; ``emit-ir`` prints the
transformed IR; ``bench`` with workload names runs them through all
four configurations, with no names runs the full 24-workload
tree-vs-compiled engine sweep (``BENCH_interp.json``), and with
``--streams`` runs the serial-vs-overlapped sweep
(``BENCH_streams.json``); ``faultbench`` runs the chaos sweep -- every
workload under seeded fault schedules and device-heap caps, checking
byte-identical observables and reporting recovery counters
(``BENCH_faults.json``); ``trace`` dumps one run's timeline as
Chrome trace-event JSON for ``chrome://tracing``; ``sanitize`` runs
the CPU-vs-GPU differential oracle with the communication sanitizer
armed; ``lint`` runs the static communication verifier, DOALL race
auditor, and async happens-before auditor over post-pipeline IR
(``--corpus`` self-checks the seeded-defect corpus, ``--sarif`` emits
a SARIF 2.1.0 log); ``list`` shows the 24 available workloads.

``--validate`` (on ``run``, ``lint``, and ``fuzz``) arms translation
validation: after each optimize-stage pass the pipeline checks the
pass's declared legality contract on the before/after IR pair and
fails the compile on any violation.

``run --faults SEED`` arms deterministic driver-fault injection (the
resilient runtime rides the faults out and must print the same
output); ``--heap-limit BYTES`` caps the device heap to force LRU
eviction and, when nothing fits, CPU-fallback launches.

``fuzz`` runs the scenario engine: generate ``--count`` novel MiniC
programs from ``--seed`` (deterministic: same seed, same programs,
same verdicts) and check each against the full differential property
matrix -- CPU-reference oracle, level equivalence, engine equivalence
(clock-for-clock), streams on/off, sanitizer cleanliness, static-check
cleanliness, and fault-injection byte-identity.  Failures are
minimized and written under ``--artifacts``.

``serve`` drives the compile-once serve-many request loop on the
built-in mix: ``--clients`` concurrent requests are admitted, batched,
and executed in simulated time with shared read-only device mappings
and per-tenant quotas (``--tenants "gold,tight=24576"`` caps tenant
device heaps); ``servebench`` sweeps clients x cache x sharing and
writes ``BENCH_serve.json``.  ``run``/``fuzz`` accept
``--cache-stats`` to print the artifact-cache counters
(``repro.api.cache_stats()``), and ``trace --serve N`` dumps a serve
run's timeline with one track per request.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core import CgcmCompiler, CgcmConfig, OptLevel
from .errors import ConfigError, TransformValidationError
from .evaluation import run_benchmark
from .interp.trace import render_schedule
from .ir import module_to_str
from .workloads import ALL_WORKLOADS, get_workload, workload_names

_LEVELS = {level.value: level for level in OptLevel}


def _parent(*specs) -> argparse.ArgumentParser:
    """A reusable flag group: an ``add_help=False`` parent parser.

    Each spec is ``(args_tuple, kwargs_dict)`` for one
    ``add_argument`` call.  Subcommands opt into a group via
    ``parents=[...]`` instead of repeating the flag definitions.
    """
    parent = argparse.ArgumentParser(add_help=False)
    for flags, kwargs in specs:
        parent.add_argument(*flags, **kwargs)
    return parent


_LEVEL_PARENT = _parent((("--level",), dict(
    choices=sorted(_LEVELS), default="optimized",
    help="pipeline level: sequential (CPU only), unoptimized "
         "(communication management), optimized (all three "
         "communication optimizations)")))

_ENGINE_PARENT = _parent((("--engine",), dict(
    choices=("source", "compiled", "tree"), default="source",
    help="execution engine: source (Python source codegen, "
         "fastest), compiled (closure compiler), or tree "
         "(tree-walking reference interpreter)")))

_STREAMS_PARENT = _parent((("--streams",), dict(
    action="store_true",
    help="enable the streams subsystem: comm-overlap transform, "
         "asynchronous transfers/launches, and overlap-aware "
         "elapsed time")))

_FAULTS_PARENT = _parent((("--faults",), dict(
    type=int, default=None, metavar="SEED",
    help="arm deterministic driver-fault injection with this seed "
         "(the resilient runtime must ride the faults out)")))

_HEAP_PARENT = _parent((("--heap-limit",), dict(
    type=int, default=None, metavar="BYTES",
    help="cap the device heap to force eviction and CPU-fallback "
         "launches")))

_VALIDATE_PARENT = _parent((("--validate",), dict(
    action="store_true",
    help="translation validation: check each optimize-stage "
         "pass's legality contract on its before/after IR pair "
         "and fail on any violation")))

_SANITIZE_PARENT = _parent((("--sanitize",), dict(
    action="store_true",
    help="arm the communication sanitizer on the run(s)")))

_DEVICES_PARENT = _parent(
    (("--devices",), dict(
        type=int, default=1, metavar="N",
        help="simulate N GPUs: allocation units are partitioned "
             "across devices and DOALL grids may shard (implies "
             "streams; default 1)")),
    (("--topology",), dict(
        choices=("single", "ring", "full"), default="full",
        help="inter-device link topology for --devices > 1 "
             "(default full: every device pair has a direct link)")))


def _topology_from_args(args: argparse.Namespace):
    """The CLI's ``--devices``/``--topology`` as a Topology, or None."""
    devices = getattr(args, "devices", 1)
    if devices is None or devices <= 1:
        return None
    from .gpu.topology import Topology
    return Topology.build(getattr(args, "topology", "full"), devices)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CGCM (PLDI 2011) reproduction: compile and "
                    "simulate MiniC programs")
    commands = parser.add_subparsers(dest="command", required=True)

    run_cmd = commands.add_parser(
        "run", help="compile and execute",
        parents=[_LEVEL_PARENT, _ENGINE_PARENT, _STREAMS_PARENT,
                 _FAULTS_PARENT, _HEAP_PARENT, _VALIDATE_PARENT,
                 _SANITIZE_PARENT, _DEVICES_PARENT])
    run_cmd.add_argument("source", help="MiniC source file")
    run_cmd.add_argument("--trace", action="store_true",
                         help="draw the execution schedule (Figure 2 "
                              "style)")
    run_cmd.add_argument("--stats", action="store_true",
                         help="print timing breakdown and counters")
    run_cmd.add_argument("--cache-stats", action="store_true",
                         help="print artifact-cache counters "
                              "(hits/misses/evictions/entries) after "
                              "the run")

    emit_cmd = commands.add_parser(
        "emit-ir", help="print the transformed IR",
        parents=[_LEVEL_PARENT, _STREAMS_PARENT])
    emit_cmd.add_argument("source", help="MiniC source file")

    trace_cmd = commands.add_parser(
        "trace",
        help="dump one run's timeline as Chrome trace-event JSON "
             "(load in chrome://tracing or ui.perfetto.dev)",
        parents=[_LEVEL_PARENT, _ENGINE_PARENT, _STREAMS_PARENT,
                 _DEVICES_PARENT])
    trace_cmd.add_argument(
        "target", nargs="?", default=None,
        help="workload name (see 'list') or MiniC source path "
             "(not used with --serve)")
    trace_cmd.add_argument(
        "--serve", type=int, default=None, metavar="CLIENTS",
        help="trace a serve run of this many concurrent mix requests "
             "instead of one workload (one track per request: "
             "admission, queue wait, compile, transfer, launch)")
    trace_cmd.add_argument(
        "--out", default="-",
        help="output path (default: stdout)")

    bench_cmd = commands.add_parser(
        "bench",
        help="with names: run workloads through all configurations; "
             "with no names: three-engine speedup sweep",
        parents=[_STREAMS_PARENT, _DEVICES_PARENT])
    bench_cmd.add_argument("workloads", nargs="*",
                           help="workload names (see 'list'); omit for "
                                "the engine sweep")
    bench_cmd.add_argument("--out", default=None,
                           help="sweeps: where to write the JSON report "
                                "(default BENCH_interp.json, or "
                                "BENCH_streams.json with --streams)")
    bench_cmd.add_argument("--repeat", type=int, default=1,
                           help="engine sweep: timing runs per engine "
                                "per workload (the median is kept; "
                                "min/max record the spread)")

    multibench_cmd = commands.add_parser(
        "multibench",
        help="multi-GPU sweep: device counts x workloads, byte-"
             "identity checked against the single-device baseline")
    multibench_cmd.add_argument(
        "workloads", nargs="*",
        help="workload names (see 'list'); omit for all 24")
    multibench_cmd.add_argument(
        "--devices", type=int, nargs="*", default=None, metavar="N",
        help="device counts to sweep (default: 1 2 4 8)")
    multibench_cmd.add_argument(
        "--topology", choices=("single", "ring", "full"),
        default="full",
        help="inter-device link topology (default full)")
    multibench_cmd.add_argument(
        "--out", default="BENCH_multigpu.json",
        help="where to write the JSON report (default "
             "BENCH_multigpu.json)")

    faultbench_cmd = commands.add_parser(
        "faultbench",
        help="chaos sweep: every workload under seeded fault schedules "
             "and device-heap caps, observables byte-checked")
    faultbench_cmd.add_argument(
        "workloads", nargs="*",
        help="workload names (see 'list'); omit for all 24")
    faultbench_cmd.add_argument(
        "--out", default="BENCH_faults.json",
        help="where to write the JSON report (default "
             "BENCH_faults.json)")

    sanitize_cmd = commands.add_parser(
        "sanitize",
        help="run the CPU-vs-GPU differential oracle under the "
             "communication sanitizer",
        parents=[_ENGINE_PARENT])
    sanitize_cmd.add_argument(
        "targets", nargs="+",
        help="workload names, MiniC source paths, or 'all'")
    sanitize_cmd.add_argument(
        "--level", choices=("unoptimized", "optimized"),
        default="optimized",
        help="pipeline level for the GPU-managed subject run")
    sanitize_cmd.add_argument(
        "--verbose", action="store_true",
        help="print sanitizer statistics for clean runs too")

    lint_cmd = commands.add_parser(
        "lint",
        help="static communication verifier and DOALL race auditor",
        parents=[_STREAMS_PARENT, _FAULTS_PARENT, _VALIDATE_PARENT])
    lint_cmd.add_argument(
        "targets", nargs="*",
        help="workload names, MiniC source paths, or 'all' (default: "
             "all; with --corpus and no targets, only the corpus runs)")
    lint_cmd.add_argument(
        "--level", choices=("unoptimized", "optimized"),
        default="optimized",
        help="pipeline level to lint the post-pipeline IR of")
    lint_cmd.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit machine-readable findings as JSON (deterministic "
             "order, stable per-finding fingerprints)")
    lint_cmd.add_argument(
        "--sarif", action="store_true", dest="as_sarif",
        help="emit findings as a SARIF 2.1.0 log (one run per module)")
    lint_cmd.add_argument(
        "--corpus", action="store_true",
        help="also self-check the seeded-defect corpus (every seeded "
             "bug must be flagged, every clean control must pass)")

    fuzz_cmd = commands.add_parser(
        "fuzz",
        help="scenario engine: generate MiniC programs and check the "
             "full differential property matrix on each",
        parents=[_VALIDATE_PARENT])
    fuzz_cmd.add_argument("--seed", type=int, default=0,
                          help="generation seed (default 0); the run is "
                               "fully determined by (seed, count)")
    fuzz_cmd.add_argument("--count", type=int, default=100,
                          help="number of programs to generate "
                               "(default 100)")
    fuzz_cmd.add_argument("--slow", action="store_true",
                          help="widen every property across extra "
                               "levels and fault/pressure schedules")
    fuzz_cmd.add_argument("--artifacts", default=None, metavar="DIR",
                          help="write minimized counterexamples (and "
                               "the JSON report) into this directory")
    fuzz_cmd.add_argument("--no-minimize", action="store_true",
                          help="skip counterexample minimization")
    fuzz_cmd.add_argument("--cache-stats", action="store_true",
                          help="print artifact-cache counters after "
                               "the fuzz run")

    serve_cmd = commands.add_parser(
        "serve",
        help="compile-once serve-many request loop: admit, batch, and "
             "execute concurrent mix requests in simulated time",
        parents=[_SANITIZE_PARENT, _DEVICES_PARENT])
    serve_cmd.add_argument("--clients", type=int, default=50,
                           help="concurrent requests (default 50; one "
                                "burst at t=0)")
    serve_cmd.add_argument("--seed", type=int, default=0,
                           help="mix seed (default 0)")
    serve_cmd.add_argument("--workers", type=int, default=4,
                           help="host workers (default 4)")
    serve_cmd.add_argument("--policy", choices=("fifo", "fair"),
                           default="fifo",
                           help="admission policy (default fifo)")
    serve_cmd.add_argument("--batch-limit", type=int, default=64,
                           help="largest shared dispatch (default 64)")
    serve_cmd.add_argument("--no-batching", action="store_true",
                           help="dispatch every request alone")
    serve_cmd.add_argument("--no-sharing", action="store_true",
                           help="never share read-only device copies")
    serve_cmd.add_argument("--no-cache", action="store_true",
                           help="charge a full compile per request "
                                "(the cache-off ablation)")
    serve_cmd.add_argument("--shuffle-seed", type=int, default=None,
                           help="seeded shuffle of the pending queue "
                                "before each dispatch")
    serve_cmd.add_argument("--spread", type=float, default=0.0,
                           metavar="SECONDS",
                           help="spread arrivals uniformly over this "
                                "window instead of one burst")
    serve_cmd.add_argument("--tenants", default=None, metavar="SPEC",
                           help="comma-separated tenants, each "
                                "name[=heap-limit-bytes]; requests "
                                "round-robin over them "
                                "(e.g. 'gold,tight=24576')")
    serve_cmd.add_argument("--quota-mix", action="store_true",
                           help="serve the heap-allocating quota mix "
                                "(exercises eviction and strict "
                                "heap-limit rejection under tenant "
                                "caps)")
    serve_cmd.add_argument("--json", action="store_true",
                           dest="as_json",
                           help="emit the full report as JSON")

    servebench_cmd = commands.add_parser(
        "servebench",
        help="serve sweep: clients x cache x sharing, with byte-"
             "identity and sanitizer verification per scale")
    servebench_cmd.add_argument(
        "--clients", type=int, nargs="*", default=None,
        help="client scales (default: 10 100 1000)")
    servebench_cmd.add_argument("--seed", type=int, default=0,
                                help="mix seed (default 0)")
    servebench_cmd.add_argument("--no-verify", action="store_true",
                                help="skip the byte-identity and "
                                     "sanitized verification passes")
    servebench_cmd.add_argument(
        "--out", default="BENCH_serve.json",
        help="where to write the JSON report (default "
             "BENCH_serve.json)")

    commands.add_parser("list", help="list the 24 paper workloads")
    return parser


def _fault_plan(seed: Optional[int]):
    """A ``FaultPlan`` at the standard chaos rates, or None."""
    if seed is None:
        return None
    from .evaluation.faultbench import CHAOS_RATES
    from .gpu.faults import FaultPlan
    return FaultPlan(seed=seed, **CHAOS_RATES)


def _compile(path: str, level_name: str, record_events: bool = False,
             engine: str = "source", streams: bool = False,
             faults=None, heap_limit: Optional[int] = None,
             validate: bool = False, topology=None):
    with open(path) as handle:
        source = handle.read()
    config = CgcmConfig(opt_level=_LEVELS[level_name],
                        record_events=record_events, engine=engine,
                        streams=streams, faults=faults,
                        device_heap_limit=heap_limit,
                        validate=validate, topology=topology)
    compiler = CgcmCompiler(config)
    report = compiler.compile_source(source, path)
    return compiler, report


def _cmd_run(args: argparse.Namespace) -> int:
    from . import api

    with open(args.source) as handle:
        source = handle.read()
    config = CgcmConfig(opt_level=_LEVELS[args.level],
                        record_events=args.trace, engine=args.engine,
                        streams=args.streams,
                        faults=_fault_plan(args.faults),
                        device_heap_limit=args.heap_limit,
                        validate=args.validate,
                        sanitize=args.sanitize,
                        topology=_topology_from_args(args))
    workload = api.compile_workload(source, config, name=args.source)
    report = workload.report
    result = workload.run()
    for line in result.stdout:
        print(line)
    if args.sanitize and result.sanitizer_report is not None:
        print(result.sanitizer_report.summary(), file=sys.stderr)
        if not result.sanitizer_report.clean and result.exit_code == 0:
            return 1
    if args.stats:
        print(f"-- {args.level} --", file=sys.stderr)
        print(f"modelled time : {result.total_seconds * 1e6:10.2f} us "
              f"(cpu {result.cpu_seconds * 1e6:.2f} / "
              f"gpu {result.gpu_seconds * 1e6:.2f} / "
              f"comm {result.comm_seconds * 1e6:.2f})", file=sys.stderr)
        if args.streams:
            print(f"critical path : "
                  f"{result.critical_path_seconds * 1e6:10.2f} us "
                  f"({result.total_seconds / result.critical_path_seconds:.2f}x"
                  " vs serial sum)" if result.critical_path_seconds > 0
                  else "critical path : 0", file=sys.stderr)
            if report.overlap_stats:
                print(f"overlap stats : {report.overlap_stats}",
                      file=sys.stderr)
        if report.doall_kernels:
            print(f"DOALL kernels : "
                  f"{[k.name for k in report.doall_kernels]}",
                  file=sys.stderr)
        if report.glue_kernels:
            print(f"glue kernels  : "
                  f"{[k.name for k in report.glue_kernels]}",
                  file=sys.stderr)
        counters = ["kernel_launches", "htod_copies", "dtoh_copies",
                    "htod_bytes", "dtoh_bytes"]
        if args.faults is not None or args.heap_limit is not None:
            from .evaluation.faultbench import RECOVERY_COUNTERS
            counters.extend(RECOVERY_COUNTERS)
        if getattr(args, "devices", 1) > 1:
            counters.extend(["multigpu_placements",
                             "multi_device_launches",
                             "sharded_launches", "p2p_copies",
                             "p2p_bytes"])
        for counter in counters:
            if counter in result.counters:
                print(f"{counter:14s}: {result.counters[counter]}",
                      file=sys.stderr)
    if args.trace:
        print(render_schedule(result.events), file=sys.stderr)
    if args.cache_stats:
        _print_cache_stats()
    return result.exit_code


def _print_cache_stats() -> None:
    from . import api

    stats = api.cache_stats()
    print("artifact cache: "
          f"{stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['evictions']} evictions, "
          f"{stats['entries']}/{stats['capacity']} entries",
          file=sys.stderr)


def _cmd_emit_ir(args: argparse.Namespace) -> int:
    _, report = _compile(args.source, args.level, streams=args.streams)
    print(module_to_str(report.module))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .interp.trace import chrome_trace_json

    if args.serve is not None:
        from .serve import ServeLoop, ServeOptions
        from .serve.mixes import build_mix

        loop = ServeLoop(ServeOptions(record_events=True))
        report = loop.run(build_mix(args.serve))
        document = chrome_trace_json(report.events,
                                     f"serve-{args.serve}")
        if args.out == "-":
            print(document)
        else:
            with open(args.out, "w") as handle:
                handle.write(document + "\n")
            print(f"wrote {args.out} ({len(report.events)} events, "
                  f"{len(report.ok)}/{len(report.metrics)} requests ok)",
                  file=sys.stderr)
        return 0 if len(report.ok) == len(report.metrics) else 1
    if args.target is None:
        print("repro trace: a workload or source target is required "
              "unless --serve is given", file=sys.stderr)
        return 2
    topology = _topology_from_args(args)
    if os.path.exists(args.target):
        compiler, report = _compile(args.target, args.level,
                                    record_events=True, engine=args.engine,
                                    streams=args.streams,
                                    topology=topology)
        name = args.target
    else:
        workload = get_workload(args.target)
        config = CgcmConfig(opt_level=_LEVELS[args.level],
                            record_events=True, engine=args.engine,
                            streams=args.streams, topology=topology)
        compiler = CgcmCompiler(config)
        report = compiler.compile_source(workload.source, workload.name)
        name = workload.name
    result = compiler.execute(report)
    document = chrome_trace_json(result.events, name)
    if args.out == "-":
        print(document)
    else:
        with open(args.out, "w") as handle:
            handle.write(document + "\n")
        print(f"wrote {args.out} ({len(result.events)} events)",
              file=sys.stderr)
    return result.exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    if getattr(args, "devices", 1) and args.devices > 1:
        # Multi-device ask: run the multibench sweep at just this
        # device count (plus the 1-device baseline row).
        args.devices = [1, args.devices]
        if args.out is None:
            args.out = "BENCH_multigpu.json"
        return _cmd_multibench(args)
    if args.streams:
        return _cmd_overlap_bench(args)
    if not args.workloads:
        return _cmd_engine_bench(args)
    print(f"{'workload':16s} {'IE':>8s} {'unopt':>8s} {'opt':>8s} "
          f"{'limit':>6s}")
    for name in args.workloads:
        result = run_benchmark(get_workload(name))
        print(f"{name:16s} "
              f"{result.speedup('inspector-executor'):7.2f}x "
              f"{result.speedup('unoptimized'):7.2f}x "
              f"{result.speedup('optimized'):7.2f}x "
              f"{result.limiting_factor:>6s}")
    return 0


def _cmd_engine_bench(args: argparse.Namespace) -> int:
    """Three-engine sweep over all 24 workloads."""
    from .evaluation.bench import run_engine_bench

    def progress(comparison):
        status = "ok" if comparison.ok else "DIVERGED"
        print(f"{comparison.name:16s} {comparison.speedup:6.2f}x  {status}",
              file=sys.stderr)

    out = args.out if args.out else "BENCH_interp.json"
    bench = run_engine_bench(repeat=args.repeat, progress=progress)
    print(bench.render())
    bench.write(out)
    print(f"wrote {out}", file=sys.stderr)
    return 0 if bench.ok else 1


def _cmd_overlap_bench(args: argparse.Namespace) -> int:
    """Serial-vs-overlapped sweep (all 24, or the named workloads)."""
    from .evaluation.overlap import run_overlap_bench

    def progress(comparison):
        status = "ok" if comparison.ok else "DIVERGED"
        print(f"{comparison.name:16s} {comparison.speedup:6.2f}x  {status}",
              file=sys.stderr)

    workloads = ([get_workload(n) for n in args.workloads]
                 if args.workloads else None)
    out = args.out if args.out else "BENCH_streams.json"
    bench = run_overlap_bench(workloads, progress=progress)
    print(bench.render())
    bench.write(out)
    print(f"wrote {out}", file=sys.stderr)
    return 0 if bench.ok else 1


def _cmd_multibench(args: argparse.Namespace) -> int:
    """Device-count sweep with byte-identity verification."""
    from .evaluation.multibench import (DEFAULT_DEVICE_COUNTS,
                                        run_multigpu_bench)

    def progress(cell):
        status = "ok" if cell.ok else "DIVERGED"
        print(f"{cell.name:16s} {cell.devices}dev "
              f"{cell.speedup:6.2f}x  {status}", file=sys.stderr)

    workloads = ([get_workload(n) for n in args.workloads]
                 if args.workloads else None)
    counts = tuple(args.devices) if args.devices else DEFAULT_DEVICE_COUNTS
    report = run_multigpu_bench(workloads, device_counts=counts,
                                topology_kind=args.topology,
                                progress=progress)
    print(report.render())
    report.write(args.out)
    print(f"wrote {args.out}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_faultbench(args: argparse.Namespace) -> int:
    """Chaos sweep: seeded fault schedules over the workloads."""
    from .evaluation.faultbench import run_fault_bench

    def progress(comparison):
        status = "ok" if comparison.ok else "DIVERGED"
        print(f"{comparison.name:16s} {comparison.schedule:10s} "
              f"{comparison.overhead:6.2f}x  {status}", file=sys.stderr)

    workloads = ([get_workload(n) for n in args.workloads]
                 if args.workloads else None)
    bench = run_fault_bench(workloads, progress=progress)
    print(bench.render())
    bench.write(args.out)
    print(f"wrote {args.out}", file=sys.stderr)
    return 0 if bench.ok else 1


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from .sanitizer import run_differential, run_differential_workload

    level = _LEVELS[args.level]
    targets: List[str] = []
    for target in args.targets:
        if target == "all":
            targets.extend(workload_names())
        else:
            targets.append(target)

    failures = 0
    for target in targets:
        if os.path.exists(target):
            with open(target) as handle:
                source = handle.read()
            report = run_differential(source, target, level,
                                      engine=args.engine)
        else:
            report = run_differential_workload(get_workload(target), level,
                                               engine=args.engine)
        print(report.summary())
        if args.verbose and report.ok:
            stats = report.sanitizer.stats
            print("  " + ", ".join(f"{k}={v}"
                                   for k, v in sorted(stats.items())),
                  file=sys.stderr)
        if not report.ok:
            failures += 1
    total = len(targets)
    print(f"sanitize: {total - failures}/{total} clean", file=sys.stderr)
    return 1 if failures else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .staticcheck import (check_corpus, lint_source, lint_workload,
                              sarif_document)

    level = _LEVELS[args.level]
    targets: List[str] = []
    for target in args.targets:
        if target == "all":
            targets.extend(workload_names())
        else:
            targets.append(target)
    if not targets and not args.corpus:
        targets = list(workload_names())

    faults = _fault_plan(args.faults)
    reports = []
    for target in targets:
        if os.path.exists(target):
            with open(target) as handle:
                source = handle.read()
            reports.append(lint_source(source, target, level,
                                       streams=args.streams,
                                       faults=faults,
                                       validate=args.validate))
        else:
            reports.append(lint_workload(get_workload(target), level,
                                         streams=args.streams,
                                         faults=faults,
                                         validate=args.validate))

    corpus_results = check_corpus() if args.corpus else []
    corpus_misses = [r for r in corpus_results if not r.caught]
    failures = [r for r in reports if not r.clean]

    if args.as_sarif:
        document = sarif_document(reports)
        print(json.dumps(document, indent=2))
    elif args.as_json:
        payload = {"reports": [r.to_json() for r in reports]}
        if args.corpus:
            payload["corpus"] = [
                {"name": r.defect.name, "caught": r.caught,
                 "expected_pass": r.defect.expected_pass,
                 "expected_kinds": list(r.defect.kinds),
                 "report": r.report.to_json()}
                for r in corpus_results]
        print(json.dumps(payload, indent=2))
    else:
        for report in reports:
            print(report.render(max_notes=3))
        for result in corpus_results:
            verdict = "caught" if result.caught else "MISSED"
            if result.defect.is_control:
                verdict = "clean" if result.caught else "FALSE POSITIVE"
            print(f"corpus {result.defect.name:24s} {verdict}")
            if not result.caught:
                for finding in result.report.findings:
                    print("  " + finding.render())
        print(f"lint: {len(reports) - len(failures)}/{len(reports)} "
              "modules clean"
              + (f", corpus {len(corpus_results) - len(corpus_misses)}"
                 f"/{len(corpus_results)} as expected"
                 if args.corpus else ""),
              file=sys.stderr)
    return 1 if failures or corpus_misses else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from .scenarios import run_fuzz

    def progress(verdict):
        print(verdict.summary(), file=sys.stderr)

    report = run_fuzz(args.seed, args.count, slow=args.slow,
                      progress=progress,
                      minimize=not args.no_minimize,
                      validate=args.validate)
    print(report.render())
    if args.artifacts:
        os.makedirs(args.artifacts, exist_ok=True)
        for ce in report.counterexamples:
            base = os.path.join(args.artifacts, ce.name)
            with open(base + ".c", "w") as handle:
                handle.write(ce.source)
            with open(base + ".min.c", "w") as handle:
                handle.write(ce.minimized_source)
        document = {
            "seed": report.seed, "count": report.count,
            "slow": report.slow, "passed": report.passed,
            "verdicts": [
                {"name": v.name, "ok": v.ok,
                 "failed": list(v.failed)} for v in report.verdicts],
            "counterexamples": [
                {"name": ce.name, "failed": list(ce.failed),
                 "minimized_summary": ce.minimized_summary}
                for ce in report.counterexamples],
        }
        path = os.path.join(args.artifacts, "fuzz_report.json")
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2)
        print(f"wrote {path}", file=sys.stderr)
    if args.cache_stats:
        _print_cache_stats()
    return 0 if report.ok else 1


def _parse_tenants(spec: Optional[str]):
    """``name[=heap-limit]``, comma-separated, into TenantSpecs."""
    from .serve import TenantSpec

    tenants = {}
    if not spec:
        return tenants
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, limit = part.partition("=")
        name = name.strip()
        if not name:
            raise ConfigError(f"--tenants: empty tenant name in {spec!r}")
        try:
            heap = int(limit) if limit else None
        except ValueError:
            raise ConfigError(
                f"--tenants: heap limit for {name!r} must be an integer "
                f"byte count, got {limit!r}") from None
        tenants[name] = TenantSpec(name, device_heap_limit=heap)
    return tenants


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .serve import ServeLoop, ServeOptions
    from .serve.mixes import MIX_SOURCES, QUOTA_SOURCE, build_mix

    tenants = _parse_tenants(args.tenants)
    options = ServeOptions(
        workers=args.workers, policy=args.policy,
        batching=not args.no_batching, sharing=not args.no_sharing,
        cache=not args.no_cache, sanitize=args.sanitize,
        batch_limit=args.batch_limit, shuffle_seed=args.shuffle_seed,
        tenants=tenants, topology=_topology_from_args(args))
    sources = ((("quota", QUOTA_SOURCE),) if args.quota_mix
               else MIX_SOURCES)
    requests = build_mix(
        args.clients, seed=args.seed,
        tenants=tuple(tenants) if tenants else ("default",),
        arrival_spread_s=args.spread, sources=sources)
    report = ServeLoop(options).run(requests)
    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    return 0 if len(report.ok) == len(report.metrics) else 1


def _cmd_servebench(args: argparse.Namespace) -> int:
    from .evaluation.servebench import DEFAULT_SCALES, run_serve_bench

    def progress(cell):
        print(f"clients={cell.clients:5d} "
              f"cache={'on' if cell.cache else 'off':3s} "
              f"sharing={'on' if cell.sharing else 'off':3s} "
              f"{cell.throughput_rps:10.0f} req/s", file=sys.stderr)

    scales = tuple(args.clients) if args.clients else DEFAULT_SCALES
    report = run_serve_bench(scales=scales, seed=args.seed,
                             verify=not args.no_verify,
                             progress=progress)
    print(report.render())
    report.write(args.out)
    print(f"wrote {args.out}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_list(_: argparse.Namespace) -> int:
    for workload in ALL_WORKLOADS:
        print(f"{workload.name:16s} {workload.suite:10s} "
              f"{workload.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {"run": _cmd_run, "emit-ir": _cmd_emit_ir,
                "bench": _cmd_bench, "multibench": _cmd_multibench,
                "faultbench": _cmd_faultbench,
                "trace": _cmd_trace, "sanitize": _cmd_sanitize,
                "lint": _cmd_lint, "fuzz": _cmd_fuzz,
                "serve": _cmd_serve, "servebench": _cmd_servebench,
                "list": _cmd_list}
    try:
        return handlers[args.command](args)
    except TransformValidationError as exc:
        for finding in exc.findings:
            print(finding.render(), file=sys.stderr)
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except ConfigError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
