"""Redundant-transfer detector: statically visible missed
map-promotion opportunities.

Two shapes, both *optimization* diagnostics (WARNING, never ERROR):

* **missed-promotion** -- a loop contains both a ``map`` and an
  ``unmap`` of the same allocation unit while no CPU instruction in
  the loop reads or writes the unit (``ModRefAnalysis``): every
  iteration pays a device-to-host copy that map promotion (paper
  Algorithm 4) would hoist out of the loop.  Post-pipeline IR keeps
  promoted in-loop ``map``/``release`` pairs (they are refcount-only
  once the preheader holds a reference) but deletes the in-loop
  ``unmap``, so promoted loops do not re-trigger this diagnostic.

* **redundant-transfer** -- a straight-line ``unmap`` whose unit is
  re-``map``'d on every path onward (the unmap's block dominates the
  map's block and the map's block postdominates it) with no kernel
  launch, no other run-time call on the unit, and no CPU access to the
  unit in between: the copy-back/copy-up round trip is pure overhead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.alias import (Root, is_identified, ordered_roots,
                              underlying_objects)
from ..analysis.dominators import DominatorTree, PostDominatorTree
from ..analysis.loops import find_loops
from ..ir.function import Function
from ..ir.instructions import Call, Instruction, LaunchKernel
from ..ir.module import Module
from ..runtime.api import (MAP_FUNCTIONS, RUNTIME_FUNCTION_NAMES,
                           UNMAP_FUNCTIONS)
from .context import CheckContext
from .findings import Finding, Severity, finding_at
from .mapstate import _root_label

PASS_NAME = "redundant"


def _runtime_call_root(inst: Instruction) -> Optional[Tuple[str, List[Root]]]:
    """(callee name, identified roots of the unit operand) for run-time
    calls that name an allocation unit."""
    if not isinstance(inst, Call):
        return None
    name = inst.callee.name
    if name not in RUNTIME_FUNCTION_NAMES or not inst.args:
        return None
    roots = [r for r in ordered_roots(underlying_objects(inst.args[0]))
             if is_identified(r)]
    return name, roots


def check_redundant_transfers(module: Module,
                              ctx: CheckContext) -> List[Finding]:
    findings: List[Finding] = []
    for fn in module.defined_functions():
        if fn.is_kernel:
            continue
        findings.extend(_check_loops(fn, ctx))
        findings.extend(_check_round_trips(fn, ctx))
    return findings


# -- in-loop map/unmap with an idle CPU ------------------------------------


def _check_loops(fn: Function, ctx: CheckContext) -> List[Finding]:
    findings: List[Finding] = []
    for loop in find_loops(fn):
        maps: Dict[Root, Call] = {}
        unmaps: Dict[Root, Call] = {}
        for inst in loop.instructions():
            parsed = _runtime_call_root(inst)
            if parsed is None:
                continue
            name, roots = parsed
            if len(roots) != 1:
                continue
            root = roots[0]
            if name in MAP_FUNCTIONS:
                maps.setdefault(root, inst)
            elif name in UNMAP_FUNCTIONS:
                unmaps.setdefault(root, inst)
        for root in ordered_roots(set(maps) & set(unmaps)):
            mod, ref = ctx.modref.region_mod_ref(loop.blocks, root)
            if mod or ref:
                continue
            findings.append(finding_at(
                PASS_NAME, "missed-promotion", Severity.WARNING, maps[root],
                f"{_root_label(root)} is mapped and unmapped every "
                f"iteration of the loop at {loop.header.name} but no CPU "
                "code in the loop touches it; the map/unmap pair can be "
                "promoted out of the loop (paper Algorithm 4)"))
    return findings


# -- straight-line unmap -> map round trips --------------------------------


def _check_round_trips(fn: Function, ctx: CheckContext) -> List[Finding]:
    unmaps: List[Tuple[Call, Root]] = []
    maps: List[Tuple[Call, Root]] = []
    for inst in fn.instructions():
        parsed = _runtime_call_root(inst)
        if parsed is None:
            continue
        name, roots = parsed
        if len(roots) != 1:
            continue
        if name in UNMAP_FUNCTIONS:
            unmaps.append((inst, roots[0]))
        elif name in MAP_FUNCTIONS:
            maps.append((inst, roots[0]))
    if not unmaps or not maps:
        return []

    domtree = DominatorTree(fn)
    postdom = PostDominatorTree(fn)
    findings: List[Finding] = []
    for unmap_call, root in unmaps:
        remap = _find_remap(fn, unmap_call, root, maps, domtree, postdom,
                            ctx)
        if remap is not None:
            findings.append(finding_at(
                PASS_NAME, "redundant-transfer", Severity.WARNING,
                unmap_call,
                f"{_root_label(root)} is unmapped here and re-mapped at "
                f"{remap.parent.name}#{remap.parent.index(remap)} with no "
                "intervening launch or CPU access: the device-to-host/"
                "host-to-device round trip is redundant"))
    return findings


def _find_remap(fn: Function, unmap_call: Call, root: Root,
                maps: List[Tuple[Call, Root]], domtree: DominatorTree,
                postdom: PostDominatorTree,
                ctx: CheckContext) -> Optional[Call]:
    """The nearest map of ``root`` that the unmap always reaches with
    nothing relevant in between, or None."""
    b1 = unmap_call.parent
    for map_call, map_root in maps:
        if map_root is not root:
            continue
        bm = map_call.parent
        if bm is b1:
            i1 = b1.index(unmap_call)
            im = bm.index(map_call)
            if im <= i1:
                continue
            between = b1.instructions[i1 + 1:im]
            if _region_is_quiet(between, root, ctx):
                return map_call
            continue
        if not domtree.dominates(b1, bm) or not postdom.postdominates(bm, b1):
            continue
        # Region: the tail of b1, the head of bm, plus every block
        # strictly between them in the dominance sandwich.  The
        # sandwich over-approximates the paths, which only makes the
        # detector quieter (anything noisy in it suppresses the
        # warning).
        region: List[Instruction] = []
        region.extend(b1.instructions[b1.index(unmap_call) + 1:])
        region.extend(bm.instructions[:bm.index(map_call)])
        for block in fn.blocks:
            if block is b1 or block is bm:
                continue
            if domtree.dominates(b1, block) \
                    and postdom.postdominates(bm, block):
                region.extend(block.instructions)
        if _region_is_quiet(region, root, ctx):
            return map_call
    return None


def _region_is_quiet(instructions: List[Instruction], root: Root,
                     ctx: CheckContext) -> bool:
    """No launch, no run-time call naming ``root``, and no CPU mod/ref
    of ``root`` among ``instructions``."""
    for inst in instructions:
        if isinstance(inst, LaunchKernel):
            return False
        parsed = _runtime_call_root(inst)
        if parsed is not None:
            _name, roots = parsed
            if root in roots:
                return False
            continue
        mod, ref = ctx.modref.instruction_mod_ref(inst, root)
        if mod or ref:
            return False
    return True
