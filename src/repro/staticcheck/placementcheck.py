"""Placement pass: static diagnostics for multi-device partitioning.

Runs only when the caller supplies a multi-device
:class:`~repro.gpu.topology.Topology` (a lint over single-device
configurations emits nothing -- the pass is inert, not skipped, so
``passes_run`` stays stable).  It rebuilds the same unit-access graph
and greedy partition the execution coordinator will use and reports
what the partitioner could not do well:

* ``dynamic-size-unit`` (NOTE) -- an allocation unit's byte size is
  not statically known, so the runtime places it least-loaded instead
  of by plan.
* ``untraceable-operand`` (NOTE) -- a launch operand could not be
  traced to a host allocation unit; grid sharding stays conservative
  for that kernel.
* ``placement-imbalance`` (WARNING) -- the byte load of some device
  exceeds the balance envelope; one unit dominates total footprint
  and the topology cannot spread it.
* ``cross-device-coaccess`` (NOTE) -- two units co-accessed by the
  same launches were homed on different devices; every such launch
  pays a peer broadcast.

All severities are WARNING or NOTE: a placement can be *bad* without
the program being wrong, and ``LintReport.clean`` must not depend on
the topology swept.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.unitgraph import build_unit_graph
from ..ir.module import Module
from .context import CheckContext
from .findings import Finding, Severity

PASS = "placement"


def check_placement(module: Module, ctx: CheckContext,
                    topology: Optional[object] = None) -> List[Finding]:
    """Diagnose the static placement ``topology`` would induce."""
    if topology is None or getattr(topology, "num_devices", 1) < 2:
        return []
    from ..multigpu.placement import partition_units
    graph = build_unit_graph(module, ctx)
    plan = partition_units(graph, topology)
    findings: List[Finding] = []
    for label in sorted(graph.sizes):
        if graph.sizes[label] == 0:
            findings.append(Finding(
                PASS, "dynamic-size-unit", Severity.NOTE, "", "", -1, -1,
                f"allocation unit {label} has no statically known size; "
                "the runtime will place it least-loaded instead of by "
                "plan", unit=label))
    flagged = set()
    for site in graph.launches:
        if site.unknown and site.kernel not in flagged:
            flagged.add(site.kernel)
            findings.append(Finding(
                PASS, "untraceable-operand", Severity.NOTE,
                site.kernel, "", -1, -1,
                f"kernel {site.kernel} has a launch operand that could "
                "not be traced to a host allocation unit; grid sharding "
                "is disabled for its launches", unit=site.kernel))
    total = sum(graph.sizes.values())
    k = topology.num_devices
    if total and k > 1:
        envelope = 1.25 * total / k
        worst = max(range(k), key=lambda d: plan.loads[d])
        if plan.loads[worst] > envelope:
            findings.append(Finding(
                PASS, "placement-imbalance", Severity.WARNING,
                "", "", -1, -1,
                f"device gpu{worst} homes {plan.loads[worst]} of "
                f"{total} bytes (balance envelope {int(envelope)}); a "
                "single oversized unit dominates the footprint and "
                f"the {k}-device topology cannot spread it",
                unit=f"gpu{worst}"))
    for (a, b), weight in sorted(graph.edges.items()):
        if plan.assignment.get(a) != plan.assignment.get(b):
            findings.append(Finding(
                PASS, "cross-device-coaccess", Severity.NOTE,
                "", "", -1, -1,
                f"units {a} (gpu{plan.assignment.get(a)}) and {b} "
                f"(gpu{plan.assignment.get(b)}) are co-accessed by "
                f"{weight} launch site(s) but homed apart; each such "
                "launch pays a peer broadcast", unit=f"{a}|{b}"))
    return findings
