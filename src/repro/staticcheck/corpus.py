"""Seeded-defect corpus: known-bad MiniC modules the linter must flag.

Each entry is a tiny program that manages communication *by hand*
(MiniC exposes ``map``/``unmap``/``release``/``__launch`` directly) and
commits exactly one protocol violation; the corpus self-check demands
that the expected pass reports the expected kind on every entry --
zero false negatives.  Clean control entries must produce zero errors,
guarding against the passes degenerating into "flag everything".

The sources are lowered with :func:`repro.frontend.compile_minic`
alone (no pipeline): the defects live in the manual runtime calls, and
running the communication manager over them would repair the very bugs
the corpus exists to seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..frontend.lowering import compile_minic
from .findings import LintReport
from .linter import lint_module


@dataclass(frozen=True)
class CorpusDefect:
    """One seeded defect (or clean control, when ``kinds`` is empty)."""

    name: str
    description: str
    expected_pass: str    #: pass that must flag it ("" for controls)
    kinds: Tuple[str, ...]  #: any of these kinds counts as caught
    source: str

    @property
    def is_control(self) -> bool:
        return not self.kinds


@dataclass
class CorpusResult:
    defect: CorpusDefect
    report: LintReport
    caught: bool


_SCALE_PARAM = ("__global__ void scale(long tid, double *a) "
                "{ a[tid] = a[tid] * 2.0; }")
_SCALE_GLOBAL = ("__global__ void scale(long tid) "
                 "{ A[tid] = A[tid] * 2.0; }")


CORPUS: Tuple[CorpusDefect, ...] = (
    CorpusDefect(
        "dropped-map-global",
        "kernel consumes a global that was never mapped",
        "mapstate", ("launch-unmapped",),
        f"""
double A[8];
{_SCALE_GLOBAL}
int main(void) {{
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    __launch(scale, 8);
    return 0;
}}
"""),
    CorpusDefect(
        "raw-pointer-launch",
        "raw host pointer passed to a dereferenced kernel formal",
        "mapstate", ("launch-raw-pointer", "launch-unmapped"),
        f"""
double A[8];
{_SCALE_PARAM}
int main(void) {{
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    __launch(scale, 8, A);
    return 0;
}}
"""),
    CorpusDefect(
        "conditional-map",
        "map happens under an if: unit unmapped on the else path",
        "mapstate", ("launch-unmapped-path",),
        f"""
double A[8];
long n;
{_SCALE_GLOBAL}
int main(void) {{
    n = 6;
    if (n > 4) {{ map((char *) A); }}
    __launch(scale, 8);
    release((char *) A);
    return 0;
}}
"""),
    CorpusDefect(
        "missing-release",
        "function returns with the unit still mapped",
        "mapstate", ("refcount-leak",),
        f"""
double A[8];
{_SCALE_PARAM}
int main(void) {{
    double *d = (double *) map((char *) A);
    __launch(scale, 8, d);
    unmap((char *) A);
    return 0;
}}
"""),
    CorpusDefect(
        "double-release",
        "second release of an already-released unit",
        "mapstate", ("double-release",),
        f"""
double A[8];
{_SCALE_PARAM}
int main(void) {{
    double *d = (double *) map((char *) A);
    __launch(scale, 8, d);
    unmap((char *) A);
    release((char *) A);
    release((char *) A);
    return 0;
}}
"""),
    CorpusDefect(
        "release-underflow",
        "release of a unit that was never mapped",
        "mapstate", ("release-underflow",),
        """
double A[8];
int main(void) {
    release((char *) A);
    return 0;
}
"""),
    CorpusDefect(
        "unmap-unmapped",
        "unmap of a unit that was never mapped",
        "mapstate", ("unmap-unmapped",),
        """
double A[8];
int main(void) {
    unmap((char *) A);
    return 0;
}
"""),
    CorpusDefect(
        "hoist-past-cpu-write",
        "CPU stores to the unit after map: device copy is stale",
        "mapstate", ("stale-device-read",),
        f"""
double A[8];
{_SCALE_PARAM}
int main(void) {{
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    double *d = (double *) map((char *) A);
    A[0] = 99.0;
    __launch(scale, 8, d);
    unmap((char *) A);
    release((char *) A);
    return 0;
}}
"""),
    CorpusDefect(
        "stale-host-read",
        "CPU reads the unit before the device writes are unmapped back",
        "mapstate", ("stale-host-read",),
        f"""
double A[8];
{_SCALE_PARAM}
int main(void) {{
    double *d = (double *) map((char *) A);
    __launch(scale, 8, d);
    print_f64(A[0]);
    unmap((char *) A);
    release((char *) A);
    return 0;
}}
"""),
    CorpusDefect(
        "lost-update-unmap",
        "unmap copies stale device bytes over a newer CPU store",
        "mapstate", ("lost-update",),
        """
double A[8];
double B[8];
__global__ void touch(long tid, double *b) { b[tid] = 1.0; }
int main(void) {
    double *da = (double *) map((char *) A);
    double *db = (double *) map((char *) B);
    A[0] = 42.0;
    __launch(touch, 8, db);
    unmap((char *) A);
    release((char *) A);
    unmap((char *) B);
    release((char *) B);
    return 0;
}
"""),
    CorpusDefect(
        "use-after-release",
        "kernel launched after the unit's mapping was released",
        "mapstate", ("use-after-release",),
        f"""
double A[8];
{_SCALE_GLOBAL}
int main(void) {{
    map((char *) A);
    __launch(scale, 8);
    unmap((char *) A);
    release((char *) A);
    __launch(scale, 8);
    return 0;
}}
"""),
    CorpusDefect(
        "device-free-live",
        "heap unit freed while still mapped to the device",
        "mapstate", ("device-free-live",),
        f"""
{_SCALE_PARAM}
int main(void) {{
    double *p = (double *) malloc(8 * sizeof(double));
    double *d = (double *) map((char *) p);
    __launch(scale, 8, d);
    free((char *) p);
    return 0;
}}
"""),
    CorpusDefect(
        "pointer-mix",
        "CPU dereferences the device pointer returned by map",
        "mapstate", ("pointer-mix",),
        """
double A[8];
int main(void) {
    double *d = (double *) map((char *) A);
    d[0] = 3.14;
    unmap((char *) A);
    release((char *) A);
    return 0;
}
"""),
    CorpusDefect(
        "doall-dependent",
        "kernel has a cross-thread flow dependence (a[tid+1] = a[tid])",
        "doall", ("doall-race",),
        """
double A[16];
__global__ void shift(long tid, double *a) { a[tid + 1] = a[tid]; }
int main(void) {
    double *d = (double *) map((char *) A);
    __launch(shift, 8, d);
    unmap((char *) A);
    release((char *) A);
    return 0;
}
"""),
    CorpusDefect(
        "doall-reduction",
        "every thread updates one shared scalar without synchronization",
        "doall", ("doall-race",),
        """
double S[1];
double A[8];
__global__ void sum(long tid, double *a) { S[0] = S[0] + a[tid]; }
int main(void) {
    map((char *) S);
    double *d = (double *) map((char *) A);
    __launch(sum, 8, d);
    unmap((char *) S);
    release((char *) S);
    unmap((char *) A);
    release((char *) A);
    return 0;
}
"""),
    CorpusDefect(
        "doall-stride-overlap",
        "write stride differs from read stride: iterations collide",
        "doall", ("doall-race",),
        """
double A[16];
__global__ void stride(long tid, double *a) { a[tid * 2] = a[tid]; }
int main(void) {
    double *d = (double *) map((char *) A);
    __launch(stride, 8, d);
    unmap((char *) A);
    release((char *) A);
    return 0;
}
"""),
    CorpusDefect(
        "redundant-round-trip",
        "unmap immediately re-mapped and an in-loop map/unmap pair "
        "with an idle CPU (both missed-optimization diagnostics)",
        "redundant", ("redundant-transfer", "missed-promotion"),
        f"""
double A[8];
{_SCALE_GLOBAL}
int main(void) {{
    for (int i = 0; i < 4; i++) {{
        map((char *) A);
        __launch(scale, 8);
        unmap((char *) A);
        release((char *) A);
    }}
    map((char *) A);
    __launch(scale, 8);
    unmap((char *) A);
    map((char *) A);
    __launch(scale, 8);
    unmap((char *) A);
    release((char *) A);
    release((char *) A);
    return 0;
}}
"""),
    # -- clean controls: zero errors required -------------------------
    CorpusDefect(
        "control-simple",
        "well-formed manual map/launch/unmap/release sequence",
        "", (),
        f"""
double A[8];
{_SCALE_PARAM}
int main(void) {{
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    double *d = (double *) map((char *) A);
    __launch(scale, 8, d);
    unmap((char *) A);
    release((char *) A);
    double s = 0.0;
    for (int i = 0; i < 8; i++) s = s + A[i];
    print_f64(s);
    return 0;
}}
"""),
    CorpusDefect(
        "control-loop",
        "per-iteration map/unmap justified by CPU stores in the loop",
        "", (),
        f"""
double A[8];
{_SCALE_PARAM}
int main(void) {{
    for (int i = 0; i < 4; i++) {{
        A[i] = i + 1.0;
        double *d = (double *) map((char *) A);
        __launch(scale, 8, d);
        unmap((char *) A);
        release((char *) A);
    }}
    print_f64(A[0]);
    return 0;
}}
"""),
    CorpusDefect(
        "control-heap",
        "heap unit freed only after its mapping was released",
        "", (),
        f"""
{_SCALE_PARAM}
int main(void) {{
    double *p = (double *) malloc(8 * sizeof(double));
    for (int i = 0; i < 8; i++) p[i] = i + 1;
    double *d = (double *) map((char *) p);
    __launch(scale, 8, d);
    unmap((char *) p);
    release((char *) p);
    print_f64(p[0]);
    free((char *) p);
    return 0;
}}
"""),
    # -- asynchronous-stream hazards (happens-before auditor) ---------
    CorpusDefect(
        "async-use-before-sync",
        "CPU reads the unit while its asynchronous write-back is still "
        "in flight (no cgcmSync orders the read after the DtoH copy)",
        "hbcheck", ("hb-use-before-sync",),
        f"""
double A[8];
{_SCALE_GLOBAL}
int main(void) {{
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    print_f64(A[0]);
    cgcmSync();
    release((char *) A);
    return 0;
}}
"""),
    CorpusDefect(
        "async-ww-conflict",
        "CPU store to the unit races the in-flight asynchronous "
        "write-back on the download stream (cross-stream W/W)",
        "hbcheck", ("hb-ww-conflict",),
        f"""
double A[8];
{_SCALE_GLOBAL}
int main(void) {{
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    A[0] = 99.0;
    cgcmSync();
    release((char *) A);
    return 0;
}}
"""),
    CorpusDefect(
        "async-map-unmap-race",
        "asynchronous unmap issued while the asynchronous map is still "
        "in flight: no launch orders the download after the upload",
        "hbcheck", ("hb-map-unmap-race",),
        """
double A[8];
int main(void) {
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    mapAsync((char *) A);
    unmapAsync((char *) A);
    cgcmSync();
    release((char *) A);
    print_f64(A[0]);
    return 0;
}
"""),
    CorpusDefect(
        "async-sync-unrecorded",
        "cgcmSync waits on the download stream but no asynchronous "
        "write-back was ever issued (wait on a never-recorded event)",
        "hbcheck", ("hb-sync-unrecorded",),
        f"""
double A[8];
{_SCALE_GLOBAL}
int main(void) {{
    cgcmSync();
    map((char *) A);
    __launch(scale, 8);
    unmap((char *) A);
    release((char *) A);
    return 0;
}}
"""),
    CorpusDefect(
        "async-dead-sync",
        "second cgcmSync back-to-back: the first already drained the "
        "download stream, the second synchronizes nothing",
        "hbcheck", ("hb-dead-sync",),
        f"""
double A[8];
{_SCALE_GLOBAL}
int main(void) {{
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    cgcmSync();
    cgcmSync();
    release((char *) A);
    print_f64(A[0]);
    return 0;
}}
"""),
    # -- async clean controls: zero errors required -------------------
    CorpusDefect(
        "control-async-clean",
        "well-ordered asynchronous schedule: launch fences the upload, "
        "cgcmSync orders the write-back before the CPU read",
        "", (),
        f"""
double A[8];
{_SCALE_GLOBAL}
int main(void) {{
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    cgcmSync();
    release((char *) A);
    print_f64(A[0]);
    return 0;
}}
"""),
    CorpusDefect(
        "control-async-loop",
        "per-iteration asynchronous round trip, synced before the next "
        "iteration's CPU store touches the unit",
        "", (),
        f"""
double A[8];
{_SCALE_GLOBAL}
int main(void) {{
    for (int i = 0; i < 4; i++) {{
        A[i] = i + 1.0;
        mapAsync((char *) A);
        __launch(scale, 8);
        unmapAsync((char *) A);
        cgcmSync();
        release((char *) A);
    }}
    print_f64(A[0]);
    return 0;
}}
"""),
)


def get_defect(name: str) -> CorpusDefect:
    for defect in CORPUS:
        if defect.name == name:
            return defect
    raise KeyError(f"unknown corpus entry {name!r}")


def check_corpus(names: Optional[List[str]] = None) -> List[CorpusResult]:
    """Lint every corpus entry and judge whether it was handled right.

    A defect entry is *caught* when the expected pass reports one of
    the expected kinds; a control entry passes when its report has no
    errors.
    """
    selected = (CORPUS if names is None
                else tuple(get_defect(n) for n in names))
    results: List[CorpusResult] = []
    for defect in selected:
        module = compile_minic(defect.source, defect.name)
        report = lint_module(module)
        if defect.is_control:
            caught = report.clean
        else:
            caught = any(f.pass_name == defect.expected_pass
                         and f.kind in defect.kinds
                         for f in report.findings)
        results.append(CorpusResult(defect, report, caught))
    return results
