"""Static communication verifier and DOALL race auditor.

The dynamic sanitizer (``repro.sanitizer``) checks CGCM's invariants
per run; this package proves them over all paths on post-pipeline IR:

* :mod:`mapstate`   -- abstract interpretation over a per-allocation-
  unit mapping lattice: every launched kernel's operands must be
  mapped on all incoming paths, map/unmap/release must balance, no
  double release, no use after release, no CPU access racing a live
  device copy.
* :mod:`redundant`  -- map/unmap round trips with no intervening CPU
  mod/ref: statically visible missed map-promotion opportunities.
* :mod:`doallcheck` -- independent re-derivation of affine access
  forms from each outlined kernel's own IR and a cross-thread
  conflict re-check (defense-in-depth against parallelizer bugs).
* :mod:`hbcheck`    -- happens-before auditor for the asynchronous
  stream schedule: every CPU access of a unit with an in-flight
  asynchronous copy must be statically ordered after it (per-stream
  FIFO, launch/copy events, ``cgcmSync`` barriers); also flags waits
  on never-recorded events and dead synchronization.
* :mod:`transval`   -- translation validation of the pass pipeline:
  after each optimize-stage pass, check the pass's declared legality
  contract (``transforms/contract``) on the before/after IR pair.

Entry points: :func:`lint_module` / :func:`lint_source` /
:func:`lint_workload` (module :mod:`linter`), and the seeded-defect
corpus self-check in :mod:`corpus`.  CLI: ``python -m repro lint``.
"""

from .findings import Finding, LintReport, Severity, sarif_document
from .linter import lint_module, lint_source, lint_workload
from .corpus import CORPUS, CorpusDefect, check_corpus
from .hbcheck import check_happens_before
from .transval import TranslationValidator, validate_stage

__all__ = [
    "Finding", "LintReport", "Severity", "sarif_document",
    "lint_module", "lint_source", "lint_workload",
    "CORPUS", "CorpusDefect", "check_corpus",
    "check_happens_before",
    "TranslationValidator", "validate_stage",
]
