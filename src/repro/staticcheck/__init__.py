"""Static communication verifier and DOALL race auditor.

The dynamic sanitizer (``repro.sanitizer``) checks CGCM's invariants
per run; this package proves them over all paths on post-pipeline IR:

* :mod:`mapstate`   -- abstract interpretation over a per-allocation-
  unit mapping lattice: every launched kernel's operands must be
  mapped on all incoming paths, map/unmap/release must balance, no
  double release, no use after release, no CPU access racing a live
  device copy.
* :mod:`redundant`  -- map/unmap round trips with no intervening CPU
  mod/ref: statically visible missed map-promotion opportunities.
* :mod:`doallcheck` -- independent re-derivation of affine access
  forms from each outlined kernel's own IR and a cross-thread
  conflict re-check (defense-in-depth against parallelizer bugs).

Entry points: :func:`lint_module` / :func:`lint_source` /
:func:`lint_workload` (module :mod:`linter`), and the seeded-defect
corpus self-check in :mod:`corpus`.  CLI: ``python -m repro lint``.
"""

from .findings import Finding, LintReport, Severity
from .linter import lint_module, lint_source, lint_workload
from .corpus import CORPUS, CorpusDefect, check_corpus

__all__ = [
    "Finding", "LintReport", "Severity",
    "lint_module", "lint_source", "lint_workload",
    "CORPUS", "CorpusDefect", "check_corpus",
]
