"""Mapping-state verifier: abstract interpretation of the CGCM
run-time protocol.

For every allocation unit the checker tracks an abstract state drawn
from the lattice {unmapped, mapped, released, T} -- implemented as a
relative reference count (``delta`` over an optionally-unknown entry
count, ``top`` when paths disagree) plus coherence flags that mirror
the run-time's copy rules exactly:

* ``map`` copies host-to-device only when the count was zero,
* any kernel launch advances the global epoch (``stale``),
* ``unmap`` copies device-to-host only when the epoch is stale,
* ``release`` at count zero frees the device buffer.

The per-instruction checks are the static counterparts of the dynamic
sanitizer's violation taxonomy (``sanitizer/violations.py``):

=====================  ==================================================
kind                   meaning
=====================  ==================================================
launch-unmapped        kernel consumes a unit that is unmapped here
launch-unmapped-path   ... unmapped on at least one incoming path (T)
launch-raw-pointer     raw host pointer reaches a dereferenced formal
use-after-release      unit used/unmapped after its release to zero
stale-device-read      kernel reads a unit the CPU wrote while mapped
stale-host-read        CPU reads a unit with unsynced device writes
lost-update            copy-back/release clobbers or drops newer data
refcount-leak          function exits with its own map unreleased
double-release         release of an already-released unit
release-underflow      release of a never-mapped unit
unmap-unmapped         unmap of a never-mapped unit
device-free-live       free/realloc of a unit that is still mapped
pointer-mix            CPU dereference of a device (map-result) pointer
=====================  ==================================================

Interprocedural: functions are solved callees-first over
``analysis.callgraph``; each function exports its net effect per
module-visible unit (globals, heap blocks, its own pointer arguments)
and call sites replay that summary.  Recursive functions get no
summary (their call sites are skipped, conservatively silent) but are
still checked internally.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..analysis import dataflow
from ..analysis.alias import (UNKNOWN, Root, is_identified, ordered_roots,
                              underlying_objects)
from ..ir.function import Function
from ..ir.instructions import (Alloca, Call, Instruction, LaunchKernel, Load,
                               Return, Store)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable
from ..runtime.api import (MAP_ARRAY_FUNCTIONS, MAP_FUNCTIONS,
                           RELEASE_ARRAY_FUNCTIONS, RELEASE_FUNCTIONS,
                           RUNTIME_FUNCTION_NAMES, UNMAP_ARRAY_FUNCTIONS,
                           UNMAP_FUNCTIONS)
from .context import CheckContext, launch_arg_host_roots
from .findings import Finding, Severity, finding_at, finding_in_function

PASS_NAME = "mapstate"

#: Reference-count deltas beyond this saturate to T.
_DELTA_CAP = 64


@dataclass(frozen=True)
class UnitState:
    """Abstract state of one allocation unit at one program point."""

    #: The unit may already be mapped by a caller (non-entry function).
    entry_unknown: bool = False
    #: Net map - release count relative to the function entry.
    delta: int = 0
    #: Paths disagree on the count.
    top: bool = False
    #: A release dropped the count to zero (cleared by the next map).
    released: bool = False
    #: The CPU stored to the unit while it was mapped (device copy
    #: predates the store).
    host_dirty: bool = False
    #: A kernel may have written the unit since the last sync.
    dev_written: bool = False
    #: A launch happened while the unit was mapped: the next unmap
    #: will copy device memory back over the host copy.
    stale: bool = False
    #: This function performed a map on the unit.
    mapped_here: bool = False

    @property
    def provably_mapped(self) -> bool:
        return not self.top and self.delta >= 1

    @property
    def provably_unmapped(self) -> bool:
        return not self.top and not self.entry_unknown and self.delta == 0

    @property
    def possibly_mapped(self) -> bool:
        return self.top or self.delta >= 1

    def lattice_name(self) -> str:
        if self.top:
            return "T"
        if self.provably_mapped:
            return "mapped"
        if self.provably_unmapped:
            return "released" if self.released else "unmapped"
        return "unknown"


def _join_units(a: UnitState, b: UnitState) -> UnitState:
    if a == b:
        return a
    return UnitState(
        entry_unknown=a.entry_unknown or b.entry_unknown,
        delta=min(a.delta, b.delta),
        top=a.top or b.top or a.delta != b.delta,
        released=a.released or b.released,
        host_dirty=a.host_dirty or b.host_dirty,
        dev_written=a.dev_written or b.dev_written,
        stale=a.stale or b.stale,
        mapped_here=a.mapped_here or b.mapped_here,
    )


#: A dataflow state: allocation-unit root -> abstract state.  Treated
#: as immutable; transfers build fresh dicts.
MapState = Dict[Root, UnitState]


@dataclass
class FunctionSummary:
    """Externally visible effect of one function on allocation units."""

    exit_states: Dict[Root, UnitState]
    launch_reads: FrozenSet[Root]
    launch_writes: FrozenSet[Root]
    any_launch: bool


def _trackable(root: Root) -> bool:
    """Roots the verifier keeps state for: host allocation units."""
    if root is UNKNOWN or isinstance(root, str) \
            or isinstance(root, Constant):
        return False
    if isinstance(root, Call):
        return root.callee.name not in MAP_FUNCTIONS  # device pointers
    return isinstance(root, (GlobalVariable, Alloca, Argument))


def _is_device_root(root: Root) -> bool:
    return isinstance(root, Call) and root.callee.name in MAP_FUNCTIONS


class MapStateProblem(dataflow.DataflowProblem):
    """Forward dataflow over :data:`MapState` for one function."""

    direction = "forward"

    def __init__(self, fn: Function, ctx: CheckContext):
        self.fn = fn
        self.ctx = ctx
        self._is_entry_fn = fn.name == "main"

    # -- lattice -----------------------------------------------------------

    def default_state(self, root: Root) -> UnitState:
        local = self._is_entry_fn
        if isinstance(root, Instruction) and root.parent is not None \
                and root.parent.parent is self.fn:
            local = True  # created during this function: starts unmapped
        return UnitState(entry_unknown=not local)

    def boundary_state(self, fn: Function) -> MapState:
        return {}

    def initial_state(self, fn: Function) -> MapState:
        return {}

    def join(self, states: List[MapState]) -> MapState:
        result: MapState = dict(states[0])
        for other in states[1:]:
            for root in set(result) | set(other):
                a = result.get(root)
                b = other.get(root)
                if a is None:
                    a = self.default_state(root)
                if b is None:
                    b = self.default_state(root)
                result[root] = _join_units(a, b)
        return result

    def _get(self, state: MapState, root: Root) -> UnitState:
        existing = state.get(root)
        return existing if existing is not None else self.default_state(root)

    # -- transfer ----------------------------------------------------------

    def transfer_instruction(self, inst: Instruction,
                             state: MapState) -> MapState:
        if isinstance(inst, Call):
            return self._transfer_call(inst, state)
        if isinstance(inst, LaunchKernel):
            return self._transfer_launch(inst, state)
        if isinstance(inst, Store):
            return self._transfer_store(inst, state)
        return state

    def _single_root(self, value) -> Tuple[List[Root], bool]:
        """(trackable roots, strong) of a runtime-call operand."""
        roots = [r for r in ordered_roots(underlying_objects(value))
                 if _trackable(r)]
        strong = len(roots) == 1
        return roots, strong

    def _apply(self, state: MapState, root: Root, new: UnitState,
               strong: bool) -> MapState:
        old = self._get(state, root)
        result = dict(state)
        result[root] = new if strong else _join_units(old, new)
        return result

    def _map_effect(self, s: UnitState) -> UnitState:
        delta = s.delta + 1
        top = s.top
        if delta > _DELTA_CAP:
            delta, top = _DELTA_CAP, True
        if s.provably_unmapped:
            # Count was zero: the run-time copies host-to-device and
            # starts a fresh epoch.
            return UnitState(entry_unknown=s.entry_unknown, delta=delta,
                             top=top, mapped_here=True)
        return replace(s, delta=delta, top=top, released=False,
                       mapped_here=True)

    def _unmap_effect(self, s: UnitState) -> UnitState:
        if s.stale:
            # Copy-back syncs host with device.
            return replace(s, stale=False, dev_written=False,
                           host_dirty=False)
        return s

    def _release_effect(self, s: UnitState) -> UnitState:
        if s.provably_unmapped:
            return s  # underflow: reported, state pinned at zero
        delta = s.delta - 1
        top = s.top
        if delta < -_DELTA_CAP:
            delta, top = -_DELTA_CAP, True
        s = replace(s, delta=delta, top=top)
        if s.provably_unmapped:
            # Dropped to zero: device buffer gone.
            s = replace(s, released=True, stale=False, dev_written=False,
                        host_dirty=False)
        return s

    def _transfer_call(self, inst: Call, state: MapState) -> MapState:
        name = inst.callee.name
        if name in MAP_FUNCTIONS:
            roots, strong = self._single_root(inst.args[0])
            for root in roots:
                state = self._apply(state, root,
                                    self._map_effect(self._get(state, root)),
                                    strong)
            if name in MAP_ARRAY_FUNCTIONS:
                state = self._array_elements_sync(inst, state, on_map=True)
            return state
        if name in UNMAP_FUNCTIONS:
            roots, strong = self._single_root(inst.args[0])
            for root in roots:
                state = self._apply(
                    state, root,
                    self._unmap_effect(self._get(state, root)), strong)
            if name in UNMAP_ARRAY_FUNCTIONS:
                state = self._array_elements_sync(inst, state, on_map=False)
            return state
        if name in RELEASE_FUNCTIONS:
            roots, strong = self._single_root(inst.args[0])
            for root in roots:
                state = self._apply(
                    state, root,
                    self._release_effect(self._get(state, root)), strong)
            if name in RELEASE_ARRAY_FUNCTIONS:
                state = self._array_elements_sync(inst, state, on_map=False)
            return state
        if name in RUNTIME_FUNCTION_NAMES:
            return state  # declareGlobal / declareAlloca: registration
        if name in ("free", "realloc"):
            return state  # checked, no abstract effect
        if inst.callee.is_declaration:
            return state  # externals do not touch the mapping table
        return self._transfer_defined_call(inst, state)

    def _array_elements_sync(self, inst: Call, state: MapState,
                             on_map: bool) -> MapState:
        """``unmapArray``/``releaseArray`` sync every element the array
        may hold (``mapArray`` refreshes them)."""
        for unit in ordered_roots(underlying_objects(inst.args[0])):
            contents = self.ctx.coverage.get(unit)
            if not contents:
                continue
            for element in ordered_roots(contents):
                if not _trackable(element):
                    continue
                s = self._get(state, element)
                if s.stale or s.dev_written or s.host_dirty:
                    state = self._apply(
                        state, element,
                        replace(s, stale=False, dev_written=False,
                                host_dirty=False), True)
        return state

    def _transfer_defined_call(self, inst: Call,
                               state: MapState) -> MapState:
        summary = self.ctx.summaries.get(inst.callee)
        mod_candidates = [root for root, s in state.items()
                          if s.possibly_mapped or s.dev_written]
        for root in ordered_roots(mod_candidates):
            mod, _ref = self.ctx.modref.call_mod_ref(inst, root)
            s = self._get(state, root)
            if mod and s.possibly_mapped:
                state = self._apply(state, root,
                                    replace(s, host_dirty=True), True)
        if not isinstance(summary, FunctionSummary):
            return state  # recursive / unknown: conservatively silent
        for root in ordered_roots(summary.exit_states):
            effect = summary.exit_states[root]
            targets, strong = self._translate_summary_root(inst, root)
            for target in targets:
                s = self._get(state, target)
                delta = s.delta + effect.delta
                top = s.top or effect.top
                if abs(delta) > _DELTA_CAP:
                    delta, top = max(min(delta, _DELTA_CAP),
                                     -_DELTA_CAP), True
                new = replace(
                    s, delta=delta, top=top,
                    released=effect.released or (s.released
                                                 and effect.delta == 0),
                    host_dirty=s.host_dirty or effect.host_dirty,
                    dev_written=s.dev_written or effect.dev_written,
                    stale=s.stale or effect.stale)
                state = self._apply(state, target, new, strong)
        if summary.any_launch:
            state = self._advance_epoch(state)
        return state

    def _translate_summary_root(self, call: Call, root: Root
                                ) -> Tuple[List[Root], bool]:
        """Callee-side root -> caller-side roots at this call site."""
        if isinstance(root, Argument):
            if root.index >= len(call.args):
                return [], True
            actual = call.args[root.index]
            roots = [r for r in ordered_roots(underlying_objects(actual))
                     if _trackable(r) and not isinstance(r, Argument)
                     or (isinstance(r, Argument) and _trackable(r))]
            return roots, len(roots) == 1
        return [root], True

    def _advance_epoch(self, state: MapState) -> MapState:
        changed = False
        result = dict(state)
        for root, s in state.items():
            if s.possibly_mapped and not s.stale:
                result[root] = replace(s, stale=True)
                changed = True
        return result if changed else state

    def _transfer_launch(self, inst: LaunchKernel,
                         state: MapState) -> MapState:
        state = self._advance_epoch(state)
        for root, _read, write in self._launch_unit_accesses(inst):
            if not write:
                continue
            s = self._get(state, root)
            if s.possibly_mapped or self._covered_by_mapped(root, state) \
                    or s.entry_unknown:
                state = self._apply(state, root,
                                    replace(s, dev_written=True), True)
        return state

    def _transfer_store(self, inst: Store, state: MapState) -> MapState:
        for root in ordered_roots(underlying_objects(inst.pointer)):
            if not _trackable(root) or not is_identified(root):
                continue
            s = self._get(state, root)
            if s.possibly_mapped:
                state = self._apply(state, root,
                                    replace(s, host_dirty=True), True)
        return state

    # -- launch resolution -------------------------------------------------

    def _launch_unit_accesses(self, inst: LaunchKernel
                              ) -> List[Tuple[Root, bool, bool]]:
        """(root, read, write) for every host unit the launch touches."""
        acc = self.ctx.kernel_access(inst.kernel)
        access: Dict[int, Tuple[Root, bool, bool]] = {}
        order: List[Root] = []
        flags: Dict[Root, List[bool]] = {}

        def note(root: Root, read: bool, write: bool) -> None:
            if not _trackable(root):
                return
            if root not in flags:
                flags[root] = [False, False]
                order.append(root)
            flags[root][0] = flags[root][0] or read
            flags[root][1] = flags[root][1] or write

        for root in acc.reads:
            note(root, True, False)
        for root in acc.writes:
            note(root, False, True)
        for index in sorted(acc.formal_reads | acc.formal_writes):
            arg_pos = index - 1  # launch args skip the tid parameter
            if arg_pos < 0 or arg_pos >= len(inst.args):
                continue
            mapped, _raw = launch_arg_host_roots(inst.args[arg_pos])
            read = index in acc.formal_reads
            write = index in acc.formal_writes
            for root in mapped:
                note(root, read, write)
        return [(root, flags[root][0], flags[root][1]) for root in order]

    def _covered_by_mapped(self, root: Root, state: MapState) -> bool:
        """Is ``root`` an element of a pointer array that is itself
        (possibly) mapped?  ``mapArray`` maps every element, so such
        units are handled even though no direct ``map`` names them."""
        for unit in self.ctx.covering_arrays(root):
            s = state.get(unit)
            if s is not None and s.possibly_mapped:
                return True
            if s is None and isinstance(unit, Argument):
                return True  # array behind a caller argument: lenient
        return False


class MapStateChecker:
    """Runs the dataflow per function (callees first) and reports."""

    def __init__(self, module: Module, ctx: CheckContext):
        self.module = module
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._results: Dict[Function, dataflow.DataflowResult] = {}
        self._problems: Dict[Function, MapStateProblem] = {}

    # -- driver ------------------------------------------------------------

    def run(self) -> List[Finding]:
        for fn in self.ctx.callgraph.bottom_up():
            if fn.is_kernel or fn.is_declaration:
                continue
            problem = MapStateProblem(fn, self.ctx)
            result = dataflow.solve(fn, problem)
            self._problems[fn] = problem
            self._results[fn] = result
            if not self.ctx.callgraph.is_recursive(fn):
                self.ctx.summaries[fn] = self._summarize(fn, result)
        for fn in self.module.defined_functions():
            if fn.is_kernel:
                continue
            self._report_function(fn)
        return self.findings

    def _summarize(self, fn: Function,
                   result: dataflow.DataflowResult) -> FunctionSummary:
        exits = [b for b in result.blocks if not b.successors]
        problem = self._problems[fn]
        if exits:
            exit_state = problem.join([result.output_state(b)
                                       for b in exits])
        else:
            exit_state = {}
        visible: Dict[Root, UnitState] = {}
        default = UnitState()
        for root, s in exit_state.items():
            if isinstance(root, (Alloca,)) or (
                    isinstance(root, Call)
                    and root.callee.name == "declareAlloca"):
                block = root.parent
                if block is not None and block.parent is fn:
                    continue  # this function's stack: dies with the frame
            if isinstance(root, Argument) and root.function is not fn:
                continue
            base = problem.default_state(root)
            if s != base and s != default:
                visible[root] = s
        reads, writes, any_launch = self._launch_sets(fn)
        return FunctionSummary(visible, reads, writes, any_launch)

    def _launch_sets(self, fn: Function
                     ) -> Tuple[FrozenSet[Root], FrozenSet[Root], bool]:
        reads: set = set()
        writes: set = set()
        any_launch = False
        problem = self._problems[fn]
        for inst in fn.instructions():
            if isinstance(inst, LaunchKernel):
                any_launch = True
                for root, read, write in problem._launch_unit_accesses(inst):
                    if read:
                        reads.add(root)
                    if write:
                        writes.add(root)
            elif isinstance(inst, Call) and not inst.callee.is_declaration:
                sub = self.ctx.summaries.get(inst.callee)
                if isinstance(sub, FunctionSummary):
                    any_launch = any_launch or sub.any_launch
                    reads |= set(sub.launch_reads)
                    writes |= set(sub.launch_writes)
        return frozenset(reads), frozenset(writes), any_launch

    # -- reporting ---------------------------------------------------------

    def _emit(self, kind: str, severity: Severity, inst: Instruction,
              message: str, unit: str = "") -> None:
        self.findings.append(
            finding_at(PASS_NAME, kind, severity, inst, message, unit))

    def _report_function(self, fn: Function) -> None:
        result = self._results.get(fn)
        problem = self._problems.get(fn)
        if result is None or problem is None:
            return
        for block in fn.blocks:
            if block not in result._block_in:
                continue
            for inst, before in result.instruction_states(block):
                self._check_instruction(fn, problem, inst, before)

    def _check_instruction(self, fn: Function, problem: MapStateProblem,
                           inst: Instruction, state: MapState) -> None:
        if isinstance(inst, Call):
            self._check_call(fn, problem, inst, state)
        elif isinstance(inst, LaunchKernel):
            self._check_launch(fn, problem, inst, state)
        elif isinstance(inst, Load):
            self._check_cpu_access(problem, inst, inst.pointer, state,
                                   is_load=True)
        elif isinstance(inst, Store):
            self._check_cpu_access(problem, inst, inst.pointer, state,
                                   is_load=False)
        elif isinstance(inst, Return):
            self._check_return(fn, problem, inst, state)

    def _check_call(self, fn: Function, problem: MapStateProblem,
                    inst: Call, state: MapState) -> None:
        name = inst.callee.name
        if name in UNMAP_FUNCTIONS:
            roots, strong = problem._single_root(inst.args[0])
            for root in roots:
                s = problem._get(state, root)
                if s.provably_unmapped and strong:
                    if s.released:
                        self._emit("use-after-release", Severity.ERROR, inst,
                                   f"unmap of {_root_label(root)} after its "
                                   "release dropped the mapping",
                                   unit=_root_label(root))
                    else:
                        self._emit("unmap-unmapped", Severity.ERROR, inst,
                                   f"unmap of {_root_label(root)} which is "
                                   "not mapped", unit=_root_label(root))
                elif s.top:
                    self._emit("unmap-unmapped-path", Severity.WARNING, inst,
                               f"unmap of {_root_label(root)} which is not "
                               "mapped on all incoming paths",
                               unit=_root_label(root))
                elif s.stale and s.host_dirty and strong:
                    self._emit("lost-update", Severity.ERROR, inst,
                               f"unmap of {_root_label(root)} copies stale "
                               "device memory over a newer CPU store",
                               unit=_root_label(root))
        elif name in RELEASE_FUNCTIONS:
            roots, strong = problem._single_root(inst.args[0])
            for root in roots:
                s = problem._get(state, root)
                if s.provably_unmapped and strong:
                    if s.released:
                        self._emit("double-release", Severity.ERROR, inst,
                                   f"release of {_root_label(root)} which "
                                   "was already released",
                                   unit=_root_label(root))
                    else:
                        self._emit("release-underflow", Severity.ERROR, inst,
                                   f"release of {_root_label(root)} which "
                                   "was never mapped", unit=_root_label(root))
                elif s.top:
                    self._emit("release-underflow", Severity.WARNING, inst,
                               f"release of {_root_label(root)} which is "
                               "not mapped on all incoming paths",
                               unit=_root_label(root))
                elif strong and not s.top and not s.entry_unknown \
                        and s.delta == 1 and s.dev_written:
                    # Provably drops the count to zero: the device
                    # buffer (holding unsynced kernel writes) is freed
                    # without a copy-back.  With an unknown entry count
                    # a caller may still hold a reference, so stay
                    # silent there.
                    self._emit("lost-update", Severity.ERROR, inst,
                               f"release of {_root_label(root)} drops "
                               "device writes that were never copied back",
                               unit=_root_label(root))
        elif name in ("free", "realloc"):
            for root in ordered_roots(underlying_objects(inst.args[0])):
                if not _trackable(root):
                    continue
                s = problem._get(state, root)
                if s.provably_mapped:
                    self._emit("device-free-live", Severity.ERROR, inst,
                               f"{name} of {_root_label(root)} while it is "
                               "still mapped to the device",
                               unit=_root_label(root))
                elif s.top:
                    self._emit("device-free-live", Severity.WARNING, inst,
                               f"{name} of {_root_label(root)} which may "
                               "still be mapped on some path",
                               unit=_root_label(root))

    def _check_launch(self, fn: Function, problem: MapStateProblem,
                      inst: LaunchKernel, state: MapState) -> None:
        kernel = inst.kernel
        acc = self.ctx.kernel_access(kernel)
        # Raw (unmapped) host pointers reaching dereferenced formals.
        for index in sorted(acc.formal_reads | acc.formal_writes):
            arg_pos = index - 1
            if arg_pos < 0 or arg_pos >= len(inst.args):
                continue
            _mapped, raw = launch_arg_host_roots(inst.args[arg_pos])
            for root in raw:
                if is_identified(root):
                    self._emit(
                        "launch-raw-pointer", Severity.ERROR, inst,
                        f"kernel @{kernel.name} dereferences parameter "
                        f"{index} but the launch passes the raw host "
                        f"pointer {_root_label(root)} (missing map)",
                        unit=_root_label(root))
        for root, read, write in problem._launch_unit_accesses(inst):
            s = problem._get(state, root)
            verb = "writes" if write and not read else "reads"
            if s.provably_mapped:
                pass
            elif problem._covered_by_mapped(root, state):
                pass
            elif s.top:
                self._emit(
                    "launch-unmapped-path", Severity.ERROR, inst,
                    f"kernel @{kernel.name} {verb} {_root_label(root)} "
                    "which is not mapped on all incoming paths",
                    unit=_root_label(root))
                continue
            elif s.entry_unknown:
                continue  # caller may have mapped it: cannot judge
            else:
                if s.released:
                    self._emit(
                        "use-after-release", Severity.ERROR, inst,
                        f"kernel @{kernel.name} {verb} {_root_label(root)} "
                        "after its mapping was released",
                        unit=_root_label(root))
                else:
                    self._emit(
                        "launch-unmapped", Severity.ERROR, inst,
                        f"kernel @{kernel.name} {verb} {_root_label(root)} "
                        "which is not mapped", unit=_root_label(root))
                continue
            if s.host_dirty and read:
                self._emit(
                    "stale-device-read", Severity.ERROR, inst,
                    f"kernel @{kernel.name} reads {_root_label(root)} but "
                    "the CPU stored to it after it was mapped (the device "
                    "copy is stale)", unit=_root_label(root))

    def _check_cpu_access(self, problem: MapStateProblem, inst: Instruction,
                          pointer, state: MapState, is_load: bool) -> None:
        for root in ordered_roots(underlying_objects(pointer)):
            if _is_device_root(root):
                self._emit(
                    "pointer-mix", Severity.ERROR, inst,
                    "CPU dereference of a device pointer (result of "
                    f"@{root.callee.name})",  # type: ignore[union-attr]
                    unit=_root_label(root))
                continue
            if not _trackable(root) or not is_identified(root):
                continue
            s = problem._get(state, root)
            if is_load and s.dev_written:
                self._emit(
                    "stale-host-read", Severity.ERROR, inst,
                    f"CPU read of {_root_label(root)} while device writes "
                    "have not been copied back (missing unmap)",
                    unit=_root_label(root))

    def _check_return(self, fn: Function, problem: MapStateProblem,
                      inst: Return, state: MapState) -> None:
        for root in ordered_roots(state):
            s = state[root]
            if not s.mapped_here:
                continue
            if not s.top and s.delta > 0:
                self._emit(
                    "refcount-leak", Severity.ERROR, inst,
                    f"@{fn.name} returns with {_root_label(root)} still "
                    f"mapped ({s.delta} unreleased reference"
                    f"{'s' if s.delta != 1 else ''})",
                    unit=_root_label(root))
            elif s.top:
                self._emit(
                    "refcount-leak", Severity.WARNING, inst,
                    f"@{fn.name} may return with {_root_label(root)} "
                    "mapped on some path (unbalanced map/release)",
                    unit=_root_label(root))


def _root_label(root: Root) -> str:
    if isinstance(root, GlobalVariable):
        return f"@{root.name}"
    if isinstance(root, Argument):
        fn = root.function
        where = f" of @{fn.name}" if fn is not None else ""
        return f"argument %{root.name}{where}"
    if isinstance(root, Call):
        return f"%{root.name} ({root.callee.name})"
    if isinstance(root, Alloca):
        return f"%{root.name} (alloca)"
    return str(root)


def check_map_state(module: Module, ctx: CheckContext) -> List[Finding]:
    """Entry point: run the mapping-state verifier over a module."""
    return MapStateChecker(module, ctx).run()
