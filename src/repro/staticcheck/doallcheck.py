"""DOALL race auditor: independent re-check of outlined kernels.

The parallelizer proves loops DOALL on the *host* IR before outlining
them; this pass re-derives affine access forms from each outlined
kernel's *own* IR -- the thread id is an argument now, the induction
variable a store in the kernel entry -- and re-runs the
cross-iteration conflict test (:mod:`analysis.affine`).  A disagreement
means either a parallelizer bug or a hand-written racy kernel.

Verdicts are deliberately asymmetric:

* ``doall-race`` (ERROR) only when the access pair is *fully
  analyzable* -- both affine forms derived without poison, symbolic
  bases identical, every non-thread coefficient backed by a known
  induction range -- and the conflict test still says two distinct
  thread ids may touch overlapping bytes (this includes write/write
  self-conflicts, i.e. reductions into a shared scalar).
* ``doall-unverified`` (NOTE) when the pass cannot analyze the pair.
  Notes never fail a lint run: the auditor is defense-in-depth, and an
  unanalyzable kernel is not evidence of a race.

Glue kernels (constant grid of one thread) and never-launched kernels
are skipped: a single thread cannot race with itself.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, List, Optional, Tuple

from ..analysis.affine import (AccessForm, Affine, IvRange,
                               conflicts_across_iterations)
from ..analysis.alias import may_alias_roots, underlying_objects
from ..analysis.dominators import DominatorTree
from ..analysis.loops import find_loops, recognize_counted_loop
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Call, Cast, Compare,
                               GetElementPtr, Instruction, LaunchKernel,
                               Load, Select, Store)
from ..ir.module import Module
from ..ir.types import ArrayType, StructType
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .context import CheckContext
from .findings import Finding, Severity, finding_at

PASS_NAME = "doall"


class _Tid:
    """Sentinel affine variable standing for the kernel's thread id."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<tid>"


class KernelAffine:
    """Affine evaluator over one kernel's IR.

    Mirrors :func:`analysis.affine.affine_of` but in the kernel's
    frame of reference: argument 0 is the thread id (variable
    :attr:`tid`), write-once entry slots forward to their stored
    value, inner counted-loop induction slots become affine variables
    with ranges when the loop bounds are statically known.
    """

    def __init__(self, kernel: Function, module: Module):
        self.kernel = kernel
        self.module = module
        self.tid = _Tid()
        self.inner_ranges: Dict[Alloca, Optional[IvRange]] = {}
        self._memo: Dict[Value, Affine] = {}
        self._slot_stores: Dict[Alloca, List[Store]] = {}
        self._global_stores: Dict[GlobalVariable, int] = {}
        self._domtree: Optional[DominatorTree] = None
        self._scan()

    # -- kernel structure ---------------------------------------------------

    def _scan(self) -> None:
        for inst in self.kernel.instructions():
            if isinstance(inst, Store):
                if isinstance(inst.pointer, Alloca):
                    self._slot_stores.setdefault(inst.pointer,
                                                 []).append(inst)
                elif isinstance(inst.pointer, GlobalVariable):
                    gv = inst.pointer
                    self._global_stores[gv] = \
                        self._global_stores.get(gv, 0) + 1
        for loop in find_loops(self.kernel):
            counted = recognize_counted_loop(self.kernel, loop)
            if counted is None:
                continue
            self.inner_ranges[counted.ivar] = self._loop_range(counted)

    def _loop_range(self, counted) -> Optional[IvRange]:
        start = self._constant_bound(counted.start, want_max=False)
        end = self._constant_bound(counted.end, want_max=True)
        if start is None or end is None:
            return None
        stop = end + 1 if counted.pred == "le" else end
        return IvRange(start, stop, counted.step)

    def _constant_bound(self, value: Value,
                        want_max: bool) -> Optional[int]:
        """An integer bound for a loop-invariant limit: a literal, or
        the extreme of the constants a global scalar slot can hold."""
        if isinstance(value, Constant) and isinstance(value.value, int):
            return int(value.value)
        if isinstance(value, Load) \
                and isinstance(value.pointer, GlobalVariable):
            return self._global_slot_bound(value.pointer, want_max)
        return None

    def _global_slot_bound(self, gv: GlobalVariable,
                           want_max: bool) -> Optional[int]:
        """Widen a global integer slot over its initializer and every
        constant store in the module; None if any store is opaque."""
        if not gv.value_type.is_scalar or not gv.value_type.is_integer:
            return None
        values: List[int] = []
        init = gv.initializer
        if init is None:
            values.append(0)
        elif isinstance(init, int):
            values.append(init)
        else:
            return None
        for fn in self.module.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, Store) and inst.pointer is gv:
                    if isinstance(inst.value, Constant) \
                            and isinstance(inst.value.value, int):
                        values.append(int(inst.value.value))
                    else:
                        return None
        return max(values) if want_max else min(values)

    # -- evaluation ---------------------------------------------------------

    def affine_of(self, value: Value, _depth: int = 0) -> Affine:
        if _depth > 64:
            return Affine.poison()
        memo = self._memo.get(value)
        if memo is not None:
            return memo
        self._memo[value] = Affine.poison()  # cycle guard
        result = self._eval(value, _depth)
        self._memo[value] = result
        return result

    def _eval(self, value: Value, depth: int) -> Affine:
        if isinstance(value, Constant):
            if isinstance(value.value, int):
                return Affine.constant(value.value)
            return Affine.poison()
        if isinstance(value, Argument):
            if value.function is self.kernel and value.index == 0:
                return Affine(coeffs={self.tid: 1})
            return Affine.symbol(value)
        if isinstance(value, GlobalVariable):
            return Affine.symbol(value)
        if isinstance(value, Load):
            return self._eval_load(value, depth)
        if isinstance(value, Cast):
            if value.kind in ("sext", "zext", "trunc", "bitcast",
                              "inttoptr", "ptrtoint"):
                return self.affine_of(value.value, depth + 1)
            return Affine.poison()
        if isinstance(value, BinaryOp):
            lhs = self.affine_of(value.lhs, depth + 1)
            rhs = self.affine_of(value.rhs, depth + 1)
            if value.op == "add":
                return lhs.add(rhs)
            if value.op == "sub":
                return lhs.add(rhs, sign=-1)
            if value.op == "mul":
                if rhs.is_constant_int:
                    return lhs.scale(rhs.const)
                if lhs.is_constant_int:
                    return rhs.scale(lhs.const)
                return Affine.poison()
            if value.op == "shl" and rhs.is_constant_int:
                return lhs.scale(1 << rhs.const)
            return Affine.poison()
        if isinstance(value, GetElementPtr):
            return self._eval_gep(value, depth)
        return Affine.poison()

    def _eval_load(self, load: Load, depth: int) -> Affine:
        pointer = load.pointer
        if isinstance(pointer, Alloca):
            if pointer in self.inner_ranges:
                return Affine(coeffs={pointer: 1})
            stores = self._slot_stores.get(pointer, [])
            if len(stores) == 1 and self._store_reaches(stores[0], load):
                # Write-once slot (iv seed / spilled parameter): every
                # load sees the single stored value.
                return self.affine_of(stores[0].value, depth + 1)
            return Affine.poison()
        if isinstance(pointer, GlobalVariable) \
                and pointer.value_type.is_scalar \
                and self._global_stores.get(pointer, 0) == 0:
            # Direct global slot, never stored by this kernel: all
            # loads agree; key a symbol by the slot's *content*.
            return Affine.symbol(("deref", pointer))
        return Affine.poison()

    def _store_reaches(self, store: Store, load: Load) -> bool:
        """Does the slot's single store definitely execute before the
        load?  (Same block, earlier; or its block dominates the
        load's.)"""
        if store.parent is load.parent:
            block = store.parent
            return block.index(store) < block.index(load)
        if self._domtree is None:
            self._domtree = DominatorTree(self.kernel)
        return self._domtree.dominates(store.parent, load.parent)

    def _eval_gep(self, gep: GetElementPtr, depth: int) -> Affine:
        result = self.affine_of(gep.pointer, depth + 1)
        pointee = gep.pointer.type.pointee
        indices = gep.indices
        result = result.add(
            self.affine_of(indices[0], depth + 1).scale(pointee.size))
        current = pointee
        for index in indices[1:]:
            if isinstance(current, ArrayType):
                current = current.element
                result = result.add(
                    self.affine_of(index, depth + 1).scale(current.size))
            elif isinstance(current, StructType):
                if not isinstance(index, Constant):
                    return Affine.poison()
                result = result.add(
                    Affine.constant(current.field_offset(index.value)))
                current = current.fields[index.value][1]
            else:
                return Affine.poison()
        return result


def _fold_int(value: Value, _depth: int = 0) -> Optional[int]:
    """Constant-fold an integer value (the parallelizer computes trip
    counts as ``select(cmp((end-start+bias)/step, 0), ..., 0)`` chains
    over literals)."""
    if _depth > 32:
        return None
    if isinstance(value, Constant):
        return int(value.value) if isinstance(value.value, int) else None
    if isinstance(value, Cast):
        if value.kind in ("sext", "zext", "trunc"):
            return _fold_int(value.value, _depth + 1)
        return None
    if isinstance(value, BinaryOp):
        lhs = _fold_int(value.lhs, _depth + 1)
        rhs = _fold_int(value.rhs, _depth + 1)
        if lhs is None or rhs is None:
            return None
        if value.op == "add":
            return lhs + rhs
        if value.op == "sub":
            return lhs - rhs
        if value.op == "mul":
            return lhs * rhs
        if value.op == "div" and rhs != 0:
            return int(lhs / rhs)  # C-style truncation
        if value.op == "shl":
            return lhs << rhs
        return None
    if isinstance(value, Compare):
        lhs = _fold_int(value.lhs, _depth + 1)
        rhs = _fold_int(value.rhs, _depth + 1)
        if lhs is None or rhs is None:
            return None
        table = {"lt": lhs < rhs, "le": lhs <= rhs, "gt": lhs > rhs,
                 "ge": lhs >= rhs, "eq": lhs == rhs, "ne": lhs != rhs}
        verdict = table.get(value.pred)
        return None if verdict is None else int(verdict)
    if isinstance(value, Select):
        cond = _fold_int(value.condition, _depth + 1)
        if cond is not None:
            arm = value.if_true if cond else value.if_false
            return _fold_int(arm, _depth + 1)
        return None
    return None


def _kernel_grids(module: Module,
                  kernel: Function) -> Tuple[bool, Optional[int]]:
    """(ever launched with grid possibly > 1, max known grid or None
    when some launch's grid cannot be constant-folded)."""
    launched = False
    max_grid: Optional[int] = 0
    for fn in module.defined_functions():
        for inst in fn.instructions():
            if isinstance(inst, LaunchKernel) and inst.kernel is kernel:
                grid = _fold_int(inst.grid)
                if grid is not None:
                    if grid <= 1:
                        continue  # single-thread glue launch
                    launched = True
                    if max_grid is not None:
                        max_grid = max(max_grid, grid)
                else:
                    launched = True
                    max_grid = None
    return launched, max_grid


def _shared_accesses(kernel: Function) -> List[Instruction]:
    """Loads/stores whose address may leave the kernel's private frame."""
    accesses: List[Instruction] = []
    for inst in kernel.instructions():
        if not isinstance(inst, (Load, Store)):
            continue
        shared = False
        for root in underlying_objects(inst.pointer):
            if isinstance(root, Alloca):
                block = root.parent
                owner = block.parent if block is not None else None
                if owner is kernel:
                    continue  # thread-private scratch
            if isinstance(root, Constant):
                continue
            shared = True
        if shared:
            accesses.append(inst)
    return accesses


def _analyzable(a: Affine, b: Affine, evaluator: KernelAffine) -> bool:
    if a.unknown or b.unknown:
        return False
    if a.symbols != b.symbols:
        return False
    for var in set(a.coeffs) | set(b.coeffs):
        if var is evaluator.tid:
            continue
        if evaluator.inner_ranges.get(var) is None:
            return False
    return True


def check_doall(module: Module, ctx: CheckContext) -> List[Finding]:
    findings: List[Finding] = []
    for kernel in module.kernels():
        launched, max_grid = _kernel_grids(module, kernel)
        if not launched:
            continue
        findings.extend(_audit_kernel(module, kernel, max_grid))
    return findings


def _audit_kernel(module: Module, kernel: Function,
                  max_grid: Optional[int]) -> List[Finding]:
    evaluator = KernelAffine(kernel, module)
    accesses = _shared_accesses(kernel)
    if not any(isinstance(a, Store) for a in accesses):
        return []  # read-only kernels cannot race

    inner_ranges = {var: rng for var, rng in evaluator.inner_ranges.items()
                    if rng is not None}
    outer_range = (IvRange(0, max_grid, 1)
                   if max_grid is not None and max_grid > 1 else None)
    affine_ctx = SimpleNamespace(outer_ivar=evaluator.tid,
                                 inner_ranges=inner_ranges,
                                 fixed_ranges={}, outer_range=outer_range)

    forms: Dict[Instruction, AccessForm] = {}
    roots: Dict[Instruction, frozenset] = {}
    for inst in accesses:
        if isinstance(inst, Load):
            forms[inst] = AccessForm(evaluator.affine_of(inst.pointer),
                                     inst.type.size, False)
        else:
            forms[inst] = AccessForm(evaluator.affine_of(inst.pointer),
                                     inst.value.type.size, True)
        roots[inst] = underlying_objects(inst.pointer)

    findings: List[Finding] = []
    unverified: List[Tuple[Instruction, Instruction]] = []
    for i, f_inst in enumerate(accesses):
        for g_inst in accesses[i:]:
            f, g = forms[f_inst], forms[g_inst]
            if not f.is_write and not g.is_write:
                continue
            if f_inst is g_inst and not f.is_write:
                continue
            if not may_alias_roots(roots[f_inst], roots[g_inst]):
                continue
            if not conflicts_across_iterations(f, g, affine_ctx):
                continue
            if _analyzable(f.affine, g.affine, evaluator):
                anchor = f_inst if f.is_write else g_inst
                other = g_inst if anchor is f_inst else f_inst
                if anchor is other:
                    detail = ("every thread writes the same address "
                              "(unsynchronized reduction)")
                else:
                    detail = ("conflicts with the "
                              f"{'store' if (g if anchor is f_inst else f).is_write else 'load'}"
                              f" at {other.parent.name}"
                              f"#{other.parent.index(other)}")
                findings.append(finding_at(
                    PASS_NAME, "doall-race", Severity.ERROR, anchor,
                    f"kernel @{kernel.name}: two distinct thread ids may "
                    f"touch overlapping bytes: this store {detail}"))
            else:
                unverified.append((f_inst, g_inst))
    if unverified:
        f_inst, g_inst = unverified[0]
        findings.append(finding_at(
            PASS_NAME, "doall-unverified", Severity.NOTE, f_inst,
            f"kernel @{kernel.name}: {len(unverified)} access pair"
            f"{'s' if len(unverified) != 1 else ''} could not be proven "
            "race-free (non-affine addressing or unknown loop bounds)"))
    return findings
