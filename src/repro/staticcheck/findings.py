"""Finding and report types shared by every static-checker pass."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.instructions import Instruction


class Severity(enum.Enum):
    """How bad a finding is.

    ERROR findings are violations of CGCM's correctness invariants
    (the static counterparts of the sanitizer's violation taxonomy);
    WARNING findings are suspicious-but-not-provably-wrong shapes and
    missed-optimization diagnostics; NOTE findings record what the
    checker could not verify.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "note": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One diagnostic: which pass, what kind, where."""

    pass_name: str      #: "mapstate" | "redundant" | "doall" | "verify"
    kind: str           #: stable slug, e.g. "launch-unmapped"
    severity: Severity
    function: str       #: enclosing function name ("" for module-level)
    block: str          #: block name ("" for function/module-level)
    block_position: int  #: index of the block in the function (-1 n/a)
    index: int          #: instruction index within the block (-1 n/a)
    message: str

    @property
    def location(self) -> str:
        if not self.function:
            return "<module>"
        if not self.block:
            return f"@{self.function}"
        return f"@{self.function}/{self.block}#{self.index}"

    def render(self) -> str:
        return (f"{self.severity.value}[{self.pass_name}] "
                f"{self.location}: {self.kind}: {self.message}")

    def to_json(self) -> Dict[str, object]:
        return {
            "pass": self.pass_name,
            "kind": self.kind,
            "severity": self.severity.value,
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "message": self.message,
        }

    def sort_key(self) -> Tuple:
        return (self.function, self.block_position, self.index,
                self.severity.rank, self.pass_name, self.kind,
                self.message)


def finding_at(pass_name: str, kind: str, severity: Severity,
               inst: Instruction, message: str) -> Finding:
    """A finding anchored at one instruction."""
    block = inst.parent
    fn = block.parent if block is not None else None
    if block is None or fn is None:
        return Finding(pass_name, kind, severity, "", "", -1, -1, message)
    return Finding(pass_name, kind, severity, fn.name, block.name,
                   fn.blocks.index(block), block.index(inst), message)


def finding_in_function(pass_name: str, kind: str, severity: Severity,
                        function_name: str, message: str) -> Finding:
    """A function-level finding with no single instruction anchor."""
    return Finding(pass_name, kind, severity, function_name, "", -1, -1,
                   message)


class LintReport:
    """All findings of one lint run over one module."""

    def __init__(self, module_name: str, findings: List[Finding],
                 passes_run: Optional[List[str]] = None):
        self.module_name = module_name
        self.findings = sorted(findings, key=Finding.sort_key)
        self.passes_run = list(passes_run or [])

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def clean(self) -> bool:
        """No errors (warnings and notes do not fail a lint run)."""
        return not self.errors

    def by_kind(self, kind: str) -> List[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def summary(self) -> str:
        errors = len(self.errors)
        warnings = len(self.warnings)
        notes = len(self.findings) - errors - warnings
        verdict = "clean" if self.clean else "FAIL"
        return (f"{self.module_name}: {verdict} "
                f"({errors} errors, {warnings} warnings, {notes} notes)")

    def render(self, max_notes: Optional[int] = None) -> str:
        lines = []
        notes_shown = 0
        suppressed = 0
        for finding in self.findings:
            if finding.severity is Severity.NOTE and max_notes is not None:
                notes_shown += 1
                if notes_shown > max_notes:
                    suppressed += 1
                    continue
            lines.append("  " + finding.render())
        if suppressed:
            lines.append(f"  ... and {suppressed} more notes")
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "module": self.module_name,
            "clean": self.clean,
            "passes": self.passes_run,
            "findings": [f.to_json() for f in self.findings],
        }
