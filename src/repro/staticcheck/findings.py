"""Finding and report types shared by every static-checker pass.

Every finding carries a *fingerprint*: a stable hash of the identity
coordinates (pass x rule x function x unit x block) that survives
unrelated edits shifting instruction indices.  ``lint --json`` output
is sorted deterministically and fingerprinted, so CI can diff reports
across runs and keep them as baselines; :func:`sarif_document` derives
a SARIF 2.1.0 view from the same records.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.instructions import Instruction


class Severity(enum.Enum):
    """How bad a finding is.

    ERROR findings are violations of CGCM's correctness invariants
    (the static counterparts of the sanitizer's violation taxonomy);
    WARNING findings are suspicious-but-not-provably-wrong shapes and
    missed-optimization diagnostics; NOTE findings record what the
    checker could not verify.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "note": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One diagnostic: which pass, what kind, where."""

    pass_name: str      #: "mapstate" | "hbcheck" | "transval" | ...
    kind: str           #: stable slug, e.g. "launch-unmapped"
    severity: Severity
    function: str       #: enclosing function name ("" for module-level)
    block: str          #: block name ("" for function/module-level)
    block_position: int  #: index of the block in the function (-1 n/a)
    index: int          #: instruction index within the block (-1 n/a)
    message: str
    #: The allocation unit (or pipeline stage, for translation
    #: validation) the finding is about; part of the fingerprint.
    unit: str = ""

    @property
    def location(self) -> str:
        if not self.function:
            return "<module>"
        if not self.block:
            return f"@{self.function}"
        return f"@{self.function}/{self.block}#{self.index}"

    @property
    def fingerprint(self) -> str:
        """Stable identity hash: pass x rule x function x unit x block.

        Deliberately excludes the instruction index and message text,
        so unrelated edits that shift positions (or reword diagnostics)
        keep the fingerprint -- ``lint --json`` diffs stay usable as CI
        baselines.  Uses sha1 (not Python's randomized ``hash``) so the
        value is identical across processes and platforms.
        """
        identity = "\x1f".join((self.pass_name, self.kind, self.function,
                                self.unit, self.block))
        return hashlib.sha1(identity.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return (f"{self.severity.value}[{self.pass_name}] "
                f"{self.location}: {self.kind}: {self.message}")

    def to_json(self) -> Dict[str, object]:
        return {
            "pass": self.pass_name,
            "kind": self.kind,
            "severity": self.severity.value,
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "unit": self.unit,
            "fingerprint": self.fingerprint,
            "message": self.message,
        }

    def sort_key(self) -> Tuple:
        return (self.function, self.block_position, self.index,
                self.severity.rank, self.pass_name, self.kind,
                self.unit, self.message)


def finding_at(pass_name: str, kind: str, severity: Severity,
               inst: Instruction, message: str,
               unit: str = "") -> Finding:
    """A finding anchored at one instruction."""
    block = inst.parent
    fn = block.parent if block is not None else None
    if block is None or fn is None:
        return Finding(pass_name, kind, severity, "", "", -1, -1, message,
                       unit)
    return Finding(pass_name, kind, severity, fn.name, block.name,
                   fn.blocks.index(block), block.index(inst), message, unit)


def finding_in_function(pass_name: str, kind: str, severity: Severity,
                        function_name: str, message: str,
                        unit: str = "") -> Finding:
    """A function-level finding with no single instruction anchor."""
    return Finding(pass_name, kind, severity, function_name, "", -1, -1,
                   message, unit)


class LintReport:
    """All findings of one lint run over one module."""

    def __init__(self, module_name: str, findings: List[Finding],
                 passes_run: Optional[List[str]] = None):
        self.module_name = module_name
        self.findings = sorted(findings, key=Finding.sort_key)
        self.passes_run = list(passes_run or [])

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def clean(self) -> bool:
        """No errors (warnings and notes do not fail a lint run)."""
        return not self.errors

    def by_kind(self, kind: str) -> List[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def summary(self) -> str:
        errors = len(self.errors)
        warnings = len(self.warnings)
        notes = len(self.findings) - errors - warnings
        verdict = "clean" if self.clean else "FAIL"
        return (f"{self.module_name}: {verdict} "
                f"({errors} errors, {warnings} warnings, {notes} notes)")

    def render(self, max_notes: Optional[int] = None) -> str:
        lines = []
        notes_shown = 0
        suppressed = 0
        for finding in self.findings:
            if finding.severity is Severity.NOTE and max_notes is not None:
                notes_shown += 1
                if notes_shown > max_notes:
                    suppressed += 1
                    continue
            lines.append("  " + finding.render())
        if suppressed:
            lines.append(f"  ... and {suppressed} more notes")
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "module": self.module_name,
            "clean": self.clean,
            "passes": self.passes_run,
            "findings": [f.to_json() for f in self.findings],
        }

    def to_sarif_run(self) -> Dict[str, object]:
        """This report as one SARIF 2.1.0 ``run`` object."""
        rules: List[Dict[str, object]] = []
        rule_ids: List[str] = []
        for finding in self.findings:
            rule = f"{finding.pass_name}/{finding.kind}"
            if rule not in rule_ids:
                rule_ids.append(rule)
                rules.append({"id": rule,
                              "name": finding.kind,
                              "properties": {"pass": finding.pass_name}})
        results = []
        for finding in self.findings:
            qualified = self.module_name
            if finding.function:
                qualified += f"::{finding.function}"
            if finding.block:
                qualified += f"::{finding.block}#{finding.index}"
            results.append({
                "ruleId": f"{finding.pass_name}/{finding.kind}",
                "ruleIndex": rule_ids.index(
                    f"{finding.pass_name}/{finding.kind}"),
                "level": finding.severity.value,
                "message": {"text": finding.message},
                "partialFingerprints": {
                    "repro/finding/v1": finding.fingerprint},
                "locations": [{"logicalLocations": [{
                    "fullyQualifiedName": qualified,
                    "kind": "function" if finding.function else "module",
                }]}],
                "properties": {"unit": finding.unit,
                               "module": self.module_name},
            })
        return {
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://dl.acm.org/doi/10.1145/1993498.1993516",
                "rules": rules,
            }},
            "results": results,
            "properties": {"module": self.module_name,
                           "passes": self.passes_run,
                           "clean": self.clean},
        }


def sarif_document(reports: List["LintReport"]) -> Dict[str, object]:
    """A SARIF 2.1.0 log: one run per linted module.

    Derived from the same :class:`Finding` records as the human and
    ``--json`` formats; the per-finding fingerprint rides along as a
    SARIF partial fingerprint so result matching across runs works the
    same way in both formats.
    """
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [report.to_sarif_run() for report in reports],
    }
