"""Shared per-module facts for the static-checker passes.

One :class:`CheckContext` is built per linted module and threaded
through every pass: the call graph, a mod/ref oracle, the device-side
access summary of each kernel, the pointer-array coverage relation
(which allocation units a ``mapArray``'d unit can hold), and helpers
for resolving launch arguments back to the *host* allocation units
they carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.alias import (UNKNOWN, Root, is_identified, ordered_roots,
                              underlying_objects)
from ..analysis.callgraph import CallGraph
from ..analysis.modref import ModRefAnalysis
from ..ir.function import Function
from ..ir.instructions import (Alloca, Call, Instruction, LaunchKernel, Load,
                               Store)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable
from ..runtime.api import ARRAY_FUNCTIONS, MAP_FUNCTIONS

#: Declared externals that read/write memory through pointer args when
#: called from device code (mirrors modref's memory externals).
_DEVICE_MEMORY_EXTERNALS = frozenset({"memcpy", "memset", "print_str"})


@dataclass
class KernelAccess:
    """Which allocation units a kernel touches, seen from its own IR.

    ``reads``/``writes`` hold module-visible roots (globals and heap
    allocations reached through global pointer slots); ``formal_reads``
    / ``formal_writes`` hold the kernel's own argument indices that are
    dereferenced (resolved to host units per launch site).  ``unknown``
    records that some access could not be traced.
    """

    reads: List[Root] = field(default_factory=list)
    writes: List[Root] = field(default_factory=list)
    formal_reads: Set[int] = field(default_factory=set)
    formal_writes: Set[int] = field(default_factory=set)
    unknown: bool = False

    def accessed_roots(self) -> List[Root]:
        seen = []
        for root in self.reads + self.writes:
            if root not in seen:
                seen.append(root)
        return seen


def launch_arg_host_roots(value) -> Tuple[List[Root], List[Root]]:
    """Split a launch argument into host units it carries.

    Returns ``(mapped, raw)``: roots reached through a ``map`` /
    ``mapArray`` result (the unit the run-time translated) versus
    identified host roots passed directly -- the latter means a raw
    host pointer reached the GPU, a dropped-map defect when the kernel
    dereferences that parameter.
    """
    mapped: List[Root] = []
    raw: List[Root] = []
    for root in ordered_roots(underlying_objects(value)):
        if isinstance(root, Call) and root.callee.name in MAP_FUNCTIONS:
            for host in ordered_roots(underlying_objects(root.args[0])):
                if host is not UNKNOWN and not isinstance(host, Constant):
                    mapped.append(host)
        elif root is UNKNOWN or isinstance(root, Constant):
            continue
        elif isinstance(root, Argument):
            continue  # caller's own parameter: cannot judge locally
        else:
            raw.append(root)
    return mapped, raw


class CheckContext:
    """Lazily-computed module-wide facts shared by the passes."""

    def __init__(self, module: Module):
        self.module = module
        self.callgraph = CallGraph(module)
        self.modref = ModRefAnalysis()
        self._kernel_access: Dict[Function, KernelAccess] = {}
        self._coverage: Optional[Dict[Root, FrozenSet[Root]]] = None
        #: Filled by the mapstate pass: per-function summaries.
        self.summaries: Dict[Function, object] = {}
        #: Filled by the hbcheck pass: per-function async summaries.
        self.hb_summaries: Dict[Function, object] = {}

    # -- kernel access summaries -------------------------------------------

    def kernel_access(self, kernel: Function) -> KernelAccess:
        cached = self._kernel_access.get(kernel)
        if cached is None:
            cached = self._device_access(kernel, set())
            self._kernel_access[kernel] = cached
        return cached

    def _device_access(self, fn: Function,
                       stack: Set[Function]) -> KernelAccess:
        """Walk ``fn`` (and defined helpers it calls) on the device."""
        cached = self._kernel_access.get(fn)
        if cached is not None:
            return cached
        acc = KernelAccess()
        if fn in stack or fn.is_declaration:
            acc.unknown = True
            return acc
        stack = stack | {fn}
        for inst in fn.instructions():
            if isinstance(inst, Load):
                self._classify(fn, inst.pointer, acc, write=False)
            elif isinstance(inst, Store):
                self._classify(fn, inst.pointer, acc, write=True)
            elif isinstance(inst, LaunchKernel):
                acc.unknown = True  # nested launch: out of model
            elif isinstance(inst, Call):
                self._device_call(fn, inst, acc, stack)
        self._kernel_access[fn] = acc
        return acc

    def _device_call(self, fn: Function, call: Call, acc: KernelAccess,
                     stack: Set[Function]) -> None:
        callee = call.callee
        if callee.is_declaration:
            if callee.name in _DEVICE_MEMORY_EXTERNALS:
                for arg in call.args:
                    if arg.type.is_pointer:
                        self._classify(fn, arg, acc, write=True)
                        self._classify(fn, arg, acc, write=False)
            return  # pure math / allocation: no unit access
        sub = self._device_access(callee, stack)
        acc.unknown = acc.unknown or sub.unknown
        for root in sub.reads:
            if root not in acc.reads:
                acc.reads.append(root)
        for root in sub.writes:
            if root not in acc.writes:
                acc.writes.append(root)
        for index in sorted(sub.formal_reads | sub.formal_writes):
            if index >= len(call.args):
                acc.unknown = True
                continue
            write = index in sub.formal_writes
            read = index in sub.formal_reads
            if write:
                self._classify(fn, call.args[index], acc, write=True)
            if read:
                self._classify(fn, call.args[index], acc, write=False)

    def _classify(self, fn: Function, pointer, acc: KernelAccess,
                  write: bool) -> None:
        for root in ordered_roots(underlying_objects(pointer)):
            if root is UNKNOWN:
                acc.unknown = True
            elif isinstance(root, Argument):
                if root.function is fn and root.type.is_pointer:
                    (acc.formal_writes if write
                     else acc.formal_reads).add(root.index)
                elif root.function is not fn:
                    acc.unknown = True
            elif isinstance(root, Alloca):
                block = root.parent
                owner = block.parent if block is not None else None
                if owner is not fn:
                    target = acc.writes if write else acc.reads
                    if root not in target:
                        target.append(root)
                # else: device-private scratch, no host unit involved
            elif isinstance(root, (GlobalVariable, Call)):
                target = acc.writes if write else acc.reads
                if root not in target:
                    target.append(root)
            # Constants (null literals) carry no unit.

    # -- pointer-array coverage --------------------------------------------

    @property
    def coverage(self) -> Dict[Root, FrozenSet[Root]]:
        """For each unit ever passed to the ``*Array`` entry points,
        the units its elements may point to (UNKNOWN when a stored
        element could not be traced)."""
        if self._coverage is None:
            self._coverage = self._compute_coverage()
        return self._coverage

    def _compute_coverage(self) -> Dict[Root, FrozenSet[Root]]:
        array_roots: List[Root] = []
        for fn in self.module.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, Call) and inst.callee.name in ARRAY_FUNCTIONS:
                    for root in ordered_roots(
                            underlying_objects(inst.args[0])):
                        if is_identified(root) \
                                and not isinstance(root, Constant) \
                                and root not in array_roots:
                            array_roots.append(root)
        covered: Dict[Root, Set[Root]] = {u: set() for u in array_roots}
        if not array_roots:
            return {}
        for fn in self.module.defined_functions():
            for inst in fn.instructions():
                if not isinstance(inst, Store):
                    continue
                if not inst.value.type.is_pointer \
                        and inst.value.type.size != 8:
                    continue
                pointer_roots = underlying_objects(inst.pointer)
                hit = [u for u in array_roots if u in pointer_roots]
                if not hit:
                    continue
                value_roots = underlying_objects(inst.value)
                for unit in hit:
                    for root in value_roots:
                        if root is UNKNOWN:
                            covered[unit].add(UNKNOWN)
                        elif not isinstance(root, Constant):
                            covered[unit].add(root)
        return {u: frozenset(roots) for u, roots in covered.items()}

    def covering_arrays(self, root: Root) -> List[Root]:
        """Array units whose elements may include ``root``."""
        return [u for u, contents in self.coverage.items()
                if root in contents or UNKNOWN in contents]
