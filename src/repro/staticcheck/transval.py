"""Translation validation of the CGCM pass pipeline.

Every optimize-stage transform declares a :class:`PassContract`
(``transforms/contract``); this module checks one contract against a
before/after module pair after the pass has run.  The *before* side is
an independent replica obtained by printing and re-parsing the module
(the IR round-trip is golden-tested), so the checks can re-run whole
analyses on it without aliasing the live pipeline state.

Obligations checked for every stage:

* the structural IR verifier still passes (``verify-broken``);
* the module-wide multiset of non-runtime external calls -- the
  observable effects: ``print_*``, allocation, ``memcpy`` -- is
  unchanged (``external-calls-changed``);
* the kernel-launch multiset is unchanged, or for passes contracted
  as ``launches="grow"`` (glue kernels) only ever extended
  (``launches-changed``);
* no module global disappears (``globals-dropped``).

Contract-selected obligations:

* ``runtime_calls="twin-normalized"`` (comm overlap): per function,
  the multiset of managed runtime calls is unchanged once async names
  are normalized to their sync twins and ``cgcmSync`` barriers are
  dropped -- the pass may move, rename, and fence, but never add or
  drop a map/unmap/release (``runtime-calls-changed``);
* ``check_mapstate_regression``: the mapping-state verifier must not
  report any (kind x function) error key on the after module that the
  before module did not already have -- the static form of "a map's
  live range must not grow across a mutating store, and no launch
  loses its mapping" (``mapstate-regression``);
* ``check_hb`` (comm overlap): the happens-before auditor must report
  zero errors on the after module -- every asynchronous operation the
  pass introduced owes a static ordering proof (``hb-regression``).

Findings carry ``pass_name="transval"`` and the stage name in their
``unit`` field, so fingerprints distinguish the same rule firing after
different passes.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Set, Tuple

from ..ir.instructions import Call, LaunchKernel
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import module_to_str
from ..ir.verifier import verify_module
from ..errors import IRError
from ..runtime.api import ENTRY_POINTS, SYNC_FUNCTION, SYNC_TWINS
from ..transforms.contract import PassContract
from .context import CheckContext
from .findings import Finding, Severity
from .hbcheck import check_happens_before
from .mapstate import check_map_state

PASS_NAME = "transval"


def _finding(kind: str, stage: str, message: str,
             function: str = "") -> Finding:
    return Finding(PASS_NAME, kind, Severity.ERROR, function, "", -1, -1,
                   message, unit=stage)


def _external_calls(module: Module) -> Counter:
    """Module-wide multiset of non-runtime external calls."""
    counts: Counter = Counter()
    for fn in module.defined_functions():
        for inst in fn.instructions():
            if isinstance(inst, Call) and inst.callee.is_declaration \
                    and inst.callee.name not in ENTRY_POINTS:
                counts[inst.callee.name] += 1
    return counts


def _launches(module: Module) -> Counter:
    counts: Counter = Counter()
    for fn in module.defined_functions():
        for inst in fn.instructions():
            if isinstance(inst, LaunchKernel):
                counts[inst.kernel.name] += 1
    return counts


def _runtime_calls_normalized(module: Module) -> Dict[str, Counter]:
    """Per-function managed-call multisets, async names normalized to
    their sync twins, ``cgcmSync`` barriers dropped."""
    per_fn: Dict[str, Counter] = {}
    for fn in module.defined_functions():
        counts: Counter = Counter()
        for inst in fn.instructions():
            if not isinstance(inst, Call):
                continue
            name = inst.callee.name
            if name not in ENTRY_POINTS or name == SYNC_FUNCTION:
                continue
            counts[SYNC_TWINS.get(name, name)] += 1
        if counts:
            per_fn[fn.name] = counts
    return per_fn


def _mapstate_error_keys(module: Module) -> Set[Tuple[str, str]]:
    ctx = CheckContext(module)
    return {(f.kind, f.function)
            for f in check_map_state(module, ctx)
            if f.severity is Severity.ERROR}


def _diff_counter(kind: str, stage: str, label: str, before: Counter,
                  after: Counter, grow_ok: bool,
                  findings: List[Finding]) -> None:
    for name in sorted(set(before) | set(after)):
        delta = after[name] - before[name]
        if delta == 0 or (grow_ok and delta > 0):
            continue
        verb = "gained" if delta > 0 else "lost"
        findings.append(_finding(
            kind, stage,
            f"{stage} {verb} {abs(delta)} {label} of {name!r} "
            f"({before[name]} before, {after[name]} after)"))


def validate_stage(contract: PassContract, before: Module,
                   after: Module) -> List[Finding]:
    """Check one pass contract against a before/after module pair."""
    stage = contract.stage
    findings: List[Finding] = []
    try:
        verify_module(after)
    except IRError as exc:
        findings.append(_finding(
            "verify-broken", stage,
            f"{stage} broke a structural IR invariant: {exc}"))
        return findings  # further analyses assume verified IR

    _diff_counter("external-calls-changed", stage, "external call",
                  _external_calls(before), _external_calls(after),
                  grow_ok=False, findings=findings)
    _diff_counter("launches-changed", stage, "kernel launch",
                  _launches(before), _launches(after),
                  grow_ok=(contract.launches == "grow"),
                  findings=findings)
    dropped = sorted(set(before.globals) - set(after.globals))
    for name in dropped:
        findings.append(_finding(
            "globals-dropped", stage,
            f"{stage} dropped module global @{name}"))

    if contract.runtime_calls == "twin-normalized":
        before_rt = _runtime_calls_normalized(before)
        after_rt = _runtime_calls_normalized(after)
        for fn_name in sorted(set(before_rt) | set(after_rt)):
            b = before_rt.get(fn_name, Counter())
            a = after_rt.get(fn_name, Counter())
            if b == a:
                continue
            for name in sorted(set(b) | set(a)):
                delta = a[name] - b[name]
                if delta == 0:
                    continue
                verb = "gained" if delta > 0 else "lost"
                findings.append(_finding(
                    "runtime-calls-changed", stage,
                    f"{stage} {verb} {abs(delta)} managed call(s) of "
                    f"@{name} (twin-normalized) in @{fn_name}",
                    function=fn_name))

    if contract.check_mapstate_regression:
        before_keys = _mapstate_error_keys(before)
        for kind, fn_name in sorted(_mapstate_error_keys(after)):
            if (kind, fn_name) in before_keys:
                continue
            findings.append(_finding(
                "mapstate-regression", stage,
                f"{stage} introduced a mapping-state error "
                f"({kind}) in @{fn_name} that the input module "
                "did not have", function=fn_name))

    if contract.check_hb:
        ctx = CheckContext(after)
        for f in check_happens_before(after, ctx):
            if f.severity is not Severity.ERROR:
                continue
            findings.append(_finding(
                "hb-regression", stage,
                f"{stage} left an unordered asynchronous operation: "
                f"{f.kind} in @{f.function}: {f.message}",
                function=f.function))
    return findings


class TranslationValidator:
    """Stateful harness the pipeline drives: snapshot, run pass, check.

    ``begin`` snapshots the module as printed IR; each ``check``
    re-parses that snapshot into an independent before-module, runs
    the contract obligations against the pass's output, and advances
    the snapshot so the next pass is validated against *its* input.
    """

    def __init__(self) -> None:
        self._before_text: str = ""
        self.findings: List[Finding] = []

    def begin(self, module: Module) -> None:
        self._before_text = module_to_str(module)

    def check(self, contract: PassContract,
              module: Module) -> List[Finding]:
        before = parse_module(self._before_text)
        findings = validate_stage(contract, before, module)
        self.findings.extend(findings)
        self._before_text = module_to_str(module)
        return findings

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings
                if f.severity is Severity.ERROR]
