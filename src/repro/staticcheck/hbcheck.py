"""Happens-before auditor for the asynchronous streams IR.

Post-pipeline streams IR orders its asynchronous copies three ways:
per-stream FIFO, the event edges the run-time records (write-backs
wait on the latest compute event, uploads wait on a pending write-back
of their own unit, launches wait on both copy cursors), and the
explicit ``cgcmSync`` host barrier.  The run-time *also* carries a
dynamic load/store guard that synchronizes before the CPU touches a
unit with a pending write-back -- a safety net, not a proof.  This
pass demands the proof: every CPU access of a unit with an in-flight
asynchronous operation must be *statically* ordered after it, i.e. a
``cgcmSync`` (or a fencing kernel launch, for uploads) must dominate
the access on every path.  Accesses that only the guard would save are
findings.

Rules (pass name ``hbcheck``):

``hb-use-before-sync``
    CPU read of a unit whose asynchronous write-back is pending and
    not ordered before the read by any barrier.
``hb-ww-conflict``
    CPU write to such a unit: a host-write/DtoH-write pair on the same
    bytes with no ordering between the streams.
``hb-map-unmap-race``
    Asynchronous unmap whose DtoH races a pending asynchronous upload
    of the same unit -- no kernel launch orders the download stream
    after the upload stream.
``hb-sync-unrecorded``
    ``cgcmSync`` on a path where no write-back was ever issued: a wait
    on an event that was never recorded (warning).
``hb-dead-sync``
    ``cgcmSync`` with no write-back pending on any path: dead
    synchronization (warning).

Precision contract (PR 3): ERROR only when the unit-aliasing facts are
fully analyzable -- the access names the unit's root directly, the
pending operation resolved to a single identified root, and it did not
cross a call boundary.  Everything weaker is a NOTE.  The dataflow
uses the same :class:`ModRefAnalysis` touch oracle the comm-overlap
transform uses to place its syncs, so transform and auditor cannot
disagree about what counts as a touch.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis import dataflow
from ..analysis.alias import (Root, may_alias_roots, ordered_roots,
                              underlying_objects)
from ..analysis.happens_before import (HappensBeforeProblem, HBState,
                                       HBSummary, async_op_kind)
from ..ir.function import Function
from ..ir.instructions import Alloca, Call, Instruction, Load, Store
from ..ir.module import Module
from ..ir.values import Argument
from ..runtime.api import ENTRY_POINTS
from .context import CheckContext
from .findings import Finding, Severity, finding_at
from .mapstate import _root_label

PASS_NAME = "hbcheck"


class HBChecker:
    """Runs the pending-token dataflow per function and reports."""

    def __init__(self, module: Module, ctx: CheckContext):
        self.module = module
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._results: Dict[Function, dataflow.DataflowResult] = {}
        self._problems: Dict[Function, HappensBeforeProblem] = {}

    # -- driver ------------------------------------------------------------

    def run(self) -> List[Finding]:
        for fn in self.ctx.callgraph.bottom_up():
            if fn.is_kernel or fn.is_declaration:
                continue
            problem = HappensBeforeProblem(
                fn, self.ctx.modref, self.ctx.coverage,
                self.ctx.hb_summaries)
            result = dataflow.solve(fn, problem)
            self._problems[fn] = problem
            self._results[fn] = result
            if not self.ctx.callgraph.is_recursive(fn):
                self.ctx.hb_summaries[fn] = self._summarize(
                    fn, problem, result)
        for fn in self.module.defined_functions():
            if fn.is_kernel:
                continue
            self._report_function(fn)
        return self.findings

    def _summarize(self, fn: Function, problem: HappensBeforeProblem,
                   result: dataflow.DataflowResult) -> HBSummary:
        exits = [b for b in result.blocks if not b.successors]
        if exits:
            exit_state = problem.join(
                [result.output_state(b) for b in exits])
        else:
            exit_state = HBState()
        pending: List[Root] = []
        for root in ordered_roots(exit_state.units):
            if not exit_state.units[root].any_wb:
                continue
            if isinstance(root, Alloca) or (
                    isinstance(root, Call)
                    and root.callee.name == "declareAlloca"):
                block = root.parent
                if block is not None and block.parent is fn:
                    continue  # this function's stack: dies with the frame
            if isinstance(root, Argument) and root.function is not fn:
                continue
            pending.append(root)
        return HBSummary(
            pending_exit=tuple(pending),
            must_fence=exit_state.fenced,
            recorded=exit_state.recorded,
            any_launch=self._may_launch(fn),
            tainted=exit_state.tainted,
        )

    def _may_launch(self, fn: Function) -> bool:
        from ..ir.instructions import LaunchKernel
        for inst in fn.instructions():
            if isinstance(inst, LaunchKernel):
                return True
            if isinstance(inst, Call) and not inst.callee.is_declaration:
                sub = self.ctx.hb_summaries.get(inst.callee)
                if not isinstance(sub, HBSummary) or sub.any_launch:
                    return True
        return False

    # -- reporting ---------------------------------------------------------

    def _emit(self, kind: str, severity: Severity, inst: Instruction,
              message: str, unit: str = "") -> None:
        self.findings.append(
            finding_at(PASS_NAME, kind, severity, inst, message, unit))

    def _report_function(self, fn: Function) -> None:
        result = self._results.get(fn)
        problem = self._problems.get(fn)
        if result is None or problem is None:
            return
        for block in fn.blocks:
            if block not in result._block_in:
                continue
            for inst, before in result.instruction_states(block):
                self._check_instruction(problem, inst, before)

    def _check_instruction(self, problem: HappensBeforeProblem,
                           inst: Instruction, state: HBState) -> None:
        if isinstance(inst, Call):
            name = inst.callee.name
            op = async_op_kind(name)
            if op == "d2h":
                self._check_copy_race(problem, inst, state)
            elif op == "sync":
                self._check_sync(inst, state)
            elif name in ENTRY_POINTS:
                return  # sync entry points / async map: no hazard here
            elif inst.callee.is_declaration:
                self._check_touch(problem, inst, state, direct_args=[
                    arg for arg in inst.args if arg.type.is_pointer])
            else:
                self._check_touch(problem, inst, state, direct_args=None)
        elif isinstance(inst, (Load, Store)):
            self._check_touch(problem, inst, state,
                              direct_args=[inst.pointer])

    def _check_touch(self, problem: HappensBeforeProblem,
                     inst: Instruction, state: HBState,
                     direct_args) -> None:
        """A host access while write-backs are pending.  ``direct_args``
        are the pointer operands the access goes through (None for a
        defined call, which is never a direct touch)."""
        direct_roots = set()
        for value in direct_args or ():
            direct_roots |= set(underlying_objects(value))
        for root in ordered_roots(state.units):
            s = state.units[root]
            if not s.any_wb:
                continue
            mod, ref = problem.modref.instruction_mod_ref(inst, root)
            if not (mod or ref):
                continue
            direct = root in direct_roots
            analyzable = (direct and s.wb_pending
                          and not s.wb_weak and not s.wb_foreign)
            label = _root_label(root)
            if mod:
                kind = "hb-ww-conflict"
                message = (f"CPU write to {label} while its asynchronous "
                           "write-back is in flight (write/write race "
                           "with the DtoH copy; no cgcmSync orders them)")
            else:
                kind = "hb-use-before-sync"
                message = (f"CPU read of {label} while its asynchronous "
                           "write-back is in flight (not ordered after "
                           "the DtoH copy by any cgcmSync)")
            if not analyzable:
                if s.wb_foreign:
                    reason = ("the pending write-back crosses a call "
                              "boundary; only the run-time guard orders it")
                elif s.wb_weak:
                    reason = ("the write-back's unit did not resolve to "
                              "a single identified root")
                elif direct_args is None:
                    reason = "the unit is touched through a call"
                else:
                    reason = "the access aliases the unit only indirectly"
                message += f" -- {reason}"
            self._emit(kind,
                       Severity.ERROR if analyzable else Severity.NOTE,
                       inst, message, unit=label)

    def _check_copy_race(self, problem: HappensBeforeProblem, inst: Call,
                         state: HBState) -> None:
        """Async unmap issued while an async upload of the same unit is
        pending: nothing orders the DtoH after the HtoD (the write-back
        only waits on the *compute* event, and no launch fenced the
        upload), so the download may ship bytes the upload is still
        writing."""
        _, strong = problem.unit_roots(inst.args[0])
        call_roots = frozenset(underlying_objects(inst.args[0]))
        for root in ordered_roots(state.units):
            s = state.units[root]
            if not s.h2d_pending:
                continue
            direct = root in call_roots
            if not direct and not may_alias_roots(
                    frozenset({root}), call_roots):
                continue
            analyzable = (direct and strong
                          and s.h2d_must and not s.h2d_weak)
            label = _root_label(root)
            message = (f"asynchronous unmap of {label} races its "
                       "in-flight asynchronous map: no kernel launch "
                       "orders the download stream after the upload")
            if not analyzable:
                if not s.h2d_must:
                    reason = ("the upload is pending only on some "
                              "paths to here")
                elif s.h2d_weak or not strong:
                    reason = "upload unit resolution is weak"
                else:
                    reason = "the copies alias only indirectly"
                message += f" -- {reason}"
            self._emit("hb-map-unmap-race",
                       Severity.ERROR if analyzable else Severity.NOTE,
                       inst, message, unit=label)

    def _check_sync(self, inst: Call, state: HBState) -> None:
        if any(s.any_wb for s in state.units.values()):
            return  # live barrier: it orders a pending write-back
        if state.tainted:
            return  # an unanalyzable call may have issued work
        if not state.recorded:
            self._emit(
                "hb-sync-unrecorded", Severity.WARNING, inst,
                "cgcmSync waits for write-backs but none was ever issued "
                "on any path to here (wait on a never-recorded event)")
        else:
            self._emit(
                "hb-dead-sync", Severity.WARNING, inst,
                "cgcmSync with no write-back pending on any path to here "
                "(dead synchronization: every earlier write-back is "
                "already ordered)")


def check_happens_before(module: Module,
                         ctx: CheckContext) -> List[Finding]:
    """Entry point: run the happens-before auditor over a module."""
    return HBChecker(module, ctx).run()
