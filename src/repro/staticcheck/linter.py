"""Lint driver: run the static-checker passes over a module.

``lint_module`` is the core entry point (used by the test-suite and
the CLI); ``lint_source``/``lint_workload`` compile MiniC through the
CGCM pipeline first, so the checks run on exactly the IR the simulated
machine would execute.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..core.compiler import CgcmCompiler
from ..core.config import CgcmConfig, OptLevel
from ..errors import IRError, TransformValidationError
from ..ir.module import Module
from ..ir.verifier import verify_module
from .context import CheckContext
from .doallcheck import check_doall
from .findings import Finding, LintReport, Severity
from .hbcheck import check_happens_before
from .mapstate import check_map_state
from .placementcheck import check_placement
from .redundant import check_redundant_transfers

#: Pass execution order.  ``mapstate`` runs first: it fills the
#: context's per-function summaries which later passes may consult.
#: ``placement`` is inert (zero findings) without a multi-device
#: topology, so single-device lints are unchanged.
ALL_PASSES = ("mapstate", "redundant", "doall", "hbcheck", "placement")


def lint_module(module: Module,
                passes: Optional[Iterable[str]] = None,
                topology: Optional[object] = None) -> LintReport:
    """Run the structural verifier plus the selected passes.

    ``topology`` (a :class:`~repro.gpu.topology.Topology`) arms the
    ``placement`` pass; without one the pass runs but emits nothing.
    """
    selected = list(passes) if passes is not None else list(ALL_PASSES)
    unknown = [p for p in selected if p not in ALL_PASSES]
    if unknown:
        raise ValueError(f"unknown lint passes: {unknown}")
    findings: List[Finding] = []
    try:
        verify_module(module)
    except IRError as exc:
        # Broken IR: the dataflow passes assume verified invariants,
        # so report the structural break and stop.
        findings.append(Finding("verify", "ir-verify", Severity.ERROR,
                                "", "", -1, -1, str(exc)))
        return LintReport(module.name, findings, ["verify"])
    ctx = CheckContext(module)
    ran = ["verify"]
    if "mapstate" in selected:
        findings.extend(check_map_state(module, ctx))
        ran.append("mapstate")
    if "redundant" in selected:
        findings.extend(check_redundant_transfers(module, ctx))
        ran.append("redundant")
    if "doall" in selected:
        findings.extend(check_doall(module, ctx))
        ran.append("doall")
    if "hbcheck" in selected:
        findings.extend(check_happens_before(module, ctx))
        ran.append("hbcheck")
    if "placement" in selected:
        findings.extend(check_placement(module, ctx, topology))
        ran.append("placement")
    return LintReport(module.name, findings, ran)


def lint_source(source: str, name: str = "program",
                opt_level: OptLevel = OptLevel.OPTIMIZED,
                passes: Optional[Iterable[str]] = None,
                streams: bool = False, faults=None,
                validate: bool = False,
                topology: Optional[object] = None) -> LintReport:
    """Compile MiniC through the pipeline at ``opt_level`` and lint
    the resulting module.  With ``streams``, the comm-overlap pass
    runs too, so the checks see the hoisted/sunk asynchronous calls.
    ``faults`` (a :class:`~repro.gpu.faults.FaultPlan`) compiles under
    a resilient configuration -- the resilience machinery is purely a
    runtime concern, so the linted IR must be identical either way.
    ``validate`` arms translation validation during the compile; any
    per-pass contract findings are merged into the report (the lint
    still runs on the final module even when validation failed)."""
    compiler = CgcmCompiler(CgcmConfig(opt_level=opt_level,
                                       streams=streams, faults=faults,
                                       validate=validate))
    try:
        report = compiler.compile_source(source, name)
    except TransformValidationError as exc:
        report = exc.report
    lint = lint_module(report.module, passes, topology=topology)
    if report.validation:
        lint = LintReport(lint.module_name,
                          lint.findings + list(report.validation),
                          lint.passes_run + ["transval"])
    elif validate:
        lint = LintReport(lint.module_name, lint.findings,
                          lint.passes_run + ["transval"])
    lint.module_name = name
    return lint


def lint_workload(workload, opt_level: OptLevel = OptLevel.OPTIMIZED,
                  passes: Optional[Iterable[str]] = None,
                  streams: bool = False, faults=None,
                  validate: bool = False) -> LintReport:
    """Lint one of the paper workloads post-pipeline."""
    return lint_source(workload.source, workload.name, opt_level, passes,
                       streams, faults, validate)
