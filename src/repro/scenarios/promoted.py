"""Promoted fuzzer survivors: permanent scenario corpus.

Five generated programs promoted from the seed-0 fuzz campaign into
the committed corpus, each chosen for feature density (glue kernels,
pointer arrays, aliasing interior pointers, recursion, prefix sums,
brace-initialized globals).  Sources and expected observables are
*frozen literals*: regenerating them from the generator is exactly
what this corpus must not do, because the goldens must keep failing if
the generator, the frontend, or the pipeline drifts semantically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["PromotedScenario", "PROMOTED"]


@dataclass(frozen=True)
class PromotedScenario:
    """One frozen survivor: source plus expected-stdout golden."""

    name: str
    origin: str          #: generator coordinates it was promoted from
    description: str
    source: str
    expected_stdout: Tuple[str, ...]


PROMOTED: Tuple[PromotedScenario, ...] = (
    PromotedScenario(
        name='promoted-fuzz-0-0',
        origin='seed 0, index 0',
        description='glue kernels + scalar glue inside a repeat loop, prefix sums',
        expected_stdout=('111.099', '20.9619', '17.5', '308.625'),
        source=r'''
/* generated scenario fuzz-0-0 */
double A0[23] = {1.5, 2.0, 0.75, 1.5, 1.0, 0.5, 0.75, 0.75, 1.25, 0.5, 0.25, 1.5, 2.0, 0.5, 0.375,};
double A1[11];
double A2[6];
double A3[7] = {1.0, 0.375, 0.125, 0.5, 1.0, 0.125,};
double S0;

int main(void) {
    S0 = 0.75;
    for (int i = 0; i < 11; i++)
        A1[i] = (i * 3 + 9) % 1 * 0.25;
    for (int i = 0; i < 6; i++)
        A2[i] = (i * 3 + 2) % 4 * 1.25;
    for (int i = 0; i < 7; i++)
        A3[i] = (i * 1 + 5) % 3 * 1.5;
    for (int i = 0; i < 6; i++)
        A1[i] = A1[i] * 1.5 + A1[i] * 0.25 + A2[i] * 0.75;
    for (int rep = 0; rep < 2; rep++) {
        for (int i = 0; i < 6; i++)
            A0[i] = A0[i] * 0.25 + A2[i] * 1.25 + S0;
        double run_6 = 0.0;
        for (int i = 0; i < 7; i++) {
            run_6 += A3[i];
            A3[i] = A3[i] * 0.25 + run_6;
        }
        S0 = S0 * 0.25 + 0.125;
        for (int i = 0; i < 6; i++)
            A1[i] = A1[i] * 0.375 + A2[i] * 0.375;
    }
    for (int rep = 0; rep < 2; rep++) {
        for (int i = 0; i < 6; i++)
            A0[i] = A0[i] * 1.5 + A0[i] * 0.375 + A2[i] * 0.75 + S0;
        for (int i = 0; i < 11; i++)
            A0[i] = A0[i] * 0.75 + A1[i] * 0.25 + A0[i] * 0.75 + S0;
    }
    for (int i = 0; i < 11; i++)
        A0[i] = A0[i] * 0.25 + A1[i] * 0.25;
    double cs_0 = 0.0;
    for (int i = 0; i < 23; i++)
        cs_0 += A0[i] * (i % 3 + 1);
    print_f64(cs_0);
    double cs_1 = 0.0;
    for (int i = 0; i < 11; i++)
        cs_1 += A1[i] * (i % 5 + 1);
    print_f64(cs_1);
    double cs_2 = 0.0;
    for (int i = 0; i < 6; i++)
        cs_2 += A2[i] * (i % 3 + 1);
    print_f64(cs_2);
    double cs_3 = 0.0;
    for (int i = 0; i < 7; i++)
        cs_3 += A3[i] * (i % 3 + 1);
    print_f64(cs_3);
    return 0;
}
''',
    ),
    PromotedScenario(
        name='promoted-fuzz-0-14',
        origin='seed 0, index 14',
        description='brace-initialized globals, interior-pointer aliasing, pointer array, recursion',
        expected_stdout=('90', '29.0933', '31.25'),
        source=r'''
/* generated scenario fuzz-0-14 */
double A0[24];
double A1[10] = {0.75, 0.25, 0.125, 0.5, 0.375, 2.0, 1.5,};
double *PTRS[2];

double rsum_A0(long i) {
    if (i < 0) return 0.0;
    return A0[i] + rsum_A0(i - 1);
}

int main(void) {
    for (int i = 0; i < 24; i++)
        A0[i] = (i * 7 + 9) % 4 * 1.25;
    for (int rep = 0; rep < 3; rep++) {
        PTRS[0] = A1 + 6;
        PTRS[1] = A1 + 5;
        for (int k = 0; k < 2; k++) {
            double *q_2 = PTRS[k];
            for (int i = 0; i < 4; i++)
                q_2[i] = q_2[i] * 0.75;
        }
    }
    double *p_4 = A1 + 5;
    for (int i = 0; i < 4; i++)
        p_4[i] = p_4[i] * 1.5 + 1.0;
    double *p_5 = A1 + 6;
    for (int i = 0; i < 3; i++)
        p_5[i] = p_5[i] * 0.375 + 0.25;
    for (int i = 0; i < 10; i++)
        A1[i] = A1[i] * 0.375 + A1[i] * 0.5 + A1[i] * 1.25;
    double cs_0 = 0.0;
    for (int i = 0; i < 24; i++)
        cs_0 += A0[i] * (i % 3 + 1);
    print_f64(cs_0);
    double cs_1 = 0.0;
    for (int i = 0; i < 10; i++)
        cs_1 += A1[i] * (i % 5 + 1);
    print_f64(cs_1);
    print_f64(rsum_A0(17));
    return 0;
}
''',
    ),
    PromotedScenario(
        name='promoted-fuzz-0-21',
        origin='seed 0, index 21',
        description='eight-feature survivor: glue, pointer array, recursion, prefix sums, stencil',
        expected_stdout=('57522.5', '232.295', '863703', '1410.65'),
        source=r'''
/* generated scenario fuzz-0-21 */
double A0[5] = {2.0,};
double A1[8];
double A2[13];
double S0;
double *PTRS[3];

double rsum_A0(long i) {
    if (i < 0) return 0.0;
    return A0[i] + rsum_A0(i - 1);
}

int main(void) {
    S0 = 0.25;
    for (int i = 0; i < 5; i++)
        A0[i] = (i * 0 + 1) % 3 * 0.375;
    for (int i = 0; i < 8; i++)
        A1[i] = (i * 9 + 1) % 8 * 1.0;
    for (int i = 0; i < 13; i++)
        A2[i] = (i * 7 + 1) % 2 * 0.5;
    for (int i = 0; i < 5; i++)
        A2[i] = A2[i] * 0.75 + A0[i] * 1.25 + A1[i] * 0.5;
    for (int i = 0; i < 5; i++)
        A0[i] = A0[i] * 0.5 + A0[i] * 0.75;
    PTRS[0] = A2 + 8;
    PTRS[1] = A2 + 7;
    PTRS[2] = A2 + 9;
    for (int k = 0; k < 3; k++) {
        double *q_6 = PTRS[k];
        for (int i = 0; i < 4; i++)
            q_6[i] = q_6[i] * 0.375;
    }
    for (int rep = 0; rep < 3; rep++) {
        for (int i = 0; i < 5; i++)
            A0[i] = A0[i] * 1.25 + A1[i] * 0.25 + S0;
        double run_8 = 0.0;
        for (int i = 0; i < 5; i++) {
            run_8 += A0[i];
            A0[i] = A0[i] * 0.75 + run_8;
        }
        double run_9 = 0.0;
        for (int i = 0; i < 8; i++) {
            run_9 += A2[i];
            A1[i] = A1[i] * 0.25 + run_9;
        }
        S0 = S0 * 0.75 + 0.5;
        for (int i = 0; i < 5; i++)
            A0[i] = A0[i] * 1.25 + A0[i] * 1.25 + A0[i] * 0.75;
    }
    for (int i = 0; i < 13; i++) {
        double acc_13 = 0.0;
        for (int j = 0; j < 5; j++)
            acc_13 += A0[j] * 1.25;
        A2[i] = A2[i] * 1.5 + acc_13 + i * 0.125;
    }
    double cs_0 = 0.0;
    for (int i = 0; i < 5; i++)
        cs_0 += A0[i] * (i % 7 + 1);
    print_f64(cs_0);
    double cs_1 = 0.0;
    for (int i = 0; i < 8; i++)
        cs_1 += A1[i] * (i % 5 + 1);
    print_f64(cs_1);
    double cs_2 = 0.0;
    for (int i = 0; i < 13; i++)
        cs_2 += A2[i] * (i % 7 + 1);
    print_f64(cs_2);
    print_f64(rsum_A0(1));
    return 0;
}
''',
    ),
    PromotedScenario(
        name='promoted-fuzz-0-44',
        origin='seed 0, index 44',
        description='every generator feature in one program',
        expected_stdout=('0', '2176.81', '612.156', '147.859'),
        source=r'''
/* generated scenario fuzz-0-44 */
double A0[24] = {1.25, 0.75, 0.75, 0.375, 2.0, 1.25, 0.375, 0.375, 0.375, 1.0, 2.0, 0.125, 1.5, 0.125, 2.0,};
double A1[9];
double A2[20];
double S0;
double *PTRS[2];

double rsum_A2(long i) {
    if (i < 0) return 0.0;
    return A2[i] + rsum_A2(i - 1);
}

int main(void) {
    S0 = 0.375;
    for (int i = 0; i < 24; i++)
        A0[i] = (i * 4 + 6) % 1 * 0.25;
    for (int i = 0; i < 20; i++)
        A2[i] = (i * 4 + 9) % 8 * 2.0;
    for (int rep = 0; rep < 3; rep++) {
        double run_3 = 0.0;
        for (int i = 0; i < 9; i++) {
            run_3 += A1[i];
            A2[i] = A2[i] * 0.5 + run_3;
        }
        double *p_4 = A1 + 6;
        for (int i = 0; i < 3; i++)
            p_4[i] = p_4[i] * 1.25 + 1.0;
        for (int i = 0; i < 9; i++)
            A2[i] = A2[i] * 0.75 + A1[i] * 1.25 + A2[i] * 1.25 + S0;
    }
    for (int rep = 0; rep < 4; rep++) {
        for (int i = 0; i < 9; i++) {
            double acc_7 = 0.0;
            for (int j = 0; j < 15; j++)
                acc_7 += A2[j] * 0.25;
            A1[i] = A1[i] * 0.375 + acc_7 + i * 1.0;
        }
    }
    PTRS[0] = A2 + 11;
    PTRS[1] = A0 + 19;
    for (int k = 0; k < 2; k++) {
        double *q_9 = PTRS[k];
        for (int i = 0; i < 3; i++)
            q_9[i] = q_9[i] * 0.375;
    }
    double cs_0 = 0.0;
    for (int i = 0; i < 24; i++)
        cs_0 += A0[i] * (i % 7 + 1);
    print_f64(cs_0);
    double cs_1 = 0.0;
    for (int i = 0; i < 9; i++)
        cs_1 += A1[i] * (i % 7 + 1);
    print_f64(cs_1);
    double cs_2 = 0.0;
    for (int i = 0; i < 20; i++)
        cs_2 += A2[i] * (i % 7 + 1);
    print_f64(cs_2);
    print_f64(rsum_A2(14));
    return 0;
}
''',
    ),
    PromotedScenario(
        name='promoted-fuzz-0-52',
        origin='seed 0, index 52',
        description='compact alias + stencil + recursion under map promotion',
        expected_stdout=('39.3516', '0', '113.625', '0'),
        source=r'''
/* generated scenario fuzz-0-52 */
double A0[22];
double A1[13];
double A2[7];

double rsum_A1(long i) {
    if (i < 0) return 0.0;
    return A1[i] + rsum_A1(i - 1);
}

int main(void) {
    for (int i = 0; i < 22; i++)
        A0[i] = (i * 1 + 5) % 4 * 0.5;
    for (int i = 0; i < 7; i++)
        A2[i] = (i * 7 + 6) % 1 * 1.25;
    double *p_3 = A0 + 14;
    for (int i = 0; i < 8; i++)
        p_3[i] = p_3[i] * 1.5 + 1.0;
    for (int rep = 0; rep < 2; rep++) {
        for (int i = 0; i < 7; i++) {
            double acc_4 = 0.0;
            for (int j = 0; j < 3; j++)
                acc_4 += A0[j] * 1.5;
            A2[i] = A2[i] * 0.5 + acc_4 + i * 0.5;
        }
        for (int i = 0; i < 13; i++)
            A0[i] = A0[i] * 0.375 + A1[i] * 0.5;
    }
    double cs_0 = 0.0;
    for (int i = 0; i < 22; i++)
        cs_0 += A0[i] * (i % 3 + 1);
    print_f64(cs_0);
    double cs_1 = 0.0;
    for (int i = 0; i < 13; i++)
        cs_1 += A1[i] * (i % 5 + 1);
    print_f64(cs_1);
    double cs_2 = 0.0;
    for (int i = 0; i < 7; i++)
        cs_2 += A2[i] * (i % 5 + 1);
    print_f64(cs_2);
    print_f64(rsum_A1(6));
    return 0;
}
''',
    ),
)
