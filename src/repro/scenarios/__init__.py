"""The scenario engine: generated MiniC workloads with exact oracles.

The 24 ported benchmarks are fixed points; this package manufactures
*novel* well-typed MiniC programs (seeded and deterministic), pairs
each with a bit-exact pure-Python CPU reference, and runs the whole
stack's correctness claims over them as one differential property
matrix -- engines, optimization levels, streams, sanitizer, static
checkers, and fault injection.  ``python -m repro fuzz`` is the
command-line face; the hypothesis strategies in
:mod:`repro.scenarios.generator` are the property-test face.
"""

from .generator import (GeneratedProgram, build_spec, generate_program,
                        program_seed, scenario_specs)
from .harness import (CHAOS_RATES, FuzzReport, PropertyOutcome,
                      ScenarioVerdict, check_program, check_source,
                      run_fuzz)
from .shrink import minimize_spec, spec_size
from .spec import ScenarioSpec, emit_minic, evaluate_spec

__all__ = [
    "GeneratedProgram", "build_spec", "generate_program", "program_seed",
    "scenario_specs", "CHAOS_RATES", "FuzzReport", "PropertyOutcome",
    "ScenarioVerdict", "check_program", "check_source", "run_fuzz",
    "minimize_spec", "spec_size", "ScenarioSpec", "emit_minic",
    "evaluate_spec",
]
