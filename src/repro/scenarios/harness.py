"""Differential property matrix over generated (or any) MiniC programs.

For one program, :func:`check_program` asserts every correctness
property the stack claims, using :func:`repro.api.compile_workload`
for every compilation (so fuzz runs also soak the artifact cache):

========== ==========================================================
property   claim
========== ==========================================================
oracle     sequential run reproduces the pure-Python CPU reference
           stdout exactly, and exits 0
levels     sequential == unoptimized == optimized observables,
           byte for byte
engines    tree-walker == compiled == source engines: observables
           *and* modelled clocks (cpu/gpu/comm/critical-path/
           instructions) identical
streams    streams-on == streams-off observables
sanitizer  CPU-vs-GPU differential run is byte-identical and the
           communication sanitizer reports zero violations
static     the static checkers report zero errors on the
           post-pipeline IR
faults     a seeded chaos schedule (and, slow mode, memory-pressure
           and tiny-heap schedules) leaves observables byte-identical
========== ==========================================================

``slow=False`` keeps one configuration per property (the tier-1 CI
budget); ``slow=True`` widens each property across levels/schedules.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..api import compile_workload
from ..core.config import CgcmConfig, OptLevel
from ..errors import ReproError
from ..gpu.faults import FaultPlan
from ..staticcheck.findings import Severity
from .generator import GeneratedProgram, generate_program, materialize
from .shrink import minimize_spec
from .spec import ScenarioSpec, emit_minic

__all__ = ["PropertyOutcome", "ScenarioVerdict", "FuzzReport",
           "check_program", "check_source", "run_fuzz", "CHAOS_RATES"]

#: Same chaos rates the 24-workload fault bench uses.
CHAOS_RATES = dict(alloc_fail_rate=0.3, transfer_fail_rate=0.15,
                   launch_fail_rate=0.15)

PROPERTIES = ("oracle", "levels", "engines", "streams", "sanitizer",
              "static", "faults", "transval")


@dataclass
class PropertyOutcome:
    """One property's verdict on one program."""

    prop: str
    ok: bool
    detail: str = ""

    def render(self) -> str:
        return f"{self.prop}: {'ok' if self.ok else 'FAIL ' + self.detail}"


@dataclass
class ScenarioVerdict:
    """The whole matrix for one program."""

    name: str
    outcomes: List[PropertyOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failed(self) -> Tuple[str, ...]:
        return tuple(o.prop for o in self.outcomes if not o.ok)

    def summary(self) -> str:
        if self.ok:
            return f"{self.name}: ok ({len(self.outcomes)} properties)"
        details = "; ".join(o.render() for o in self.outcomes if not o.ok)
        return f"{self.name}: FAIL [{details}]"


def _clocks(result) -> Tuple:
    return (result.cpu_seconds, result.gpu_seconds, result.comm_seconds,
            result.critical_path_seconds, result.instructions)


def _diff(kind: str, left, right) -> str:
    return f"{kind}: {left!r} != {right!r}"


def check_source(source: str, name: str = "scenario",
                 expected_stdout: Optional[Sequence[str]] = None,
                 slow: bool = False,
                 fault_seed: Optional[int] = None,
                 validate: bool = False) -> ScenarioVerdict:
    """Run the full property matrix over one MiniC program.

    ``validate`` adds the ``transval`` property: the pipeline (with
    streams, the configuration exercising every pass) must satisfy
    every per-pass legality contract on the program."""
    verdict = ScenarioVerdict(name)
    out = verdict.outcomes
    if fault_seed is None:
        fault_seed = zlib.crc32(name.encode("utf-8"))

    def attempt(prop: str, check: Callable[[], Optional[str]]) -> None:
        try:
            detail = check()
        except ReproError as exc:
            detail = f"{type(exc).__name__}: {exc}"
        out.append(PropertyOutcome(prop, detail is None, detail or ""))

    # The baseline every equivalence below compares against.
    try:
        optimized = compile_workload(source, CgcmConfig(), name)
        base = optimized.run()
    except ReproError as exc:
        out.append(PropertyOutcome(
            "compile", False, f"{type(exc).__name__}: {exc}"))
        return verdict

    def check_oracle() -> Optional[str]:
        sequential = compile_workload(
            source, CgcmConfig(opt_level=OptLevel.SEQUENTIAL), name)
        result = sequential.run()
        if result.exit_code != 0:
            return f"sequential exit code {result.exit_code}"
        if expected_stdout is not None \
                and tuple(result.stdout) != tuple(expected_stdout):
            return _diff("stdout vs CPU reference", result.stdout,
                         tuple(expected_stdout))
        if result.observable() != base.observable():
            return _diff("sequential vs optimized observables",
                         result.observable(), base.observable())
        return None

    def check_levels() -> Optional[str]:
        unopt = compile_workload(
            source, CgcmConfig(opt_level=OptLevel.UNOPTIMIZED), name)
        result = unopt.run()
        if result.observable() != base.observable():
            return _diff("unoptimized vs optimized observables",
                         result.observable(), base.observable())
        return None

    def check_engines() -> Optional[str]:
        tree = optimized.run(engine="tree")
        for engine in ("compiled", "source"):
            other = optimized.run(engine=engine)
            if tree.observable() != other.observable():
                return _diff(f"tree vs {engine} observables",
                             tree.observable(), other.observable())
            if _clocks(tree) != _clocks(other):
                return _diff(f"tree vs {engine} clocks", _clocks(tree),
                             _clocks(other))
        if slow:
            unopt = compile_workload(
                source, CgcmConfig(opt_level=OptLevel.UNOPTIMIZED), name)
            t = unopt.run(engine="tree")
            for engine in ("compiled", "source"):
                o = unopt.run(engine=engine)
                if t.observable() != o.observable() \
                        or _clocks(t) != _clocks(o):
                    return f"tree vs {engine} diverged at unoptimized"
        return None

    def check_streams() -> Optional[str]:
        streams = compile_workload(source, CgcmConfig(streams=True), name)
        result = streams.run()
        if result.observable() != base.observable():
            return _diff("streams-on vs streams-off observables",
                         result.observable(), base.observable())
        if result.critical_path_seconds > result.total_seconds * (1 + 1e-9):
            return (f"critical path {result.critical_path_seconds} "
                    f"exceeds serial sum {result.total_seconds}")
        return None

    def check_sanitizer() -> Optional[str]:
        from ..sanitizer.differential import run_differential
        levels = [OptLevel.OPTIMIZED]
        if slow:
            levels.append(OptLevel.UNOPTIMIZED)
        for level in levels:
            report = run_differential(source, name, level)
            if not report.ok:
                problems = list(report.mismatches)
                problems += [v.render() if hasattr(v, "render") else str(v)
                             for v in report.violations]
                if report.error:
                    problems.append(report.error)
                return f"{level.value}: " + "; ".join(problems[:4])
        return None

    def check_static() -> Optional[str]:
        reports = [optimized.lint()]
        if slow:
            unopt = compile_workload(
                source, CgcmConfig(opt_level=OptLevel.UNOPTIMIZED), name)
            reports.append(unopt.lint())
        for report in reports:
            if not report.clean:
                first = report.errors[0]
                return f"{len(report.errors)} errors, first: {first.render()}"
        return None

    def check_faults() -> Optional[str]:
        schedules = [CgcmConfig(faults=FaultPlan(seed=fault_seed,
                                                 **CHAOS_RATES))]
        if slow:
            # strict_heap_limit off: these schedules exist to push
            # generated programs into eviction/sentinel degradation.
            schedules.append(CgcmConfig(
                faults=FaultPlan(seed=fault_seed + 1, alloc_fail_rate=0.5,
                                 transfer_fail_rate=0.3,
                                 launch_fail_rate=0.3, max_consecutive=4),
                device_heap_limit=64 << 10, strict_heap_limit=False))
            schedules.append(CgcmConfig(device_heap_limit=4 << 10,
                                        strict_heap_limit=False))
        for config in schedules:
            chaotic = compile_workload(source, config, name)
            result = chaotic.run()
            if result.observable() != base.observable():
                return _diff("fault-injected vs clean observables",
                             result.observable(), base.observable())
        return None

    def check_transval() -> Optional[str]:
        # Streams is the configuration that runs every optimize-stage
        # pass, including comm overlap; faults cannot combine with it.
        validated = compile_workload(
            source, CgcmConfig(streams=True, validate=True), name)
        violations = [f for f in validated.report.validation
                      if f.severity is Severity.ERROR]
        if violations:
            return (f"{len(violations)} contract violations, first: "
                    f"{violations[0].render()}")
        return None

    attempt("oracle", check_oracle)
    attempt("levels", check_levels)
    attempt("engines", check_engines)
    attempt("streams", check_streams)
    attempt("sanitizer", check_sanitizer)
    attempt("static", check_static)
    attempt("faults", check_faults)
    if validate:
        attempt("transval", check_transval)
    return verdict


def check_program(program: GeneratedProgram,
                  slow: bool = False,
                  validate: bool = False) -> ScenarioVerdict:
    """Property matrix over one generated program (oracle included)."""
    return check_source(program.source, program.name,
                        program.expected_stdout, slow=slow,
                        validate=validate)


# -- fuzz runs -------------------------------------------------------------

@dataclass
class Counterexample:
    """A failing program, minimized."""

    name: str
    failed: Tuple[str, ...]
    source: str
    minimized_source: str
    minimized_summary: str


@dataclass
class FuzzReport:
    """Outcome of one seeded fuzz run."""

    seed: int
    count: int
    slow: bool
    verdicts: List[ScenarioVerdict] = field(default_factory=list)
    counterexamples: List[Counterexample] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for v in self.verdicts if v.ok)

    @property
    def ok(self) -> bool:
        return self.passed == len(self.verdicts)

    def render(self) -> str:
        lines = [f"fuzz seed={self.seed}: {self.passed}/"
                 f"{len(self.verdicts)} programs pass "
                 f"{'the slow' if self.slow else 'the fast'} "
                 f"property matrix"]
        for verdict in self.verdicts:
            if not verdict.ok:
                lines.append("  " + verdict.summary())
        for ce in self.counterexamples:
            lines.append(f"  minimized {ce.name} "
                         f"({', '.join(ce.failed)}):")
            lines.extend("    " + line
                         for line in ce.minimized_source.splitlines())
        return "\n".join(lines)


def _minimize_failure(program: GeneratedProgram, slow: bool,
                      validate: bool = False) -> Counterexample:
    """Shrink a failing spec to the smallest spec that still fails the
    same way (same non-empty failed-property set, any subset)."""
    original = check_program(program, slow=slow, validate=validate)
    target = set(original.failed)

    def still_failing(spec: ScenarioSpec) -> bool:
        candidate = materialize(spec, program.name + "-min")
        verdict = check_program(candidate, slow=slow, validate=validate)
        failed = set(verdict.failed)
        return bool(failed) and failed <= target

    reduced = minimize_spec(program.spec, still_failing)
    minimized = materialize(reduced, program.name + "-min")
    summary = check_program(minimized, slow=slow,
                            validate=validate).summary()
    return Counterexample(program.name, original.failed, program.source,
                          minimized.source, summary)


def run_fuzz(seed: int, count: int, slow: bool = False,
             progress: Optional[Callable[[ScenarioVerdict], None]] = None,
             minimize: bool = True,
             validate: bool = False) -> FuzzReport:
    """Generate ``count`` programs from ``seed`` and check them all.

    Deterministic end to end: the same ``(seed, count, slow,
    validate)`` yields the same programs, the same verdicts, and (on
    failure) the same minimized counterexamples.  ``validate`` adds
    the translation-validation property to the matrix.
    """
    report = FuzzReport(seed, count, slow)
    for index in range(count):
        program = generate_program(seed, index)
        verdict = check_program(program, slow=slow, validate=validate)
        report.verdicts.append(verdict)
        if progress is not None:
            progress(verdict)
        if not verdict.ok and minimize:
            report.counterexamples.append(
                _minimize_failure(program, slow, validate))
    return report
