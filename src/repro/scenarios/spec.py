"""Scenario specifications: structured MiniC programs with exact oracles.

A :class:`ScenarioSpec` is a small tree of *phases* over a set of
global double arrays and scalars.  Every phase knows two things:

* how to **emit** itself as MiniC (:meth:`~Phase.emit`), and
* how to **apply** itself to a pure-Python model of the program state
  (:meth:`~Phase.apply`) -- mirroring the C evaluation order and
  associativity *operation for operation*, so the modelled doubles are
  bit-identical to what the simulated machine computes.

That second half is the CPU-reference oracle: :func:`evaluate_spec`
predicts the program's exact stdout without touching the frontend,
the IR, or the interpreter.  Any disagreement between the oracle and
a real run is a bug in the stack (or, symmetrically, in the oracle --
either way, a finding).

Numeric discipline that makes bit-exactness possible:

* all float coefficients come from :data:`FLOAT_PALETTE` -- exact
  binary fractions, so literal parsing cannot round;
* integer subexpressions keep non-negative operands, where C's
  truncated ``%`` and Python's floored ``%`` agree;
* every emitted C expression is mirrored with the same shape in
  Python, preserving IEEE-754 evaluation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FLOAT_PALETTE", "ArrayDecl", "ScalarDecl", "Phase", "InitPhase",
    "ElementwisePhase", "StencilPhase", "SeqAccumPhase", "AliasPhase",
    "PtrArrayPhase", "ScalarUpdatePhase", "RepeatPhase", "ChecksumItem",
    "RecursionItem", "ScenarioSpec", "emit_minic", "evaluate_spec",
]

#: Exact binary fractions: parsing their decimal spelling is lossless.
FLOAT_PALETTE = (0.125, 0.25, 0.375, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0)


def _flit(value: float) -> str:
    """A MiniC double literal that parses back to exactly ``value``."""
    text = repr(float(value))
    return text if "." in text or "e" in text else text + ".0"


class _Writer:
    """Tiny indented source emitter."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def line(self, text: str = "") -> None:
        self.lines.append("    " * self.depth + text if text else "")

    def open(self, text: str) -> None:
        self.line(text + " {")
        self.depth += 1

    def close(self) -> None:
        self.depth -= 1
        self.line("}")

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


@dataclass(frozen=True)
class ArrayDecl:
    """One global ``double`` array, optionally brace-initialized.

    ``init`` may be shorter than ``size``: C zero-fills the tail.  The
    emitted initializer keeps a trailing comma -- valid C99 the parser
    once rejected -- so the fuzzer pins that fix forever.
    """

    name: str
    size: int
    init: Tuple[float, ...] = ()


@dataclass(frozen=True)
class ScalarDecl:
    """One global ``double`` scalar, assigned at the top of ``main``."""

    name: str
    init: float


class Phase:
    """Base class: one statement group in ``main`` (or a repeat body)."""

    uid: int

    def emit(self, w: _Writer) -> None:
        raise NotImplementedError

    def apply(self, state: Dict[str, object]) -> None:
        raise NotImplementedError

    def arrays(self) -> Tuple[str, ...]:
        """Names of every array this phase touches."""
        raise NotImplementedError

    def scalars(self) -> Tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class InitPhase(Phase):
    """Affine (re)initialization: ``D[i] = (i*mul + add) % mod * scale``."""

    uid: int
    dst: str
    n: int
    mul: int
    add: int
    mod: int
    scale: float

    def emit(self, w: _Writer) -> None:
        w.line(f"for (int i = 0; i < {self.n}; i++)")
        w.line(f"    {self.dst}[i] = (i * {self.mul} + {self.add}) "
               f"% {self.mod} * {_flit(self.scale)};")

    def apply(self, state: Dict[str, object]) -> None:
        dst = state[self.dst]
        for i in range(self.n):
            dst[i] = ((i * self.mul + self.add) % self.mod) * self.scale

    def arrays(self) -> Tuple[str, ...]:
        return (self.dst,)


@dataclass(frozen=True)
class ElementwisePhase(Phase):
    """DOALL-friendly map: ``D[i] = D[i]*c1 + S1[i]*c2 [+ S2[i]*c3] [+ S]``."""

    uid: int
    dst: str
    src1: str
    n: int
    c1: float
    c2: float
    src2: Optional[str] = None
    c3: float = 0.5
    coeff_scalar: Optional[str] = None

    def emit(self, w: _Writer) -> None:
        expr = (f"{self.dst}[i] * {_flit(self.c1)} + "
                f"{self.src1}[i] * {_flit(self.c2)}")
        if self.src2 is not None:
            expr += f" + {self.src2}[i] * {_flit(self.c3)}"
        if self.coeff_scalar is not None:
            expr += f" + {self.coeff_scalar}"
        w.line(f"for (int i = 0; i < {self.n}; i++)")
        w.line(f"    {self.dst}[i] = {expr};")

    def apply(self, state: Dict[str, object]) -> None:
        dst, src1 = state[self.dst], state[self.src1]
        src2 = state[self.src2] if self.src2 is not None else None
        for i in range(self.n):
            value = dst[i] * self.c1 + src1[i] * self.c2
            if src2 is not None:
                value = value + src2[i] * self.c3
            if self.coeff_scalar is not None:
                value = value + state[self.coeff_scalar]
            dst[i] = value

    def arrays(self) -> Tuple[str, ...]:
        names = [self.dst, self.src1]
        if self.src2 is not None:
            names.append(self.src2)
        return tuple(names)

    def scalars(self) -> Tuple[str, ...]:
        return (self.coeff_scalar,) if self.coeff_scalar else ()


@dataclass(frozen=True)
class StencilPhase(Phase):
    """Nested reduction per element (inner loop inside each GPU thread)."""

    uid: int
    dst: str
    src: str
    n: int
    m: int
    coeff: float
    c1: float
    w2: float

    def emit(self, w: _Writer) -> None:
        acc = f"acc_{self.uid}"
        w.open(f"for (int i = 0; i < {self.n}; i++)")
        w.line(f"double {acc} = 0.0;")
        w.line(f"for (int j = 0; j < {self.m}; j++)")
        w.line(f"    {acc} += {self.src}[j] * {_flit(self.coeff)};")
        w.line(f"{self.dst}[i] = {self.dst}[i] * {_flit(self.c1)} + "
               f"{acc} + i * {_flit(self.w2)};")
        w.close()

    def apply(self, state: Dict[str, object]) -> None:
        dst, src = state[self.dst], state[self.src]
        for i in range(self.n):
            acc = 0.0
            for j in range(self.m):
                acc = acc + src[j] * self.coeff
            dst[i] = dst[i] * self.c1 + acc + i * self.w2

    def arrays(self) -> Tuple[str, ...]:
        return (self.dst, self.src)


@dataclass(frozen=True)
class SeqAccumPhase(Phase):
    """Prefix accumulation: the cross-iteration dependence keeps this
    loop on the CPU, giving the program a genuine CPU phase."""

    uid: int
    src: str
    dst: str
    n: int
    c: float

    def emit(self, w: _Writer) -> None:
        run = f"run_{self.uid}"
        w.line(f"double {run} = 0.0;")
        w.open(f"for (int i = 0; i < {self.n}; i++)")
        w.line(f"{run} += {self.src}[i];")
        w.line(f"{self.dst}[i] = {self.dst}[i] * {_flit(self.c)} + {run};")
        w.close()

    def apply(self, state: Dict[str, object]) -> None:
        src, dst = state[self.src], state[self.dst]
        run = 0.0
        for i in range(self.n):
            run = run + src[i]
            dst[i] = dst[i] * self.c + run

    def arrays(self) -> Tuple[str, ...]:
        return (self.src, self.dst)


@dataclass(frozen=True)
class AliasPhase(Phase):
    """Writes through a local pointer into the middle of a global."""

    uid: int
    arr: str
    off: int
    length: int
    c: float
    add: float

    def emit(self, w: _Writer) -> None:
        p = f"p_{self.uid}"
        w.line(f"double *{p} = {self.arr} + {self.off};")
        w.line(f"for (int i = 0; i < {self.length}; i++)")
        w.line(f"    {p}[i] = {p}[i] * {_flit(self.c)} + "
               f"{_flit(self.add)};")

    def apply(self, state: Dict[str, object]) -> None:
        arr = state[self.arr]
        for i in range(self.length):
            arr[self.off + i] = arr[self.off + i] * self.c + self.add

    def arrays(self) -> Tuple[str, ...]:
        return (self.arr,)


@dataclass(frozen=True)
class PtrArrayPhase(Phase):
    """Fills the global pointer array, then updates through it.

    ``targets`` is a tuple of ``(array, offset)`` pairs; overlapping
    targets are legal and exercised (the oracle applies them in the
    same ``k``-loop order the program runs them in).
    """

    uid: int
    targets: Tuple[Tuple[str, int], ...]
    length: int
    c: float

    def emit(self, w: _Writer) -> None:
        for k, (arr, off) in enumerate(self.targets):
            rhs = arr if off == 0 else f"{arr} + {off}"
            w.line(f"PTRS[{k}] = {rhs};")
        q = f"q_{self.uid}"
        w.open(f"for (int k = 0; k < {len(self.targets)}; k++)")
        w.line(f"double *{q} = PTRS[k];")
        w.line(f"for (int i = 0; i < {self.length}; i++)")
        w.line(f"    {q}[i] = {q}[i] * {_flit(self.c)};")
        w.close()

    def apply(self, state: Dict[str, object]) -> None:
        for arr, off in self.targets:
            values = state[arr]
            for i in range(self.length):
                values[off + i] = values[off + i] * self.c

    def arrays(self) -> Tuple[str, ...]:
        return tuple(arr for arr, _ in self.targets)


@dataclass(frozen=True)
class ScalarUpdatePhase(Phase):
    """Glue candidate: a scalar global updated between array phases."""

    uid: int
    name: str
    mul: float
    add: float

    def emit(self, w: _Writer) -> None:
        w.line(f"{self.name} = {self.name} * {_flit(self.mul)} + "
               f"{_flit(self.add)};")

    def apply(self, state: Dict[str, object]) -> None:
        state[self.name] = state[self.name] * self.mul + self.add

    def arrays(self) -> Tuple[str, ...]:
        return ()

    def scalars(self) -> Tuple[str, ...]:
        return (self.name,)


@dataclass(frozen=True)
class RepeatPhase(Phase):
    """A counted outer loop over a body of phases (map-promotion and
    glue-kernel territory: the same units cross the bus every rep)."""

    uid: int
    reps: int
    body: Tuple[Phase, ...]

    def emit(self, w: _Writer) -> None:
        w.open(f"for (int rep = 0; rep < {self.reps}; rep++)")
        for phase in self.body:
            phase.emit(w)
        w.close()

    def apply(self, state: Dict[str, object]) -> None:
        for _ in range(self.reps):
            for phase in self.body:
                phase.apply(state)

    def arrays(self) -> Tuple[str, ...]:
        names: List[str] = []
        for phase in self.body:
            names.extend(phase.arrays())
        return tuple(names)

    def scalars(self) -> Tuple[str, ...]:
        names: List[str] = []
        for phase in self.body:
            names.extend(phase.scalars())
        return tuple(names)


@dataclass(frozen=True)
class ChecksumItem:
    """One printed checksum: ``cs += A[i] * (i % m + 1)`` over all i."""

    arr: str
    n: int
    m: int


@dataclass(frozen=True)
class RecursionItem:
    """One printed recursive suffix sum ``rsum_A(hi)``."""

    arr: str
    hi: int


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete generated program."""

    arrays: Tuple[ArrayDecl, ...]
    scalars: Tuple[ScalarDecl, ...]
    phases: Tuple[Phase, ...]
    checksums: Tuple[ChecksumItem, ...]
    recursions: Tuple[RecursionItem, ...] = ()
    ptr_slots: int = 0

    def array(self, name: str) -> ArrayDecl:
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise KeyError(name)


# -- MiniC emission --------------------------------------------------------

def emit_minic(spec: ScenarioSpec, comment: str = "") -> str:
    """Render a spec as a complete MiniC program."""
    w = _Writer()
    if comment:
        w.line(f"/* {comment} */")
    for decl in spec.arrays:
        if decl.init:
            values = " ".join(f"{_flit(v)}," for v in decl.init)
            w.line(f"double {decl.name}[{decl.size}] = {{{values}}};")
        else:
            w.line(f"double {decl.name}[{decl.size}];")
    for decl in spec.scalars:
        w.line(f"double {decl.name};")
    if spec.ptr_slots:
        w.line(f"double *PTRS[{spec.ptr_slots}];")
    w.line()
    for item in spec.recursions:
        fn = f"rsum_{item.arr}"
        w.open(f"double {fn}(long i)")
        w.line("if (i < 0) return 0.0;")
        w.line(f"return {item.arr}[i] + {fn}(i - 1);")
        w.close()
        w.line()
    w.open("int main(void)")
    for decl in spec.scalars:
        w.line(f"{decl.name} = {_flit(decl.init)};")
    for phase in spec.phases:
        phase.emit(w)
    for index, item in enumerate(spec.checksums):
        cs = f"cs_{index}"
        w.line(f"double {cs} = 0.0;")
        w.line(f"for (int i = 0; i < {item.n}; i++)")
        w.line(f"    {cs} += {item.arr}[i] * (i % {item.m} + 1);")
        w.line(f"print_f64({cs});")
    for item in spec.recursions:
        w.line(f"print_f64(rsum_{item.arr}({item.hi}));")
    w.line("return 0;")
    w.close()
    return w.render()


# -- the CPU-reference oracle ----------------------------------------------

def evaluate_spec(spec: ScenarioSpec) -> Tuple[str, ...]:
    """Predict the program's exact stdout, without compiling anything.

    Globals start zeroed (C semantics, honoured by the simulator);
    every phase mirrors the emitted C operation for operation, so the
    doubles -- and therefore their ``%.6g`` renderings -- are
    bit-identical to a correct run.
    """
    state: Dict[str, object] = {}
    for decl in spec.arrays:
        values = [float(v) for v in decl.init]
        state[decl.name] = values + [0.0] * (decl.size - len(values))
    for decl in spec.scalars:
        state[decl.name] = float(decl.init)
    for phase in spec.phases:
        phase.apply(state)
    out: List[str] = []
    for item in spec.checksums:
        cs = 0.0
        values = state[item.arr]
        for i in range(item.n):
            cs = cs + values[i] * ((i % item.m) + 1)
        out.append(f"{cs:.6g}")
    for item in spec.recursions:
        values = state[item.arr]
        total = 0.0
        for i in range(item.hi + 1):
            total = values[i] + total
        out.append(f"{total:.6g}")
    return tuple(out)
