"""Property-based MiniC program generator.

One generator, two front doors:

* :func:`generate_program` -- fully deterministic, driven by a seeded
  ``random.Random`` (string-seeded, so the stream is stable across
  platforms and Python versions).  This is what ``python -m repro
  fuzz`` uses: same seed, same programs, same verdicts.
* :func:`scenario_specs` -- the same decision procedure driven by
  hypothesis's ``draw``, so property tests get hypothesis's
  choice-level *shrinking* for free: a failing spec minimizes to the
  smallest program that still fails.

Both paths run :func:`build_spec` over an abstract :class:`DrawSource`;
the decisions (and therefore the distribution of programs) are
identical by construction.

Coverage by construction: generated programs mix affine
initialization, DOALL-friendly elementwise maps, nested per-element
reductions, sequential prefix accumulations (genuine CPU phases),
writes through aliasing interior pointers, global pointer arrays,
scalar-global glue updates inside counted repeat loops, and recursive
checksum helpers -- the exact feature set the CGCM paper's pipeline
has to get right.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .spec import (AliasPhase, ArrayDecl, ChecksumItem, ElementwisePhase,
                   FLOAT_PALETTE, InitPhase, Phase, PtrArrayPhase,
                   RecursionItem, RepeatPhase, ScalarDecl, ScalarUpdatePhase,
                   ScenarioSpec, SeqAccumPhase, StencilPhase, emit_minic,
                   evaluate_spec)

__all__ = ["DrawSource", "RandomDrawSource", "build_spec",
           "GeneratedProgram", "generate_program", "program_seed",
           "scenario_specs"]

#: Decay-leaning multipliers keep repeated phases numerically tame.
_MULS = (0.25, 0.375, 0.5, 0.75, 1.25, 1.5)
_ADDS = (0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0)

_SIMPLE_KINDS = ("elementwise", "elementwise", "elementwise", "stencil",
                 "seqaccum", "alias", "ptrarray", "scalar")


class DrawSource:
    """The decision interface :func:`build_spec` draws from."""

    def integer(self, lo: int, hi: int) -> int:
        raise NotImplementedError

    def choice(self, options: Sequence):
        raise NotImplementedError

    def boolean(self) -> bool:
        return self.integer(0, 1) == 1


class RandomDrawSource(DrawSource):
    """Deterministic draws from a seeded ``random.Random``."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def integer(self, lo: int, hi: int) -> int:
        return self.rng.randint(lo, hi)

    def choice(self, options: Sequence):
        return options[self.rng.randrange(len(options))]


class _Builder:
    """Shared decision procedure: one spec from one draw source."""

    def __init__(self, d: DrawSource):
        self.d = d
        self.uid = 0
        self.arrays: List[ArrayDecl] = []
        self.scalars: List[ScalarDecl] = []
        self.ptr_slots = 0

    def next_uid(self) -> int:
        self.uid += 1
        return self.uid

    def pick_array(self) -> ArrayDecl:
        return self.d.choice(self.arrays)

    def build(self) -> ScenarioSpec:
        d = self.d
        for index in range(d.integer(2, 4)):
            size = d.integer(4, 24)
            init: Tuple[float, ...] = ()
            if d.integer(0, 2) == 0:
                init = tuple(d.choice(FLOAT_PALETTE)
                             for _ in range(d.integer(1, size)))
            self.arrays.append(ArrayDecl(f"A{index}", size, init))
        for index in range(d.integer(0, 2)):
            self.scalars.append(ScalarDecl(f"S{index}",
                                           d.choice(FLOAT_PALETTE)))
        phases: List[Phase] = []
        # Most arrays get an affine init; the rest start zeroed, which
        # exercises untouched-suffix and all-zero units.
        for decl in self.arrays:
            if d.integer(0, 3) > 0:
                phases.append(self.init_phase(decl))
        for _ in range(d.integer(2, 5)):
            if d.integer(0, 3) == 0:
                phases.append(self.repeat_phase())
            else:
                phases.append(self.simple_phase())
        checksums = tuple(
            ChecksumItem(decl.name, decl.size, d.choice((3, 5, 7)))
            for decl in self.arrays)
        recursions: Tuple[RecursionItem, ...] = ()
        if d.boolean():
            decl = self.pick_array()
            recursions = (RecursionItem(decl.name,
                                        d.integer(0, decl.size - 1)),)
        return ScenarioSpec(tuple(self.arrays), tuple(self.scalars),
                            tuple(phases), checksums, recursions,
                            self.ptr_slots)

    # -- phase builders ----------------------------------------------------

    def init_phase(self, decl: Optional[ArrayDecl] = None) -> InitPhase:
        d = self.d
        decl = decl if decl is not None else self.pick_array()
        return InitPhase(self.next_uid(), decl.name, decl.size,
                         d.integer(0, 9), d.integer(0, 9),
                         d.integer(1, 9), d.choice(FLOAT_PALETTE))

    def simple_phase(self) -> Phase:
        kind = self.d.choice(_SIMPLE_KINDS)
        if kind == "scalar" and not self.scalars:
            kind = "elementwise"
        return getattr(self, f"{kind}_phase")()

    def elementwise_phase(self) -> ElementwisePhase:
        d = self.d
        dst, src1 = self.pick_array(), self.pick_array()
        src2 = self.pick_array() if d.boolean() else None
        sizes = [dst.size, src1.size] + ([src2.size] if src2 else [])
        coeff_scalar = None
        if self.scalars and d.boolean():
            coeff_scalar = self.d.choice(self.scalars).name
        return ElementwisePhase(
            self.next_uid(), dst.name, src1.name, min(sizes),
            d.choice(_MULS), d.choice(_MULS),
            src2.name if src2 else None, d.choice(_MULS), coeff_scalar)

    def stencil_phase(self) -> StencilPhase:
        d = self.d
        dst = self.pick_array()
        others = [a for a in self.arrays if a.name != dst.name]
        src = d.choice(others) if others else dst
        return StencilPhase(self.next_uid(), dst.name, src.name,
                            dst.size, d.integer(1, src.size),
                            d.choice(_MULS), d.choice(_MULS),
                            d.choice(_ADDS))

    def seqaccum_phase(self) -> SeqAccumPhase:
        d = self.d
        src, dst = self.pick_array(), self.pick_array()
        return SeqAccumPhase(self.next_uid(), src.name, dst.name,
                             min(src.size, dst.size), d.choice(_MULS))

    def alias_phase(self) -> AliasPhase:
        d = self.d
        decl = self.pick_array()
        off = d.integer(0, decl.size - 1)
        length = d.integer(1, decl.size - off)
        return AliasPhase(self.next_uid(), decl.name, off, length,
                          d.choice(_MULS), d.choice(_ADDS))

    def ptrarray_phase(self) -> PtrArrayPhase:
        d = self.d
        count = d.integer(2, 3)
        min_size = min(decl.size for decl in self.arrays)
        length = d.integer(1, min_size)
        targets = []
        for _ in range(count):
            decl = self.pick_array()
            targets.append((decl.name, d.integer(0, decl.size - length)))
        self.ptr_slots = max(self.ptr_slots, count)
        return PtrArrayPhase(self.next_uid(), tuple(targets), length,
                             d.choice(_MULS))

    def scalar_phase(self) -> ScalarUpdatePhase:
        d = self.d
        return ScalarUpdatePhase(self.next_uid(),
                                 d.choice(self.scalars).name,
                                 d.choice(_MULS), d.choice(_ADDS))

    def repeat_phase(self) -> RepeatPhase:
        d = self.d
        body: List[Phase] = []
        for _ in range(d.integer(1, 3)):
            body.append(self.simple_phase())
        if self.scalars and d.boolean():
            # The canonical glue shape: a scalar-global update wedged
            # between GPU-bound array phases inside the loop.
            body.append(self.scalar_phase())
            body.append(self.elementwise_phase())
        return RepeatPhase(self.next_uid(), d.integer(2, 4), tuple(body))


def build_spec(d: DrawSource) -> ScenarioSpec:
    """Draw one complete scenario spec."""
    return _Builder(d).build()


@dataclass(frozen=True)
class GeneratedProgram:
    """A generated workload: spec, source, and its oracle verdict."""

    name: str
    spec: ScenarioSpec
    source: str
    expected_stdout: Tuple[str, ...]


def program_seed(seed: int, index: int) -> str:
    """The string seed of program ``index`` in run ``seed``.

    String seeding pins ``random.Random`` to its version-2 init
    scheme, which hashes the bytes identically on every platform.
    """
    return f"cgcm-fuzz:{seed}:{index}"


def generate_program(seed: int, index: int = 0) -> GeneratedProgram:
    """Deterministically generate program ``index`` of run ``seed``."""
    rng = random.Random(program_seed(seed, index))
    spec = build_spec(RandomDrawSource(rng))
    return materialize(spec, f"fuzz-{seed}-{index}")


def materialize(spec: ScenarioSpec, name: str) -> GeneratedProgram:
    """Emit source and oracle output for a spec."""
    source = emit_minic(spec, comment=f"generated scenario {name}")
    return GeneratedProgram(name, spec, source, evaluate_spec(spec))


def scenario_specs():
    """Hypothesis strategy over :class:`ScenarioSpec`.

    Imported lazily so the production fuzz path never needs hypothesis
    installed; property tests get true choice-level shrinking.
    """
    import hypothesis.strategies as st

    class _HypothesisDrawSource(DrawSource):
        def __init__(self, draw):
            self.draw = draw

        def integer(self, lo: int, hi: int) -> int:
            return self.draw(st.integers(lo, hi))

        def choice(self, options: Sequence):
            return options[self.draw(st.integers(0, len(options) - 1))]

    @st.composite
    def _specs(draw):
        return build_spec(_HypothesisDrawSource(draw))

    return _specs()
