"""Greedy deterministic spec shrinking for fuzz counterexamples.

Hypothesis shrinks the property tests' failures on its own; this
module is for the *production* fuzz loop (``python -m repro fuzz``),
which runs on plain seeded randomness.  Given a failing spec and a
predicate "does this spec still fail?", :func:`minimize_spec` walks a
fixed repertoire of structure-removing moves to a fixpoint:

1. delete a top-level phase;
2. inline a repeat loop's body (drop the loop) or halve its trip count;
3. delete one phase from a repeat body;
4. drop recursion checksums, then per-array checksums (keeping one);
5. drop scalar and array declarations nothing references any more.

Moves are tried first-to-last, restarting after every success, so the
result is deterministic for a deterministic predicate.  The predicate
budget is capped; the best spec so far is returned when it runs out.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

from .spec import (ChecksumItem, Phase, RepeatPhase, ScenarioSpec)

__all__ = ["minimize_spec", "spec_size"]


def spec_size(spec: ScenarioSpec) -> int:
    """A rough structural size: smaller is more minimal."""

    def phase_size(phase: Phase) -> int:
        if isinstance(phase, RepeatPhase):
            return 1 + sum(phase_size(p) for p in phase.body)
        return 1

    return (sum(phase_size(p) for p in spec.phases)
            + len(spec.arrays) + len(spec.scalars)
            + len(spec.checksums) + len(spec.recursions))


def _referenced(spec: ScenarioSpec) -> Tuple[set, set]:
    arrays, scalars = set(), set()
    for phase in spec.phases:
        arrays.update(phase.arrays())
        scalars.update(phase.scalars())
    for item in spec.checksums:
        arrays.add(item.arr)
    for item in spec.recursions:
        arrays.add(item.arr)
    return arrays, scalars


def _candidates(spec: ScenarioSpec) -> List[ScenarioSpec]:
    """Every one-step reduction of ``spec``, in a fixed order."""
    out: List[ScenarioSpec] = []

    # 1/2/3: phase-level moves.
    for index, phase in enumerate(spec.phases):
        rest = spec.phases[:index] + spec.phases[index + 1:]
        out.append(dataclasses.replace(spec, phases=rest))
        if isinstance(phase, RepeatPhase):
            inlined = spec.phases[:index] + phase.body \
                + spec.phases[index + 1:]
            out.append(dataclasses.replace(spec, phases=inlined))
            if phase.reps > 2:
                shrunk = dataclasses.replace(phase,
                                             reps=max(2, phase.reps // 2))
                out.append(dataclasses.replace(
                    spec, phases=spec.phases[:index] + (shrunk,)
                    + spec.phases[index + 1:]))
            for bindex in range(len(phase.body)):
                body = phase.body[:bindex] + phase.body[bindex + 1:]
                if body:
                    out.append(dataclasses.replace(
                        spec, phases=spec.phases[:index]
                        + (dataclasses.replace(phase, body=body),)
                        + spec.phases[index + 1:]))

    # 4: checksum/recursion moves (keep at least one print).
    for index in range(len(spec.recursions)):
        out.append(dataclasses.replace(
            spec, recursions=spec.recursions[:index]
            + spec.recursions[index + 1:]))
    if len(spec.checksums) + len(spec.recursions) > 1:
        for index in range(len(spec.checksums)):
            out.append(dataclasses.replace(
                spec, checksums=spec.checksums[:index]
                + spec.checksums[index + 1:]))

    # 5: drop unreferenced declarations.
    used_arrays, used_scalars = _referenced(spec)
    dead_arrays = tuple(a for a in spec.arrays if a.name not in used_arrays)
    dead_scalars = tuple(s for s in spec.scalars
                         if s.name not in used_scalars)
    if dead_arrays or dead_scalars:
        out.append(dataclasses.replace(
            spec,
            arrays=tuple(a for a in spec.arrays if a.name in used_arrays),
            scalars=tuple(s for s in spec.scalars
                          if s.name in used_scalars)))
    return out


def _valid(spec: ScenarioSpec) -> bool:
    """Reductions must leave a well-formed, printable program."""
    if not spec.arrays:
        return False
    if not spec.checksums and not spec.recursions:
        return False
    declared_arrays = {a.name for a in spec.arrays}
    declared_scalars = {s.name for s in spec.scalars}
    used_arrays, used_scalars = _referenced(spec)
    return (used_arrays <= declared_arrays
            and used_scalars <= declared_scalars)


def minimize_spec(spec: ScenarioSpec,
                  still_failing: Callable[[ScenarioSpec], bool],
                  budget: int = 200) -> ScenarioSpec:
    """Greedily shrink ``spec`` while ``still_failing`` holds."""
    current = spec
    evaluations = 0
    improved = True
    while improved and evaluations < budget:
        improved = False
        for candidate in _candidates(current):
            if evaluations >= budget:
                break
            if not _valid(candidate):
                continue
            if spec_size(candidate) >= spec_size(current):
                continue
            evaluations += 1
            if still_failing(candidate):
                current = candidate
                improved = True
                break
    return current
