"""Alias, mod/ref, and affine dependence analysis tests."""

import pytest

from repro.analysis import (AffineContext, IvRange, ModRefAnalysis, UNKNOWN,
                            access_form, affine_of,
                            conflicts_across_iterations, find_loops,
                            may_alias, recognize_counted_loop,
                            underlying_objects)
from repro.analysis.affine import _conflict_exists, _lattice_hits
from repro.frontend import compile_minic
from repro.ir import GetElementPtr, Load, Store


class TestUnderlyingObjects:
    def test_distinct_globals_do_not_alias(self):
        module = compile_minic("""
        double A[4];
        double B[4];
        int main(void) {
            A[1] = 0.0;
            B[1] = 0.0;
            return 0;
        }""")
        fn = module.get_function("main")
        stores = [i for i in fn.instructions() if isinstance(i, Store)]
        a_ptr = stores[0].pointer
        b_ptr = stores[1].pointer
        assert not may_alias(a_ptr, b_ptr)
        assert may_alias(a_ptr, a_ptr)

    def test_gep_and_cast_traced_to_root(self):
        module = compile_minic("""
        double A[4];
        int main(void) {
            char *raw = (char *) A;
            double *back = (double *) (raw + 8);
            *back = 1.0;
            return 0;
        }""")
        fn = module.get_function("main")
        store = [i for i in fn.instructions() if isinstance(i, Store)
                 and i.value.type.is_float][0]
        roots = underlying_objects(store.pointer)
        assert {getattr(r, "name", r) for r in roots} == {"A"}

    def test_loaded_pointer_is_unknown(self):
        module = compile_minic("""
        double *slot;
        int main(void) {
            *slot = 1.0;
            return 0;
        }""")
        fn = module.get_function("main")
        store = [i for i in fn.instructions() if isinstance(i, Store)
                 and i.value.type.is_float][0]
        assert UNKNOWN in underlying_objects(store.pointer)

    def test_malloc_results_are_distinct(self):
        module = compile_minic("""
        int main(void) {
            double *a = (double *) malloc(32);
            double *b = (double *) malloc(32);
            a[0] = 1.0;
            b[0] = 2.0;
            return 0;
        }""")
        fn = module.get_function("main")
        stores = [i for i in fn.instructions() if isinstance(i, Store)
                  and i.value.type.is_float]
        assert not may_alias(stores[0].pointer, stores[1].pointer)


class TestModRef:
    def _loop_and_fn(self, source):
        module = compile_minic(source)
        fn = module.get_function("main")
        loop = find_loops(fn)[0]
        return module, fn, loop

    def test_store_in_region_is_mod(self):
        module, fn, loop = self._loop_and_fn("""
        double A[4];
        int main(void) {
            for (int i = 0; i < 4; i++) A[i] = 1.0;
            return 0;
        }""")
        root = module.get_global("A")
        mod, ref = ModRefAnalysis().region_mod_ref(loop.blocks, root)
        assert mod and not ref

    def test_unrelated_object_untouched(self):
        module, fn, loop = self._loop_and_fn("""
        double A[4];
        double B[4];
        int main(void) {
            for (int i = 0; i < 4; i++) A[i] = 1.0;
            B[0] = 2.0;
            return 0;
        }""")
        root = module.get_global("B")
        mod, ref = ModRefAnalysis().region_mod_ref(loop.blocks, root)
        assert not mod and not ref

    def test_call_into_helper_counts(self):
        module, fn, loop = self._loop_and_fn("""
        double A[4];
        void poke(long i) { A[i] = 3.0; }
        int main(void) {
            for (int i = 0; i < 4; i++) poke(i);
            return 0;
        }""")
        root = module.get_global("A")
        mod, _ = ModRefAnalysis().region_mod_ref(loop.blocks, root)
        assert mod

    def test_pointer_passed_to_helper_counts(self):
        module, fn, loop = self._loop_and_fn("""
        double A[4];
        void poke(double *p) { p[0] = 3.0; }
        int main(void) {
            for (int i = 0; i < 4; i++) poke(A);
            return 0;
        }""")
        root = module.get_global("A")
        mod, _ = ModRefAnalysis().region_mod_ref(loop.blocks, root)
        assert mod

    def test_pure_external_is_clean(self):
        module, fn, loop = self._loop_and_fn("""
        double A[4];
        int main(void) {
            double x = 0.0;
            for (int i = 0; i < 4; i++) x = sqrt(x + i);
            A[0] = x;
            return 0;
        }""")
        root = module.get_global("A")
        mod, ref = ModRefAnalysis().region_mod_ref(loop.blocks, root)
        assert not mod and not ref


class TestConflictSolver:
    def test_lattice_hits(self):
        assert _lattice_hits(0, 8, 4, 8)       # 8 on the lattice
        assert not _lattice_hits(0, 8, 4, 7)   # nothing between 4..7
        assert _lattice_hits(3, 8, 10, 12)     # 11 = 3 + 8
        assert _lattice_hits(5, 0, 5, 9)       # degenerate lattice
        assert not _lattice_hits(5, 0, 6, 9)

    def test_point_collisions(self):
        # D = 8*delta + 0, byte windows of one f64: conflict iff some
        # nonzero delta makes |8*delta| <= 7 -- impossible.
        assert not _conflict_exists(8, -7, 7, 0, 0, 0, 0, None)
        # Stride 1 with 1-byte accesses: distinct bytes, no conflict.
        assert not _conflict_exists(1, 0, 0, 0, 0, 0, 0, None)
        # Stride 1 with 2-byte accesses: neighbours overlap.
        assert _conflict_exists(1, -1, 1, 0, 0, 0, 0, None)

    def test_divisibility_pruning(self):
        # Column sweep: D = 8*delta + 64*m; |delta| <= 7: no solution.
        assert not _conflict_exists(8, -7, 7, -448, 448, 0, 64, 7)
        # Without the delta bound a solution exists (delta = 8, m=-1).
        assert _conflict_exists(8, -7, 7, -448, 448, 0, 64, None)

    def test_interval_pruning(self):
        # Stencil row: D = 8*delta - 64 + small window: delta = 8 would
        # hit, but trips bound delta to 5.
        assert not _conflict_exists(8, -7, 7, -64, -64, -64, 0, 5)
        assert _conflict_exists(8, -7, 7, -64, -64, -64, 0, 8)


class TestAffineConflicts:
    def _context(self, source):
        module = compile_minic(source)
        fn = module.get_function("main")
        loops = find_loops(fn)
        outer = recognize_counted_loop(fn, loops[0])
        inner_ranges = {}
        for loop in loops[1:]:
            counted = recognize_counted_loop(fn, loop)
            if counted is not None:
                from repro.ir import Constant
                if isinstance(counted.start, Constant) and \
                        isinstance(counted.end, Constant):
                    inner_ranges[counted.ivar] = IvRange(
                        counted.start.value, counted.end.value,
                        counted.step)
        ctx = AffineContext(outer, inner_ranges)
        accesses = []
        for block in outer.body_blocks:
            for inst in block.instructions:
                if isinstance(inst, (Load, Store)):
                    accesses.append(inst)
        return ctx, accesses

    def test_row_parallel_updates_do_not_conflict(self):
        ctx, accesses = self._context("""
        double M[8][8];
        int main(void) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++)
                    M[i][j] = M[i][j] + 1.0;
            return 0;
        }""")
        forms = [access_form(a, ctx) for a in accesses
                 if "M" in str(underlying_objects(a.pointer))]
        writes = [f for f in forms if f.is_write]
        assert writes
        for f in forms:
            for g in writes:
                assert not conflicts_across_iterations(f, g, ctx)

    def test_stencil_neighbour_reads_conflict(self):
        ctx, accesses = self._context("""
        double M[8][8];
        int main(void) {
            for (int i = 1; i < 7; i++)
                for (int j = 1; j < 7; j++)
                    M[i][j] = M[i - 1][j] + M[i + 1][j];
            return 0;
        }""")
        forms = [access_form(a, ctx) for a in accesses]
        writes = [f for f in forms if f.is_write]
        reads = [f for f in forms if not f.is_write]
        assert any(conflicts_across_iterations(r, w, ctx)
                   for r in reads for w in writes)

    def test_transposed_write_conflicts(self):
        ctx, accesses = self._context("""
        double M[8][8];
        int main(void) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++)
                    M[j][i] = M[i][j];
            return 0;
        }""")
        forms = [access_form(a, ctx) for a in accesses]
        writes = [f for f in forms if f.is_write]
        reads = [f for f in forms if not f.is_write]
        assert any(conflicts_across_iterations(r, w, ctx)
                   for r in reads for w in writes)

    def test_unknown_subscript_is_conservative(self):
        ctx, accesses = self._context("""
        double M[64];
        long idx[8];
        int main(void) {
            for (int i = 0; i < 8; i++)
                M[idx[i]] = 1.0;
            return 0;
        }""")
        forms = [access_form(a, ctx) for a in accesses if
                 isinstance(a, Store)]
        assert conflicts_across_iterations(forms[0], forms[0], ctx)
