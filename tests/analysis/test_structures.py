"""Tests for CFG orderings, dominators, loops, liveness, call graph."""

import pytest

from repro.analysis import (CallGraph, DominatorTree, Liveness, find_loops,
                            loop_preheader, predecessor_map,
                            recognize_counted_loop, reverse_postorder)
from repro.frontend import compile_minic
from repro.ir import Constant


DIAMOND = """
int main(void) {
    long x = 0;
    if (x < 1) { x = 2; } else { x = 3; }
    return (int) x;
}
"""


class TestCfg:
    def test_rpo_starts_at_entry(self):
        fn = compile_minic(DIAMOND).get_function("main")
        rpo = reverse_postorder(fn)
        assert rpo[0] is fn.entry_block
        assert set(rpo) == set(fn.blocks)

    def test_predecessors(self):
        fn = compile_minic(DIAMOND).get_function("main")
        preds = predecessor_map(fn)
        end = fn.block_by_name("if.end")
        assert {b.name for b in preds[end]} == {"if.then", "if.else"}


class TestDominators:
    def test_diamond(self):
        fn = compile_minic(DIAMOND).get_function("main")
        tree = DominatorTree(fn)
        entry = fn.entry_block
        then = fn.block_by_name("if.then")
        other = fn.block_by_name("if.else")
        end = fn.block_by_name("if.end")
        assert tree.dominates(entry, end)
        assert not tree.dominates(then, end)
        assert tree.immediate_dominator(end).name == "body"

    def test_loop_header_dominates_body(self):
        source = """
        int main(void) {
            for (int i = 0; i < 4; i++) { }
            return 0;
        }"""
        fn = compile_minic(source).get_function("main")
        tree = DominatorTree(fn)
        head = fn.block_by_name("for.head")
        body = fn.block_by_name("for.body")
        assert tree.dominates(head, body)
        assert not tree.dominates(body, head)


class TestLoops:
    def test_nesting(self):
        source = """
        int main(void) {
            for (int i = 0; i < 4; i++)
                for (int j = 0; j < 4; j++)
                    while (j < 2) j++;
            return 0;
        }"""
        fn = compile_minic(source).get_function("main")
        loops = find_loops(fn)
        assert len(loops) == 3
        assert [l.depth for l in loops] == [1, 2, 3]
        assert loops[1].parent is loops[0]
        assert loops[2] in loops[1].children

    def test_counted_loop_recognition(self):
        source = """
        int main(void) {
            long total = 0;
            for (int i = 2; i < 19; i += 3) total += i;
            return (int) total;
        }"""
        fn = compile_minic(source).get_function("main")
        counted = recognize_counted_loop(fn, find_loops(fn)[0])
        assert counted is not None
        assert isinstance(counted.start, Constant) and \
            counted.start.value == 2
        assert isinstance(counted.end, Constant) and counted.end.value == 19
        assert counted.step == 3
        assert counted.pred == "lt"

    def test_variable_bound_recognized_with_computation(self):
        source = """
        long work(long n) {
            long total = 0;
            for (int i = 0; i < n; i++) total += i;
            return total;
        }
        int main(void) { return (int) work(5); }"""
        fn = compile_minic(source).get_function("work")
        counted = recognize_counted_loop(fn, find_loops(fn)[0])
        assert counted is not None
        assert counted.end_computation  # the 'load n' in the header

    def test_while_loop_with_complex_exit_not_counted(self):
        source = """
        int main(void) {
            long i = 0;
            while (1) {
                i++;
                if (i > 5) break;
            }
            return (int) i;
        }"""
        fn = compile_minic(source).get_function("main")
        loops = find_loops(fn)
        assert loops
        assert recognize_counted_loop(fn, loops[0]) is None

    def test_modified_ivar_in_body_not_counted(self):
        source = """
        int main(void) {
            for (int i = 0; i < 10; i++) { i = i + 1; }
            return 0;
        }"""
        fn = compile_minic(source).get_function("main")
        assert recognize_counted_loop(fn, find_loops(fn)[0]) is None

    def test_preheader_detection(self):
        source = "int main(void) { for (int i = 0; i < 3; i++); return 0; }"
        fn = compile_minic(source).get_function("main")
        loop = find_loops(fn)[0]
        preheader = loop_preheader(loop, predecessor_map(fn))
        assert preheader is not None
        assert loop.header in preheader.successors


class TestLiveness:
    def test_register_live_across_blocks(self):
        source = """
        long f(long a, long b) {
            long c = a * b;
            if (c > 10) return c;
            return a;
        }
        int main(void) { return (int) f(3, 4); }"""
        fn = compile_minic(source).get_function("f")
        liveness = Liveness(fn)
        body = fn.block_by_name("body")
        # Argument registers are spilled in the body block, so they are
        # live into it (and through the entry block).
        assert fn.args[0] in liveness.use[body]
        assert fn.args[0] in liveness.live_out[fn.entry_block]

    def test_live_into_region(self):
        source = """
        int main(void) {
            long a = 5;
            long total = 0;
            for (int i = 0; i < 4; i++) total += a;
            return (int) total;
        }"""
        fn = compile_minic(source).get_function("main")
        liveness = Liveness(fn)
        loop = find_loops(fn)[0]
        live_in = liveness.live_into_blocks(loop.blocks)
        # The loop reads the allocas of a/total/i: all defined outside.
        names = {getattr(v, "name", "") for v in live_in}
        assert any("a.addr" in n for n in names)


class TestCallGraph:
    def test_edges_and_recursion(self):
        source = """
        long leaf(long x) { return x + 1; }
        long middle(long x) { return leaf(x) * 2; }
        long rec(long x) { if (x < 1) return 0; return rec(x - 1); }
        long a(long x) { return b(x); }
        long b(long x) { if (x > 0) return a(x - 1); return 0; }
        int main(void) { return (int) (middle(1) + rec(3) + a(2)); }
        """
        module = compile_minic(source)
        graph = CallGraph(module)
        main = module.get_function("main")
        middle = module.get_function("middle")
        leaf = module.get_function("leaf")
        assert middle in graph.callees[main]
        assert leaf in graph.callees[middle]
        assert graph.is_recursive(module.get_function("rec"))
        assert graph.is_recursive(module.get_function("a"))
        assert graph.is_recursive(module.get_function("b"))
        assert not graph.is_recursive(leaf)
        assert not graph.is_recursive(main)

    def test_bottom_up_order(self):
        source = """
        long leaf(long x) { return x; }
        long mid(long x) { return leaf(x); }
        int main(void) { return (int) mid(1); }
        """
        module = compile_minic(source)
        graph = CallGraph(module)
        order = graph.bottom_up()
        names = [fn.name for fn in order]
        assert names.index("leaf") < names.index("mid") < \
            names.index("main")

    def test_call_sites(self):
        source = """
        long f(long x) { return x; }
        int main(void) { return (int) (f(1) + f(2)); }
        """
        module = compile_minic(source)
        graph = CallGraph(module)
        assert len(graph.call_sites_of(module.get_function("f"))) == 2
