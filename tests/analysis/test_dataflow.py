"""Worklist dataflow solver tests (forward, backward, convergence)."""

import pytest

from repro.analysis.dataflow import DataflowProblem, solve
from repro.ir import (Branch, CondBranch, Constant, FunctionType, IRBuilder,
                      Module, Return, I1, I32, I64, VOID)
from repro.ir.instructions import Alloca, Call


def _void_fn(name="f"):
    module = Module("dataflow-test")
    fn = module.add_function(name, FunctionType(VOID, []))
    return module, fn


class MustAllocas(DataflowProblem):
    """Forward must-analysis: alloca names defined on *every* path."""

    direction = "forward"

    def boundary_state(self, fn):
        return frozenset()

    def initial_state(self, fn):
        return frozenset()

    def join(self, states):
        result = states[0]
        for state in states[1:]:
            result = result & state
        return result

    def transfer_instruction(self, inst, state):
        if isinstance(inst, Alloca):
            return state | {inst.name}
        return state


class CalledBelow(DataflowProblem):
    """Backward may-analysis: callees invoked on *some* path to exit."""

    direction = "backward"

    def boundary_state(self, fn):
        return frozenset()

    def initial_state(self, fn):
        return frozenset()

    def join(self, states):
        result = states[0]
        for state in states[1:]:
            result = result | state
        return result

    def transfer_instruction(self, inst, state):
        if isinstance(inst, Call):
            return state | {inst.callee.name}
        return state


class TestForward:
    def test_straight_line(self):
        _, fn = _void_fn()
        builder = IRBuilder(fn.new_block("entry"))
        a = builder.alloca(I64, name="a")
        builder.ret()
        result = solve(fn, MustAllocas())
        assert result.input_state(fn.entry_block) == frozenset()
        assert result.output_state(fn.entry_block) == {"a"}
        assert a.name == "a"

    def test_diamond_joins_with_intersection(self):
        _, fn = _void_fn()
        entry = fn.new_block("entry")
        left = fn.new_block("left")
        right = fn.new_block("right")
        merge = fn.new_block("merge")
        b = IRBuilder(entry)
        b.alloca(I64, name="common")
        b.cbr(Constant(I1, 1), left, right)
        bl = IRBuilder(left)
        bl.alloca(I64, name="only_left")
        bl.br(merge)
        IRBuilder(right).br(merge)
        IRBuilder(merge).ret()
        result = solve(fn, MustAllocas())
        # Only the pre-branch alloca survives the merge intersection.
        assert result.input_state(merge) == {"common"}

    def test_loop_converges_to_fixpoint(self):
        _, fn = _void_fn()
        entry = fn.new_block("entry")
        header = fn.new_block("header")
        body = fn.new_block("body")
        exit_block = fn.new_block("exit")
        be = IRBuilder(entry)
        be.alloca(I64, name="pre")
        be.br(header)
        IRBuilder(header).cbr(Constant(I1, 1), body, exit_block)
        bb = IRBuilder(body)
        bb.alloca(I64, name="in_loop")
        bb.br(header)
        IRBuilder(exit_block).ret()
        result = solve(fn, MustAllocas())
        # The header joins entry (no in_loop) with the back edge
        # (in_loop defined): only the preheader def is guaranteed.
        assert result.input_state(header) == {"pre"}
        assert result.input_state(exit_block) == {"pre"}
        assert result.input_state(body) == {"pre"}

    def test_unreachable_blocks_are_skipped(self):
        _, fn = _void_fn()
        entry = fn.new_block("entry")
        dead = fn.new_block("dead")
        IRBuilder(entry).ret()
        IRBuilder(dead).ret()
        result = solve(fn, MustAllocas())
        assert entry in result.blocks
        assert dead not in result.blocks

    def test_instruction_states_replay(self):
        _, fn = _void_fn()
        builder = IRBuilder(fn.new_block("entry"))
        first = builder.alloca(I64, name="first")
        second = builder.alloca(I64, name="second")
        builder.ret()
        result = solve(fn, MustAllocas())
        states = dict(
            (inst, state)
            for inst, state in result.instruction_states(fn.entry_block))
        assert states[first] == frozenset()
        assert states[second] == {"first"}


class TestBackward:
    def test_branch_callees_union_at_split(self):
        module, fn = _void_fn()
        helper_f = module.declare_function("f", FunctionType(VOID, []))
        helper_g = module.declare_function("g", FunctionType(VOID, []))
        entry = fn.new_block("entry")
        left = fn.new_block("left")
        right = fn.new_block("right")
        IRBuilder(entry).cbr(Constant(I1, 1), left, right)
        bl = IRBuilder(left)
        bl.call(helper_f, [])
        bl.ret()
        br = IRBuilder(right)
        br.call(helper_g, [])
        br.ret()
        result = solve(fn, CalledBelow())
        # Backward: the state entering the entry block (in dataflow
        # order, i.e. at its bottom) sees both arms.
        assert result.input_state(entry) == {"f", "g"}
        assert result.output_state(left) == {"f"}
        assert result.output_state(right) == {"g"}


class TestConvergenceGuard:
    def test_non_monotone_transfer_is_diagnosed(self):
        class Diverging(DataflowProblem):
            direction = "forward"

            def boundary_state(self, fn):
                return 0

            def initial_state(self, fn):
                return 0

            def join(self, states):
                return max(states)

            def transfer_instruction(self, inst, state):
                return state + 1  # strictly increasing: never stable

        _, fn = _void_fn()
        entry = fn.new_block("entry")
        loop = fn.new_block("loop")
        IRBuilder(entry).br(loop)
        lb = IRBuilder(loop)
        lb.alloca(I64)
        lb.br(loop)
        with pytest.raises(RuntimeError, match="converge"):
            solve(fn, Diverging())
