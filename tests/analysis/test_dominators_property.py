"""Property tests: dominator trees vs. a brute-force path oracle.

A block ``d`` dominates ``b`` iff every path entry -> b passes through
``d`` -- equivalently, iff ``b`` is unreachable from the entry once
``d`` is deleted.  Dually, ``p`` postdominates ``b`` iff every path
b -> exit passes through ``p``.  Both are checked directly against
random small CFGs built from real IR blocks.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.dominators import DominatorTree, PostDominatorTree
from repro.ir import (Branch, CondBranch, Constant, FunctionType, IRBuilder,
                      Module, Return, I1, VOID)

_MAX_BLOCKS = 7


@st.composite
def cfg_shapes(draw):
    """A random CFG shape: per-block terminator descriptions."""
    n = draw(st.integers(min_value=1, max_value=_MAX_BLOCKS))
    shape = []
    for _ in range(n):
        kind = draw(st.sampled_from(("ret", "br", "cbr")))
        if kind == "ret":
            shape.append(("ret",))
        elif kind == "br":
            shape.append(("br", draw(st.integers(0, n - 1))))
        else:
            shape.append(("cbr", draw(st.integers(0, n - 1)),
                          draw(st.integers(0, n - 1))))
    return shape


def build_function(shape):
    module = Module("domtest")
    fn = module.add_function("f", FunctionType(VOID, []))
    blocks = [fn.new_block(f"b{i}") for i in range(len(shape))]
    for block, terminator in zip(blocks, shape):
        builder = IRBuilder(block)
        if terminator[0] == "ret":
            builder.ret()
        elif terminator[0] == "br":
            builder.br(blocks[terminator[1]])
        else:
            builder.cbr(Constant(I1, 1), blocks[terminator[1]],
                        blocks[terminator[2]])
    return fn, blocks


def reachable_from(start, banned=None):
    """Blocks reachable from ``start`` without entering ``banned``."""
    if banned is not None and start is banned:
        return set()
    seen = {start}
    work = [start]
    while work:
        block = work.pop()
        for succ in block.successors:
            if succ is banned or succ in seen:
                continue
            seen.add(succ)
            work.append(succ)
    return seen


def oracle_dominates(entry, d, b):
    if b is d:
        return True
    return b not in reachable_from(entry, banned=d)


def oracle_postdominates(exits, p, b):
    if b is p:
        return True
    survivors = reachable_from(b, banned=p)
    return not any(e in survivors for e in exits)


@settings(max_examples=80, deadline=None)
@given(cfg_shapes())
def test_dominators_match_oracle(shape):
    fn, blocks = build_function(shape)
    entry = fn.entry_block
    reachable = reachable_from(entry)
    tree = DominatorTree(fn)
    for d in reachable:
        for b in reachable:
            assert tree.dominates(d, b) == oracle_dominates(entry, d, b), \
                f"dom({d.name}, {b.name}) diverges for shape {shape}"


@settings(max_examples=80, deadline=None)
@given(cfg_shapes())
def test_postdominators_match_oracle(shape):
    fn, blocks = build_function(shape)
    entry = fn.entry_block
    reachable = reachable_from(entry)
    exits = {b for b in reachable if not b.successors}
    # Postdominance is only defined for blocks that can reach an exit
    # (infinite loops have no path to postdominate over).
    candidates = [b for b in reachable
                  if any(e in reachable_from(b) for e in exits)]
    tree = PostDominatorTree(fn)
    for p in candidates:
        for b in candidates:
            assert tree.postdominates(p, b) == \
                oracle_postdominates(exits, p, b), \
                f"postdom({p.name}, {b.name}) diverges for shape {shape}"


def test_entry_dominates_everything():
    fn, blocks = build_function([("cbr", 1, 2), ("br", 3), ("br", 3),
                                 ("ret",)])
    tree = DominatorTree(fn)
    for block in blocks:
        assert tree.dominates(fn.entry_block, block)
    assert not tree.dominates(blocks[1], blocks[3])  # join kills dom


def test_single_exit_postdominates_everything():
    fn, blocks = build_function([("cbr", 1, 2), ("br", 3), ("br", 3),
                                 ("ret",)])
    tree = PostDominatorTree(fn)
    for block in blocks:
        assert tree.postdominates(blocks[3], block)
    assert not tree.postdominates(blocks[1], blocks[0])
