"""Property test: the conflict decision is conservative.

``_conflict_exists`` answers "may two iterations touch overlapping
bytes?".  It must never answer *no* when a brute-force enumeration of
the small parameter space finds a collision (soundness); answering
*yes* unnecessarily only costs parallelism.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.affine import _conflict_exists, _lattice_hits


def brute_force(coeff, win_lo, win_hi, lo, hi, base, lattice,
                max_delta):
    """Ground truth by enumeration over a small space."""
    deltas = range(-max_delta, max_delta + 1)
    if lattice == 0:
        r_values = [base] if lo <= base <= hi else []
    else:
        r_values = [r for r in range(lo, hi + 1)
                    if (r - base) % lattice == 0]
    for delta in deltas:
        if delta == 0:
            continue
        for r in r_values:
            if win_lo <= coeff * delta + r <= win_hi:
                return True
    return False


small = st.integers(-40, 40)


@settings(max_examples=300, deadline=None)
@given(coeff=st.integers(-16, 16), win=st.integers(0, 8),
       lo=small, span=st.integers(0, 30), base=small,
       lattice=st.integers(0, 12), max_delta=st.integers(1, 6))
def test_conflict_decision_is_sound(coeff, win, lo, span, base, lattice,
                                    max_delta):
    hi = lo + span
    win_lo, win_hi = -win, win
    decided = _conflict_exists(coeff, win_lo, win_hi, lo, hi, base,
                               lattice, max_delta)
    truth = brute_force(coeff, win_lo, win_hi, lo, hi, base, lattice,
                        max_delta)
    if truth:
        assert decided, (
            "unsound: brute force finds a collision the solver missed",
            coeff, win_lo, win_hi, lo, hi, base, lattice, max_delta)


@settings(max_examples=300, deadline=None)
@given(coeff=st.integers(-16, 16), win=st.integers(0, 8),
       lo=small, span=st.integers(0, 30), base=small,
       lattice=st.integers(0, 12), max_delta=st.integers(1, 6))
def test_conflict_decision_is_exact_on_lattice_form(coeff, win, lo, span,
                                                    base, lattice,
                                                    max_delta):
    """On the exact problem it models (R drawn freely from the lattice
    inside [lo, hi]), the solver is not merely sound but precise."""
    hi = lo + span
    decided = _conflict_exists(coeff, -win, win, lo, hi, base, lattice,
                               max_delta)
    truth = brute_force(coeff, -win, win, lo, hi, base, lattice,
                        max_delta)
    assert decided == truth


@settings(max_examples=200, deadline=None)
@given(base=small, lattice=st.integers(0, 12), lo=small,
       span=st.integers(0, 25))
def test_lattice_hits_matches_enumeration(base, lattice, lo, span):
    hi = lo + span
    if lattice == 0:
        truth = lo <= base <= hi
    else:
        truth = any((v - base) % lattice == 0 for v in range(lo, hi + 1))
    assert _lattice_hits(base, lattice, lo, hi) == truth
