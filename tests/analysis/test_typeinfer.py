"""Use-based pointer type inference tests (paper section 4)."""

import pytest

from repro.errors import CgcmUnsupportedError
from repro.analysis import infer_pointer_depths
from repro.frontend import compile_minic


def kernel_depths(source, kernel_name="k"):
    module = compile_minic(source)
    kernel = module.get_function(kernel_name)
    return module, kernel, infer_pointer_depths(kernel, module)


class TestDepthInference:
    def test_scalar_param_is_not_pointer(self):
        _, kernel, depths = kernel_depths("""
        __global__ void k(long tid, double x, long n) { double y = x; }
        """)
        live = depths.live_in_depths()
        assert live[kernel.args[1]] == 0
        assert live[kernel.args[2]] == 0

    def test_dereferenced_param_is_pointer(self):
        _, kernel, depths = kernel_depths("""
        __global__ void k(long tid, double *a) { a[tid] = 1.0; }
        """)
        assert depths.live_in_depths()[kernel.args[1]] == 1

    def test_pointer_through_arithmetic(self):
        """Types flow through additions and casts (field-insensitive)."""
        _, kernel, depths = kernel_depths("""
        __global__ void k(long tid, long a) {
            double *p = (double *) (a + tid * 8);
            *p = 0.0;
        }
        """)
        # 'a' is declared long but used as a pointer: inference says 1.
        assert depths.live_in_depths()[kernel.args[1]] == 1

    def test_double_pointer(self):
        _, kernel, depths = kernel_depths("""
        __global__ void k(long tid, char **rows) {
            char *row = rows[tid];
            row[0] = 1;
        }
        """)
        assert depths.live_in_depths()[kernel.args[1]] == 2

    def test_unused_pointer_stays_scalar(self):
        """Usage-based: an undereferenced pointer param is not mapped."""
        _, kernel, depths = kernel_depths("""
        __global__ void k(long tid, double *never_used) { }
        """)
        assert depths.live_in_depths()[kernel.args[1]] == 0

    def test_global_used_by_kernel_is_live_in(self):
        module, kernel, depths = kernel_depths("""
        double table[8];
        __global__ void k(long tid) { table[tid] = 1.0; }
        """)
        live = depths.live_in_depths()
        globals_seen = {v.name: d for v, d in live.items()
                        if hasattr(v, "value_type")}
        assert globals_seen.get("table") == 1

    def test_interprocedural_through_device_function(self):
        _, kernel, depths = kernel_depths("""
        void helper(double *p, long i) { p[i] = 2.0; }
        __global__ void k(long tid, double *a) { helper(a, tid); }
        """)
        assert depths.live_in_depths()[kernel.args[1]] == 1


class TestRestrictions:
    def test_triple_indirection_flagged(self):
        _, _, depths = kernel_depths("""
        __global__ void k(long tid, char ***deep) {
            char **mid = deep[tid];
            char *leaf = mid[0];
            leaf[0] = 1;
        }
        """)
        problems = depths.check_restrictions()
        assert any("indirection depth 3" in p for p in problems)
        with pytest.raises(CgcmUnsupportedError):
            depths.require_supported()

    def test_pointer_store_flagged(self):
        _, _, depths = kernel_depths("""
        __global__ void k(long tid, char **slots, char *value) {
            slots[tid] = value;
        }
        """)
        problems = depths.check_restrictions()
        assert any("stores a pointer" in p for p in problems)

    def test_clean_kernel_passes(self):
        _, _, depths = kernel_depths("""
        __global__ void k(long tid, double *a, double *b) {
            a[tid] = b[tid] * 2.0;
        }
        """)
        assert depths.check_restrictions() == []
        depths.require_supported()
