"""Happens-before analysis unit tests: graph and pending-token views.

The explicit :func:`build_hb_graph` relation is the reference
semantics (per-stream FIFO, event edges, barriers, host program
order); the pending-token dataflow behind the ``hbcheck`` auditor must
agree with it on every verdict both can express.
"""

from repro.analysis.happens_before import (HBNode, async_op_kind,
                                           build_hb_graph)
from repro.frontend import compile_minic
from repro.ir.instructions import Call, LaunchKernel, Load

_KERNEL = ("__global__ void scale(long tid) "
           "{ A[tid] = A[tid] * 2.0; }")


def _main(source):
    module = compile_minic(source)
    return module.functions["main"]


def _calls(fn, name):
    return [inst for inst in fn.instructions()
            if isinstance(inst, Call) and inst.callee.name == name]


def _loads(fn):
    return [inst for inst in fn.instructions() if isinstance(inst, Load)]


class TestAsyncOpKind:
    def test_registry_derived_classification(self):
        assert async_op_kind("mapAsync") == "h2d"
        assert async_op_kind("mapArrayAsync") == "h2d"
        assert async_op_kind("unmapAsync") == "d2h"
        assert async_op_kind("unmapArrayAsync") == "d2h"
        assert async_op_kind("cgcmSync") == "sync"

    def test_sync_twins_and_non_runtime_are_not_stream_ops(self):
        assert async_op_kind("map") is None
        assert async_op_kind("unmap") is None
        assert async_op_kind("release") is None
        assert async_op_kind("print_f64") is None


class TestHBGraph:
    def _well_ordered(self):
        return _main(f"""
double A[8];
{_KERNEL}
int main(void) {{
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    cgcmSync();
    release((char *) A);
    print_f64(A[0]);
    return 0;
}}
""")

    def test_issue_order_follows_program_order(self):
        fn = self._well_ordered()
        graph = build_hb_graph(fn)
        (h2d,) = _calls(fn, "mapAsync")
        (d2h,) = _calls(fn, "unmapAsync")
        assert graph.issue_before(h2d, d2h)
        assert not graph.issue_before(d2h, h2d)

    def test_launch_fences_the_upload(self):
        fn = self._well_ordered()
        graph = build_hb_graph(fn)
        (h2d,) = _calls(fn, "mapAsync")
        (launch,) = [i for i in fn.instructions()
                     if isinstance(i, LaunchKernel)]
        assert graph.ordered(HBNode(h2d, "done"), HBNode(launch, "done"))

    def test_writeback_waits_on_the_launch(self):
        fn = self._well_ordered()
        graph = build_hb_graph(fn)
        (d2h,) = _calls(fn, "unmapAsync")
        (launch,) = [i for i in fn.instructions()
                     if isinstance(i, LaunchKernel)]
        assert graph.ordered(HBNode(launch, "done"), HBNode(d2h, "done"))

    def test_barrier_orders_the_writeback_before_the_read(self):
        fn = self._well_ordered()
        graph = build_hb_graph(fn)
        (d2h,) = _calls(fn, "unmapAsync")
        (sync,) = _calls(fn, "cgcmSync")
        read = _loads(fn)[-1]  # the A[0] read after the barrier
        assert graph.ordered(HBNode(d2h, "done"), HBNode(sync, "issue"))
        assert graph.ordered(HBNode(d2h, "done"), HBNode(read, "issue"))

    def test_unsynced_read_has_no_ordering_proof(self):
        fn = _main(f"""
double A[8];
{_KERNEL}
int main(void) {{
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    print_f64(A[0]);
    cgcmSync();
    release((char *) A);
    return 0;
}}
""")
        graph = build_hb_graph(fn)
        (d2h,) = _calls(fn, "unmapAsync")
        read = _loads(fn)[0]
        assert not graph.ordered(HBNode(d2h, "done"),
                                 HBNode(read, "issue"))

    def test_per_stream_fifo(self):
        fn = _main("""
double A[8];
double B[8];
int main(void) {
    mapAsync((char *) A);
    mapAsync((char *) B);
    cgcmSync();
    release((char *) A);
    release((char *) B);
    return 0;
}
""")
        graph = build_hb_graph(fn)
        first, second = _calls(fn, "mapAsync")
        assert graph.ordered(HBNode(first, "done"),
                             HBNode(second, "done"))
        assert not graph.ordered(HBNode(second, "done"),
                                 HBNode(first, "done"))

    def test_race_without_launch_has_no_cross_stream_proof(self):
        fn = _main("""
double A[8];
int main(void) {
    mapAsync((char *) A);
    unmapAsync((char *) A);
    cgcmSync();
    release((char *) A);
    return 0;
}
""")
        graph = build_hb_graph(fn)
        (h2d,) = _calls(fn, "mapAsync")
        (d2h,) = _calls(fn, "unmapAsync")
        # No launch separates the streams: neither completion is
        # provably ordered against the other.
        assert not graph.ordered(HBNode(h2d, "done"), HBNode(d2h, "done"))
        assert not graph.ordered(HBNode(d2h, "done"), HBNode(h2d, "done"))
