"""ModRefAnalysis external-call classification and recursion handling."""

from repro.analysis import ModRefAnalysis
from repro.frontend import compile_minic
from repro.ir.instructions import Call


def _calls(fn, name):
    return [inst for inst in fn.instructions()
            if isinstance(inst, Call) and inst.callee.name == name]


def _compile(source):
    module = compile_minic(source)
    main = next(f for f in module.defined_functions()
                if f.name == "main")
    return module, main


class TestMemoryExternals:
    SOURCE = """
double A[8];
double B[8];
int main(void) {
    memset((char *) A, 0, 8 * sizeof(double));
    memcpy((char *) B, (char *) A, 8 * sizeof(double));
    return 0;
}
"""

    def test_memset_touches_only_its_argument(self):
        module, main = _compile(self.SOURCE)
        modref = ModRefAnalysis()
        memset_call = _calls(main, "memset")[0]
        a, b = module.get_global("A"), module.get_global("B")
        assert modref.call_mod_ref(memset_call, a) == (True, True)
        assert modref.call_mod_ref(memset_call, b) == (False, False)

    def test_memcpy_touches_both_pointer_arguments(self):
        module, main = _compile(self.SOURCE)
        modref = ModRefAnalysis()
        memcpy_call = _calls(main, "memcpy")[0]
        for name in ("A", "B"):
            root = module.get_global(name)
            assert modref.call_mod_ref(memcpy_call, root) == (True, True)

    def test_free_and_realloc_touch_their_block(self):
        module, main = _compile("""
double A[8];
int main(void) {
    double *p = (double *) malloc(4 * sizeof(double));
    p = (double *) realloc((char *) p, 8 * sizeof(double));
    free((char *) p);
    return 0;
}
""")
        modref = ModRefAnalysis()
        malloc_call = _calls(main, "malloc")[0]
        realloc_call = _calls(main, "realloc")[0]
        free_call = _calls(main, "free")[0]
        unrelated = module.get_global("A")
        # The heap block is identified by its allocating call.
        assert modref.call_mod_ref(realloc_call, malloc_call) == (True, True)
        assert modref.call_mod_ref(free_call, malloc_call) == (True, True)
        assert modref.call_mod_ref(realloc_call, unrelated) == (False, False)
        assert modref.call_mod_ref(free_call, unrelated) == (False, False)

    def test_allocators_are_pure_for_existing_memory(self):
        module, main = _compile("""
double A[8];
int main(void) {
    double *p = (double *) malloc(8 * sizeof(double));
    free((char *) p);
    return 0;
}
""")
        modref = ModRefAnalysis()
        malloc_call = _calls(main, "malloc")[0]
        root = module.get_global("A")
        assert modref.call_mod_ref(malloc_call, root) == (False, False)

    def test_pure_math_externals_are_clean(self):
        module, main = _compile("""
double A[8];
int main(void) {
    A[0] = sqrt(2.0);
    return 0;
}
""")
        modref = ModRefAnalysis()
        sqrt_call = _calls(main, "sqrt")[0]
        root = module.get_global("A")
        assert modref.call_mod_ref(sqrt_call, root) == (False, False)


class TestRecursion:
    def test_self_recursion_is_conservative(self):
        """A recursive callee hits the in-progress guard and reports
        (mod, ref) = (True, True) rather than looping forever."""
        module, main = _compile("""
double B[4];
long rec(long n) {
    if (n > 0) { return rec(n - 1); }
    return 0;
}
int main(void) {
    long x = rec(3);
    return 0;
}
""")
        modref = ModRefAnalysis()
        rec_call = _calls(main, "rec")[0]
        root = module.get_global("B")
        assert modref.call_mod_ref(rec_call, root) == (True, True)

    def test_non_recursive_helper_is_precise(self):
        """Same shape without the back edge: the summary sees the
        helper never touches B."""
        module, main = _compile("""
double B[4];
long helper(long n) {
    return n + 1;
}
int main(void) {
    long x = helper(3);
    return 0;
}
""")
        modref = ModRefAnalysis()
        call = _calls(main, "helper")[0]
        root = module.get_global("B")
        assert modref.call_mod_ref(call, root) == (False, False)
