"""Printer/parser round-trip and error-handling tests."""

import pytest

from repro.errors import IRParseError
from repro.ir import (module_to_str, parse_module, verify_module, Module,
                      FunctionType, IRBuilder, ArrayType, GlobalRef, VOID,
                      I8, I64, F64, pointer_to)

EXAMPLE = """\
module "demo"

struct %pair { i64 first, f64 second }

global @A : [4 x f64] = { 1.0, 2.0, 3.0, 4.0 }

global @msg : [6 x i8] = s"hello" readonly

global @refs : [2 x ptr<i8>] = { @msg, @msg+1 }

declare @sqrt : f64 (f64)

kernel @k(%tid: i64, %a: ptr<f64>) -> void {
entry:
  %p = gep ptr<f64> %a, i64 %tid
  %v = load ptr<f64> %p
  %r = call @sqrt(f64 %v)
  store f64 %r, ptr<f64> %p
  ret void
}

func @main() -> i64 {
entry:
  %i = alloca i64, i64 1
  store i64 0, ptr<i64> %i
  br label %head
head:
  %iv = load ptr<i64> %i
  %c = cmp lt i64 %iv, i64 4
  cbr i1 %c, label %body, label %exit
body:
  %base = gep ptr<[4 x f64]> @A, i64 0, i64 0
  launch @k[i64 4](ptr<f64> %base)
  %n = add i64 %iv, i64 1
  store i64 %n, ptr<i64> %i
  br label %head
exit:
  %sel = select i1 %c, i64 1, i64 0
  %w = cast sitofp i64 %sel to f64
  %t = cast fptosi f64 %w to i64
  ret i64 %t
}
"""


class TestRoundTrip:
    def test_parse_then_print_is_stable(self):
        module = parse_module(EXAMPLE)
        verify_module(module)
        printed = module_to_str(module)
        reparsed = parse_module(printed)
        verify_module(reparsed)
        assert module_to_str(reparsed) == printed

    def test_programmatic_build_round_trips(self):
        module = Module("built")
        module.add_global("g", ArrayType(I8, 4), b"ab")
        fn = module.add_function("main", FunctionType(I64, []))
        builder = IRBuilder(fn.new_block("entry"))
        slot = builder.alloca(F64)
        builder.store(2.5, slot)
        value = builder.load(slot)
        as_int = builder.cast("fptosi", value, I64)
        builder.ret(as_int)
        verify_module(module)
        text = module_to_str(module)
        again = parse_module(text)
        assert module_to_str(again) == text

    def test_struct_and_globalref_round_trip(self):
        module = parse_module(EXAMPLE)
        refs = module.get_global("refs")
        assert refs.initializer == [GlobalRef("msg"), GlobalRef("msg", 1)]
        pair = module.structs["pair"]
        assert pair.fields[0][0] == "first"

    def test_string_escapes_round_trip(self):
        module = Module("esc")
        module.add_global("s", ArrayType(I8, 5), "a\"\\\n")
        text = module_to_str(module)
        again = parse_module(text)
        assert again.get_global("s").initializer == "a\"\\\n"


class TestParserErrors:
    def test_undefined_register(self):
        source = """
        func @f() -> i64 {
        entry:
          ret i64 %nope
        }
        """
        with pytest.raises(IRParseError):
            parse_module(source)

    def test_unknown_block_label(self):
        source = """
        func @f() -> void {
        entry:
          br label %missing
        }
        """
        with pytest.raises(IRParseError):
            parse_module(source)

    def test_duplicate_block_label(self):
        source = """
        func @f() -> void {
        entry:
          ret void
        entry:
          ret void
        }
        """
        with pytest.raises(IRParseError):
            parse_module(source)

    def test_unknown_opcode(self):
        source = """
        func @f() -> void {
        entry:
          frobnicate i64 1
        }
        """
        with pytest.raises(IRParseError):
            parse_module(source)

    def test_bad_character(self):
        with pytest.raises(IRParseError):
            parse_module("func @f() -> void { entry: ret void } $")

    def test_error_carries_line_number(self):
        source = "module \"x\"\n\nglobal @g : [1 x i8] = ???"
        with pytest.raises(IRParseError) as err:
            parse_module(source)
        assert err.value.line >= 3
