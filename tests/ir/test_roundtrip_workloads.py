"""Golden round-trip tests over every paper workload.

For each of the 24 benchmarks, the frontend-produced module and the
fully CGCM-transformed module must survive ``parse(print(module))``
with a byte-identical re-print.  This pins the printer/parser pair to
the exact IR the rest of the pipeline emits, not just hand-written
examples.
"""

import pytest

from repro.core import CgcmCompiler, CgcmConfig, OptLevel
from repro.frontend import compile_minic
from repro.ir import module_to_str, parse_module, verify_module
from repro.workloads import get_workload, workload_names


def assert_roundtrip(module):
    printed = module_to_str(module)
    reparsed = parse_module(printed)
    verify_module(reparsed)
    assert module_to_str(reparsed) == printed


@pytest.mark.parametrize("name", workload_names())
def test_frontend_module_roundtrips(name):
    assert_roundtrip(compile_minic(get_workload(name).source))


@pytest.mark.parametrize("name", workload_names())
def test_transformed_module_roundtrips(name):
    compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED))
    report = compiler.compile_source(get_workload(name).source, name)
    assert_roundtrip(report.module)
