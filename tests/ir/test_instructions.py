"""Unit tests for IR instruction construction and invariants."""

import pytest

from repro.errors import IRError
from repro.ir import (Alloca, ArrayType, BasicBlock, BinaryOp, Branch, Cast,
                      Compare, CondBranch, Constant, GetElementPtr, Load,
                      Return, Select, Store, StructType, Unreachable, F64,
                      I1, I8, I64, pointer_to)


def const(type_, value):
    return Constant(type_, value)


class TestConstants:
    def test_int_wrapping_at_construction(self):
        assert Constant(I8, 300).value == 44
        assert Constant(I8, -1).value == -1

    def test_float_coercion(self):
        c = Constant(F64, 3)
        assert isinstance(c.value, float)

    def test_null_pointer_ref(self):
        assert Constant(pointer_to(I8), 0).ref == "null"

    def test_aggregate_constant_rejected(self):
        with pytest.raises(ValueError):
            Constant(ArrayType(I8, 4), 0)

    def test_equality(self):
        assert Constant(I64, 5) == Constant(I64, 5)
        assert Constant(I64, 5) != Constant(I8, 5)


class TestMemoryInstructions:
    def test_load_type_follows_pointee(self):
        ptr = Alloca(F64, const(I64, 1))
        assert Load(ptr).type == F64

    def test_load_from_non_pointer_rejected(self):
        with pytest.raises(IRError):
            Load(const(I64, 0))

    def test_store_is_void(self):
        ptr = Alloca(F64, const(I64, 1))
        store = Store(const(F64, 1.0), ptr)
        assert not store.produces_value

    def test_alloca_result_is_pointer(self):
        alloca = Alloca(ArrayType(F64, 4), const(I64, 1))
        assert alloca.type == pointer_to(ArrayType(F64, 4))


class TestGep:
    def test_flat_pointer_index(self):
        ptr = Alloca(F64, const(I64, 8))
        gep = GetElementPtr(ptr, [const(I64, 3)])
        assert gep.type == pointer_to(F64)

    def test_array_descent(self):
        base = Alloca(ArrayType(ArrayType(F64, 4), 2), const(I64, 1))
        gep = GetElementPtr(base, [const(I64, 0), const(I64, 1),
                                   const(I64, 2)])
        assert gep.type == pointer_to(F64)

    def test_struct_descent_requires_constant(self):
        struct = StructType("s", [("a", I64), ("b", F64)])
        base = Alloca(struct, const(I64, 1))
        gep = GetElementPtr(base, [const(I64, 0), const(I64, 1)])
        assert gep.type == pointer_to(F64)
        load = Load(GetElementPtr(base, [const(I64, 0)]))
        with pytest.raises(IRError):
            GetElementPtr(base, [const(I64, 0), load])

    def test_struct_index_out_of_range(self):
        struct = StructType("s", [("a", I64)])
        base = Alloca(struct, const(I64, 1))
        with pytest.raises(IRError):
            GetElementPtr(base, [const(I64, 0), const(I64, 5)])

    def test_empty_indices_rejected(self):
        ptr = Alloca(F64, const(I64, 1))
        with pytest.raises(IRError):
            GetElementPtr(ptr, [])


class TestBinaryAndCompare:
    def test_type_mismatch_rejected(self):
        with pytest.raises(IRError):
            BinaryOp("add", const(I64, 1), const(I8, 1))

    def test_int_only_op_on_floats_rejected(self):
        with pytest.raises(IRError):
            BinaryOp("xor", const(F64, 1.0), const(F64, 1.0))

    def test_unknown_op_rejected(self):
        with pytest.raises(IRError):
            BinaryOp("pow", const(I64, 1), const(I64, 2))

    def test_compare_produces_i1(self):
        cmp = Compare("lt", const(I64, 1), const(I64, 2))
        assert cmp.type == I1

    def test_unknown_predicate(self):
        with pytest.raises(IRError):
            Compare("ult", const(I64, 1), const(I64, 2))


class TestCasts:
    def test_valid_casts(self):
        Cast("sext", const(I8, 1), I64)
        Cast("trunc", const(I64, 1), I8)
        Cast("sitofp", const(I64, 1), F64)
        Cast("fptosi", const(F64, 1.0), I64)
        Cast("bitcast", const(pointer_to(I8), 0), pointer_to(F64))
        Cast("ptrtoint", const(pointer_to(I8), 0), I64)
        Cast("inttoptr", const(I64, 0), pointer_to(I8))

    def test_widening_trunc_rejected(self):
        with pytest.raises(IRError):
            Cast("trunc", const(I8, 1), I64)

    def test_bitcast_between_scalars_rejected(self):
        with pytest.raises(IRError):
            Cast("bitcast", const(I64, 1), F64)


class TestSelectAndTerminators:
    def test_select_requires_i1(self):
        with pytest.raises(IRError):
            Select(const(I64, 1), const(I64, 1), const(I64, 2))

    def test_select_arm_types_match(self):
        cond = Compare("eq", const(I64, 0), const(I64, 0))
        with pytest.raises(IRError):
            Select(cond, const(I64, 1), const(F64, 2.0))

    def test_terminator_flags(self):
        block = BasicBlock("b")
        assert Branch(block).is_terminator
        assert Return().is_terminator
        assert Unreachable().is_terminator
        assert not Load(Alloca(I64, const(I64, 1))).is_terminator

    def test_cond_branch_successors(self):
        t, f = BasicBlock("t"), BasicBlock("f")
        cond = Compare("eq", const(I64, 0), const(I64, 0))
        cbr = CondBranch(cond, t, f)
        assert cbr.successors == [t, f]
        cbr.replace_successor(t, f)
        assert cbr.successors == [f, f]


class TestBlockDiscipline:
    def test_append_after_terminator_rejected(self):
        block = BasicBlock("b")
        block.append(Return())
        with pytest.raises(IRError):
            block.append(Return())

    def test_insert_before_terminator(self):
        block = BasicBlock("b")
        block.append(Return())
        alloca = Alloca(I64, const(I64, 1))
        block.insert_before_terminator(alloca)
        assert block.instructions[0] is alloca
        assert block.terminator is block.instructions[-1]

    def test_replace_operand(self):
        a, b = const(I64, 1), const(I64, 2)
        add = BinaryOp("add", a, a)
        assert add.replace_operand(a, b) == 2
        assert add.operands == [b, b]
