"""Unit tests for the IR type system."""

import pytest

from repro.ir import (ArrayType, FloatType, FunctionType, IntType,
                      PointerType, StructType, VOID, I1, I8, I32, I64, F32,
                      F64, POINTER_SIZE, pointer_to)


class TestScalarTypes:
    def test_integer_sizes(self):
        assert I8.size == 1
        assert IntType(16).size == 2
        assert I32.size == 4
        assert I64.size == 8
        assert I1.size == 1

    def test_float_sizes(self):
        assert F32.size == 4
        assert F64.size == 8

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            IntType(7)
        with pytest.raises(ValueError):
            FloatType(16)

    def test_structural_equality(self):
        assert IntType(64) == I64
        assert IntType(64) is not I64
        assert FloatType(32) != FloatType(64)
        assert I32 != F32

    def test_hashable(self):
        assert len({IntType(64), I64, IntType(32)}) == 2

    def test_void_has_no_size(self):
        with pytest.raises(ValueError):
            _ = VOID.size

    def test_predicates(self):
        assert I64.is_integer and I64.is_scalar
        assert F64.is_float and F64.is_scalar
        assert not I64.is_float
        assert VOID.is_void


class TestIntWrapping:
    def test_wrap_positive_overflow(self):
        assert I8.wrap(200) == 200 - 256
        assert I8.wrap(127) == 127

    def test_wrap_negative(self):
        assert I8.wrap(-129) == 127
        assert I8.wrap(-1) == -1

    def test_wrap_i1(self):
        assert I1.wrap(3) == 1
        assert I1.wrap(2) == 0

    def test_min_max(self):
        assert I8.min_value == -128
        assert I8.max_value == 127
        assert I64.max_value == (1 << 63) - 1


class TestPointerTypes:
    def test_size(self):
        assert pointer_to(F64).size == POINTER_SIZE

    def test_equality_by_pointee(self):
        assert pointer_to(F64) == PointerType(F64)
        assert pointer_to(F64) != pointer_to(F32)

    def test_nested(self):
        double_ptr = pointer_to(pointer_to(I8))
        assert double_ptr.pointee == pointer_to(I8)
        assert str(double_ptr) == "ptr<ptr<i8>>"


class TestArrayTypes:
    def test_size(self):
        assert ArrayType(F64, 10).size == 80
        assert ArrayType(ArrayType(F32, 4), 3).size == 48

    def test_zero_length(self):
        assert ArrayType(I8, 0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(I8, -1)

    def test_str(self):
        assert str(ArrayType(ArrayType(F64, 4), 2)) == "[2 x [4 x f64]]"


class TestStructTypes:
    def test_layout_with_padding(self):
        struct = StructType("point", [("tag", I8), ("x", F64), ("y", F64)])
        assert struct.field_offset(0) == 0
        assert struct.field_offset(1) == 8  # padded to f64 alignment
        assert struct.field_offset(2) == 16
        assert struct.size == 24
        assert struct.align == 8

    def test_field_index(self):
        struct = StructType("p", [("x", I64), ("y", F64)])
        assert struct.field_index("y") == 1
        with pytest.raises(KeyError):
            struct.field_index("z")

    def test_empty_struct(self):
        assert StructType("e", []).size == 0


class TestFunctionTypes:
    def test_str(self):
        ftype = FunctionType(VOID, [I64, pointer_to(F64)])
        assert str(ftype) == "void (i64, ptr<f64>)"

    def test_variadic_str(self):
        assert str(FunctionType(I32, [I64], variadic=True)) == \
            "i32 (i64, ...)"

    def test_no_size(self):
        with pytest.raises(ValueError):
            _ = FunctionType(VOID, []).size
