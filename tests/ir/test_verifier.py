"""Verifier tests: each broken invariant is reported."""

import pytest

from repro.errors import IRError
from repro.ir import (Alloca, Branch, Constant, FunctionType, IRBuilder,
                      Load, Module, Return, Store, verify_module, VOID, F64,
                      I32, I64, pointer_to)


def fresh_module():
    module = Module("verifier-test")
    fn = module.add_function("main", FunctionType(I32, []))
    return module, fn


class TestBlockInvariants:
    def test_ok_module_passes(self):
        module, fn = fresh_module()
        builder = IRBuilder(fn.new_block("entry"))
        builder.ret(0)
        verify_module(module)

    def test_missing_terminator(self):
        module, fn = fresh_module()
        block = fn.new_block("entry")
        block.instructions.append(Alloca(I64, Constant(I64, 1)))
        block.instructions[-1].parent = block
        with pytest.raises(IRError, match="terminator"):
            verify_module(module)

    def test_empty_block(self):
        module, fn = fresh_module()
        fn.new_block("entry")
        with pytest.raises(IRError, match="empty"):
            verify_module(module)

    def test_function_without_blocks_is_declaration(self):
        module = Module("m")
        module.declare_function("ext", FunctionType(VOID, []))
        verify_module(module)  # declarations are fine


class TestValueInvariants:
    def test_use_of_foreign_register(self):
        module, fn = fresh_module()
        other = module.add_function("other", FunctionType(VOID, []))
        builder = IRBuilder(other.new_block("entry"))
        foreign = builder.alloca(I64)
        builder.ret()
        main_builder = IRBuilder(fn.new_block("entry"))
        load = Load(foreign)
        load.name = "bad"
        fn.entry_block.append(load)
        main_builder.ret(0)
        with pytest.raises(IRError, match="undefined register"):
            verify_module(module)

    def test_return_type_mismatch(self):
        module, fn = fresh_module()
        block = fn.new_block("entry")
        ret = Return(Constant(I64, 0))
        block.append(ret)
        with pytest.raises(IRError, match="returns"):
            verify_module(module)

    def test_void_function_returning_value(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(VOID, []))
        fn.new_block("entry").append(Return(Constant(I64, 0)))
        with pytest.raises(IRError, match="void"):
            verify_module(module)


class TestCallInvariants:
    def test_call_arity_checked(self):
        module = Module("m")
        callee = module.declare_function("sqrt", FunctionType(F64, [F64]))
        fn = module.add_function("main", FunctionType(I32, []))
        builder = IRBuilder(fn.new_block("entry"))
        builder.ret(0)
        from repro.ir import Call
        bad = Call(callee, [])
        fn.entry_block.insert(0, bad)
        with pytest.raises(IRError, match="args"):
            verify_module(module)

    def test_call_argument_type_checked(self):
        module = Module("m")
        callee = module.declare_function("sqrt", FunctionType(F64, [F64]))
        fn = module.add_function("main", FunctionType(I32, []))
        builder = IRBuilder(fn.new_block("entry"))
        from repro.ir import Call
        bad = Call(callee, [Constant(I64, 1)])
        bad.name = "x"
        fn.entry_block.append(bad)
        builder.position_at_end(fn.entry_block)
        builder.ret(0)
        with pytest.raises(IRError, match="argument type"):
            verify_module(module)


class TestKernelInvariants:
    def test_kernel_must_return_void(self):
        module = Module("m")
        kernel = module.add_function("k", FunctionType(I64, [I64]),
                                     is_kernel=True)
        IRBuilder(kernel.new_block("entry")).ret(0)
        with pytest.raises(IRError, match="void"):
            verify_module(module)

    def test_kernel_needs_thread_id_param(self):
        module = Module("m")
        kernel = module.add_function("k", FunctionType(VOID, [F64]),
                                     is_kernel=True)
        IRBuilder(kernel.new_block("entry")).ret()
        with pytest.raises(IRError, match="thread id"):
            verify_module(module)

    def test_launch_argument_types_checked(self):
        module = Module("m")
        kernel = module.add_function(
            "k", FunctionType(VOID, [I64, pointer_to(F64)]),
            is_kernel=True)
        IRBuilder(kernel.new_block("entry")).ret()
        fn = module.add_function("main", FunctionType(I32, []))
        builder = IRBuilder(fn.new_block("entry"))
        from repro.ir import LaunchKernel
        bad = LaunchKernel(kernel, Constant(I64, 4), [Constant(I64, 0)])
        fn.entry_block.append(bad)
        builder.position_at_end(fn.entry_block)
        builder.ret(0)
        with pytest.raises(IRError, match="argument type"):
            verify_module(module)


class TestCfgInvariants:
    def test_instruction_after_terminator(self):
        module, fn = fresh_module()
        block = fn.new_block("entry")
        builder = IRBuilder(block)
        builder.ret(0)
        trailing = Alloca(I64, Constant(I64, 1))
        trailing.name = "dead"
        block.instructions.append(trailing)
        trailing.parent = block
        with pytest.raises(IRError, match="after"):
            verify_module(module)

    def test_unreachable_block_rejected(self):
        module, fn = fresh_module()
        IRBuilder(fn.new_block("entry")).ret(0)
        orphan = fn.new_block("orphan")
        IRBuilder(orphan).ret(0)
        with pytest.raises(IRError, match="unreachable"):
            verify_module(module)

    def test_reachable_multi_block_cfg_passes(self):
        module, fn = fresh_module()
        entry = fn.new_block("entry")
        exit_block = fn.new_block("exit")
        IRBuilder(entry).br(exit_block)
        IRBuilder(exit_block).ret(0)
        verify_module(module)
