"""IRBuilder convenience-API tests."""

import pytest

from repro.errors import IRError
from repro.ir import (ArrayType, Constant, FunctionType, IRBuilder, Module,
                      VOID, F32, F64, I1, I8, I32, I64, pointer_to,
                      verify_module)


def fresh():
    module = Module("builder-test")
    fn = module.add_function("f", FunctionType(I64, [I64, F64]),
                             ["n", "x"])
    builder = IRBuilder(fn.new_block("entry"))
    return module, fn, builder


class TestPositioning:
    def test_requires_block(self):
        builder = IRBuilder()
        with pytest.raises(IRError, match="insertion block"):
            builder.i64(1)  # constants fine...
            builder.ret()   # ...but emission is not

    def test_function_property(self):
        _, fn, builder = fresh()
        assert builder.function is fn

    def test_unique_names(self):
        _, fn, builder = fresh()
        a = builder.add(fn.args[0], 1)
        b = builder.add(fn.args[0], 2)
        c = builder.add(fn.args[0], 3)
        names = {a.name, b.name, c.name}
        assert len(names) == 3


class TestOperandCoercion:
    def test_int_literals_coerced_to_lhs_type(self):
        _, fn, builder = fresh()
        result = builder.add(fn.args[0], 5)
        assert isinstance(result.rhs, Constant)
        assert result.rhs.type == I64

    def test_float_literals(self):
        _, fn, builder = fresh()
        result = builder.mul(fn.args[1], 2.5)
        assert result.rhs.type == F64

    def test_store_coerces_to_pointee(self):
        _, fn, builder = fresh()
        slot = builder.alloca(F64)
        store = builder.store(3, slot)
        assert store.value.type == F64

    def test_gep_indices_default_i64(self):
        _, fn, builder = fresh()
        slot = builder.alloca(ArrayType(F64, 4))
        element = builder.gep(slot, [0, 2])
        assert all(index.type == I64 for index in element.indices)


class TestCastHelpers:
    def test_int_cast_picks_direction(self):
        _, fn, builder = fresh()
        small = builder.cast("trunc", fn.args[0], I8)
        widened = builder.int_cast(small, I64)
        assert widened.kind == "sext"
        narrowed = builder.int_cast(fn.args[0], I32)
        assert narrowed.kind == "trunc"

    def test_int_cast_same_type_is_identity(self):
        _, fn, builder = fresh()
        assert builder.int_cast(fn.args[0], I64) is fn.args[0]

    def test_bitcast_identity(self):
        _, fn, builder = fresh()
        slot = builder.alloca(F64)
        assert builder.bitcast(slot, slot.type) is slot
        other = builder.bitcast(slot, pointer_to(I8))
        assert other.type == pointer_to(I8)


class TestCallChecks:
    def test_arity_enforced(self):
        module, fn, builder = fresh()
        callee = module.declare_function("g", FunctionType(VOID, [I64]))
        with pytest.raises(IRError, match="expected 1 args"):
            builder.call(callee, [])

    def test_launch_requires_kernel(self):
        module, fn, builder = fresh()
        plain = module.declare_function("h", FunctionType(VOID, [I64]))
        with pytest.raises(IRError, match="not a kernel"):
            builder.launch(plain, 4, [])

    def test_ret_coerces(self):
        module, fn, builder = fresh()
        builder.ret(0)
        verify_module(module)


class TestWholeFunction:
    def test_build_loop_and_verify(self):
        module = Module("loop")
        fn = module.add_function("sum_to", FunctionType(I64, [I64]), ["n"])
        builder = IRBuilder(fn.new_block("entry"))
        i_slot = builder.alloca(I64)
        acc_slot = builder.alloca(I64)
        builder.store(0, i_slot)
        builder.store(0, acc_slot)
        head = fn.new_block("head")
        body = fn.new_block("body")
        done = fn.new_block("done")
        builder.br(head)
        builder.position_at_end(head)
        i_val = builder.load(i_slot)
        builder.cbr(builder.cmp("lt", i_val, fn.args[0]), body, done)
        builder.position_at_end(body)
        acc = builder.load(acc_slot)
        i_again = builder.load(i_slot)
        builder.store(builder.add(acc, i_again), acc_slot)
        builder.store(builder.add(i_again, 1), i_slot)
        builder.br(head)
        builder.position_at_end(done)
        builder.ret(builder.load(acc_slot))
        verify_module(module)

        from repro.interp import Machine
        module.add_function("main", FunctionType(I32, []))
        main = module.get_function("main")
        mb = IRBuilder(main.new_block("entry"))
        call = mb.call(fn, [10])
        mb.ret(mb.cast("trunc", call, I32))
        machine = Machine(module)
        assert machine.run() == 45
