"""Workload registry and per-program correctness tests.

The full four-configuration sweep lives in the benchmark harness; the
tests here compile every program, check registry metadata, and run a
representative subset through all configurations for bit-identical
output.
"""

import pytest

from repro.core import CgcmCompiler, CgcmConfig, OptLevel
from repro.frontend import compile_minic
from repro.ir import verify_module
from repro.workloads import (ALL_WORKLOADS, POLYBENCH, RODINIA,
                             get_workload, workload_names)


class TestRegistry:
    def test_twenty_four_programs(self):
        assert len(ALL_WORKLOADS) == 24
        assert len(POLYBENCH) == 16
        assert len(RODINIA) == 6

    def test_names_unique(self):
        names = workload_names()
        assert len(set(names)) == 24

    def test_paper_names_present(self):
        expected = {"adi", "atax", "bicg", "correlation", "covariance",
                    "doitgen", "gemm", "gemver", "gesummv", "gramschmidt",
                    "jacobi-2d-imper", "seidel", "lu", "ludcmp", "2mm",
                    "3mm", "cfd", "hotspot", "kmeans", "lud", "nw", "srad",
                    "fm", "blackscholes"}
        assert set(workload_names()) == expected

    def test_lookup_errors(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nonexistent")

    def test_paper_rows_sane(self):
        for workload in ALL_WORKLOADS:
            paper = workload.paper
            assert paper.kernels >= 1
            assert paper.limiting_factor in ("GPU", "Comm.", "Other")
            assert paper.applicable_cgcm == paper.kernels
            assert paper.applicable_inspector_executor <= paper.kernels
            assert paper.applicable_named_regions <= \
                paper.applicable_inspector_executor


class TestCompilation:
    @pytest.mark.parametrize("name", workload_names())
    def test_every_program_compiles_and_verifies(self, name):
        workload = get_workload(name)
        module = compile_minic(workload.source, name)
        verify_module(module)
        assert "main" in module.functions

    @pytest.mark.parametrize("name", workload_names())
    def test_every_program_parallelizes(self, name):
        """The DOALL parallelizer finds at least one kernel everywhere
        (paper: opportunities in all 24 programs)."""
        workload = get_workload(name)
        compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.UNOPTIMIZED))
        report = compiler.compile_source(workload.source, name)
        assert report.doall_kernels, f"{name}: no DOALL kernels found"


class TestCorrectnessSubset:
    """Bit-identical output across configurations (fast subset; the
    benchmark harness covers all 24)."""

    SUBSET = ("gemm", "jacobi-2d-imper", "gramschmidt", "lu", "srad",
              "nw", "kmeans", "blackscholes", "atax", "seidel")

    @pytest.mark.parametrize("name", SUBSET)
    def test_all_levels_agree(self, name):
        workload = get_workload(name)
        outputs = {}
        for level in (OptLevel.SEQUENTIAL, OptLevel.UNOPTIMIZED,
                      OptLevel.OPTIMIZED):
            compiler = CgcmCompiler(CgcmConfig(opt_level=level))
            report = compiler.compile_source(workload.source, name)
            result = compiler.execute(report)
            outputs[level] = (result.exit_code, result.stdout)
        assert outputs[OptLevel.SEQUENTIAL] \
            == outputs[OptLevel.UNOPTIMIZED] \
            == outputs[OptLevel.OPTIMIZED]

    def test_checksums_are_nontrivial(self):
        for name in self.SUBSET:
            workload = get_workload(name)
            compiler = CgcmCompiler(CgcmConfig(
                opt_level=OptLevel.SEQUENTIAL))
            result = compiler.execute(
                compiler.compile_source(workload.source, name))
            assert result.stdout, name
            assert result.stdout[0] not in ("0", "nan", "inf"), \
                (name, result.stdout)
