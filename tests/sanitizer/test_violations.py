"""Seeded-bug tests: each violation class fires on a program that
deliberately misuses the CGCM run-time library, and stays silent on
the correct version of the same program."""

import pytest

from repro.errors import CgcmRuntimeError, MemoryFault
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.runtime import CgcmRuntime
from repro.sanitizer import CommSanitizer, ViolationKind


def sanitized_run(source):
    """Run manual-mode MiniC under the sanitizer; swallow runtime
    faults so the violations observed before the crash survive."""
    module = compile_minic(source)
    machine = Machine(module)
    runtime = CgcmRuntime(machine)
    runtime.declare_all_globals()
    sanitizer = CommSanitizer(machine, runtime)
    error = None
    try:
        machine.run()
    except (CgcmRuntimeError, MemoryFault) as exc:
        error = exc
    return sanitizer.finish(), error, machine


CORRECT = r"""
double A[8];

__global__ void scale(long tid, double *a) { a[tid] = a[tid] * 2.0; }

int main(void) {
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    double *d = (double *) map((char *) A);
    __launch(scale, 8, d);
    unmap((char *) A);
    release((char *) A);
    double s = 0.0;
    for (int i = 0; i < 8; i++) s += A[i];
    print_f64(s);
    return 0;
}
"""


class TestCleanPrograms:
    def test_correct_map_unmap_release_is_clean(self):
        report, error, machine = sanitized_run(CORRECT)
        assert error is None
        assert report.clean, report.summary()
        assert machine.stdout == ["72"]

    def test_stats_observed(self):
        report, _, _ = sanitized_run(CORRECT)
        assert report.stats["kernel_launches"] == 1
        assert report.stats["maps"] == 1
        assert report.stats["releases"] == 1
        assert report.stats["htod_copies"] == 1
        assert report.stats["dtoh_copies"] == 1


class TestSkippedUnmap:
    SOURCE = r"""
double A[8];

__global__ void scale(long tid, double *a) { a[tid] = a[tid] * 2.0; }

int main(void) {
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    double *d = (double *) map((char *) A);
    __launch(scale, 8, d);
    release((char *) A);
    double s = 0.0;
    for (int i = 0; i < 8; i++) s += A[i];
    print_f64(s);
    return 0;
}
"""

    def test_reports_lost_update(self):
        report, error, machine = sanitized_run(self.SOURCE)
        assert error is None
        kinds = report.kinds()
        assert kinds == (ViolationKind.LOST_UPDATE,), report.summary()
        violation = report.by_kind(ViolationKind.LOST_UPDATE)[0]
        assert violation.unit == "global A"
        # The host really did read stale data: sum of the un-doubled
        # initial values.
        assert machine.stdout == ["36"]

    def test_violation_names_unit_and_epoch(self):
        report, _, _ = sanitized_run(self.SOURCE)
        violation = report.violations[0]
        assert violation.unit == "global A"
        assert violation.epoch == 1
        assert "never unmapped" in violation.message

    def test_never_read_still_reported_at_exit(self):
        # Even if the host never loads A, the dirty device copy at
        # program exit is a lost update.
        source = self.SOURCE.replace(
            "    double s = 0.0;\n"
            "    for (int i = 0; i < 8; i++) s += A[i];\n"
            "    print_f64(s);\n", "")
        report, error, _ = sanitized_run(source)
        assert error is None
        assert report.kinds() == (ViolationKind.LOST_UPDATE,)
        assert "skipped" in report.violations[0].message


class TestDoubleRelease:
    SOURCE = r"""
double A[8];

__global__ void scale(long tid, double *a) { a[tid] = a[tid] * 2.0; }

int main(void) {
    double *d = (double *) map((char *) A);
    __launch(scale, 8, d);
    unmap((char *) A);
    release((char *) A);
    release((char *) A);
    return 0;
}
"""

    def test_reports_double_release(self):
        report, error, _ = sanitized_run(self.SOURCE)
        # The runtime also hard-faults; the sanitizer still produced
        # the structured record first.
        assert isinstance(error, CgcmRuntimeError)
        assert report.kinds() == (ViolationKind.DOUBLE_RELEASE,)
        assert report.violations[0].unit == "global A"


class TestStaleRead:
    SOURCE = r"""
double A[8];
double B[8];

__global__ void copy(long tid, double *b, double *a) {
    b[tid] = a[tid];
}

int main(void) {
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    double *da = (double *) map((char *) A);
    double *db = (double *) map((char *) B);
    A[0] = 99.0;
    __launch(copy, 8, db, da);
    unmap((char *) B);
    release((char *) B);
    unmap((char *) A);
    release((char *) A);
    print_f64(B[0]);
    return 0;
}
"""

    def test_reports_stale_read(self):
        report, error, machine = sanitized_run(self.SOURCE)
        assert error is None
        assert ViolationKind.STALE_READ in report.kinds()
        violation = report.by_kind(ViolationKind.STALE_READ)[0]
        assert violation.unit == "global A"
        # The kernel really did read the pre-modification value.
        assert machine.stdout == ["1"]

    def test_reported_once_per_epoch(self):
        # The kernel reads all 8 elements of the stale unit; the
        # violation is deduplicated to one record per unit per epoch.
        report, _, _ = sanitized_run(self.SOURCE)
        assert len(report.by_kind(ViolationKind.STALE_READ)) == 1

    def test_write_before_map_is_clean(self):
        source = self.SOURCE.replace(
            '    double *da = (double *) map((char *) A);\n'
            '    double *db = (double *) map((char *) B);\n'
            '    A[0] = 99.0;\n',
            '    A[0] = 99.0;\n'
            '    double *da = (double *) map((char *) A);\n'
            '    double *db = (double *) map((char *) B);\n')
        report, error, machine = sanitized_run(source)
        assert error is None
        assert report.clean, report.summary()
        assert machine.stdout == ["99"]


class TestRefcountLeak:
    SOURCE = r"""
double A[8];

__global__ void scale(long tid, double *a) { a[tid] = a[tid] * 2.0; }

int main(void) {
    double *d = (double *) map((char *) A);
    __launch(scale, 8, d);
    unmap((char *) A);
    return 0;
}
"""

    def test_reports_leak_at_exit(self):
        report, error, _ = sanitized_run(self.SOURCE)
        assert error is None
        assert report.kinds() == (ViolationKind.REFCOUNT_LEAK,)
        violation = report.violations[0]
        assert violation.unit == "global A"
        assert "1 map reference" in violation.message

    def test_leak_count_in_message(self):
        source = self.SOURCE.replace(
            "    double *d = (double *) map((char *) A);",
            "    double *d = (double *) map((char *) A);\n"
            "    map((char *) A);\n"
            "    map((char *) A);")
        report, _, _ = sanitized_run(source)
        leaks = report.by_kind(ViolationKind.REFCOUNT_LEAK)
        assert len(leaks) == 1
        assert "3 map reference" in leaks[0].message


class TestPointerMixing:
    def test_host_dereference_of_device_pointer(self):
        report, error, _ = sanitized_run(r"""
double A[8];

int main(void) {
    double *d = (double *) map((char *) A);
    double x = d[0];
    print_f64(x);
    return 0;
}
""")
        assert isinstance(error, MemoryFault)
        assert ViolationKind.POINTER_MIX in report.kinds()
        violation = report.by_kind(ViolationKind.POINTER_MIX)[0]
        assert "host code dereferenced a device pointer" \
            in violation.message
        assert violation.address is not None
        assert violation.address >= 0xD000_0000

    def test_kernel_dereference_of_host_pointer(self):
        report, error, _ = sanitized_run(r"""
double A[8];

__global__ void bad(long tid, double *a) { a[tid] = 1.0; }

int main(void) {
    double *host_ptr = A;
    __launch(bad, 8, host_ptr);
    return 0;
}
""")
        assert isinstance(error, MemoryFault)
        assert ViolationKind.POINTER_MIX in report.kinds()
        assert "kernel dereferenced a host pointer" \
            in report.by_kind(ViolationKind.POINTER_MIX)[0].message


class TestDeviceFreeLive:
    def test_free_of_live_mapped_buffer(self):
        # Globals live in the module segment (cuModuleGetGlobal), so
        # only heap units get cuMemAlloc'd buffers that cuMemFree can
        # legally target.  Free one while it is still mapped.
        module = compile_minic("int main(void) { return 0; }")
        machine = Machine(module)
        runtime = CgcmRuntime(machine)
        sanitizer = CommSanitizer(machine, runtime)
        base = machine.heap.malloc(64)
        machine.notify_heap("malloc", base, 64)
        runtime.map_ptr(base)
        info = runtime.info_for(base)
        assert info.ref_count == 1
        machine.device.mem_free(info.device_ptr)
        report = sanitizer.finish()
        assert ViolationKind.DEVICE_FREE_LIVE in report.kinds()
        violation = report.by_kind(ViolationKind.DEVICE_FREE_LIVE)[0]
        assert violation.unit.startswith("heap@0x")
        assert "1 live map reference" in violation.message

    def test_release_driven_free_is_clean(self):
        module = compile_minic(r"""
int main(void) {
    char *p = malloc(64);
    char *d = map(p);
    release(p);
    free(p);
    return 0;
}
""")
        machine = Machine(module)
        runtime = CgcmRuntime(machine)
        sanitizer = CommSanitizer(machine, runtime)
        machine.run()
        report = sanitizer.finish()
        assert report.clean, report.summary()


class TestHeapAndStackUnits:
    def test_heap_unit_label(self):
        module = compile_minic(r"""
__global__ void scale(long tid, double *a) { a[tid] = a[tid] * 2.0; }

int main(void) {
    double *p = (double *) malloc(64);
    for (int i = 0; i < 8; i++) p[i] = i;
    double *d = (double *) map((char *) p);
    __launch(scale, 8, d);
    release((char *) p);
    print_f64(p[0]);
    free((char *) p);
    return 0;
}
""")
        machine = Machine(module)
        runtime = CgcmRuntime(machine)
        sanitizer = CommSanitizer(machine, runtime)
        machine.run()
        report = sanitizer.finish()
        lost = report.by_kind(ViolationKind.LOST_UPDATE)
        assert lost, report.summary()
        assert lost[0].unit.startswith("heap@0x")

    def test_violation_str_includes_kind_epoch_unit(self):
        report, _, _ = sanitized_run(TestSkippedUnmap.SOURCE)
        text = str(report.violations[0])
        assert "[lost-update]" in text
        assert "epoch 1" in text
        assert "global A" in text
