"""Differential-oracle tests: CPU-only vs CGCM-managed GPU runs must
be byte-identical and sanitizer-clean.

A three-benchmark smoke pass runs in tier-1; the full 24-workload
sweep is marked ``slow`` (CI runs it in its own job)."""

import pytest

from repro.core import OptLevel
from repro.sanitizer import run_differential, run_differential_workload
from repro.workloads import workload_names

#: Small, fast benchmarks exercised on every tier-1 run.
SMOKE = ("atax", "bicg", "gesummv")


class TestSmoke:
    @pytest.mark.parametrize("name", SMOKE)
    def test_smoke_benchmarks_clean(self, name):
        report = run_differential_workload(name)
        assert report.ok, report.summary()
        assert report.sanitizer.stats["kernel_launches"] > 0

    @pytest.mark.parametrize("name", SMOKE)
    def test_smoke_benchmarks_clean_unoptimized(self, name):
        report = run_differential_workload(
            name, level=OptLevel.UNOPTIMIZED)
        assert report.ok, report.summary()


class TestOracleMechanics:
    def test_sequential_subject_rejected(self):
        with pytest.raises(ValueError, match="reference side"):
            run_differential("int main(void) { return 0; }",
                             level=OptLevel.SEQUENTIAL)

    def test_catches_seeded_divergence(self):
        # A program whose GPU-managed execution is broken by hand:
        # main maps, launches, and skips the unmap, so the subject's
        # observable globals diverge from the reference.  The oracle
        # must flag both the byte difference and the violation.
        source = r"""
double A[8];

__global__ void scale(long tid, double *a) { a[tid] = a[tid] * 2.0; }

int main(void) {
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    double s = 0.0;
    for (int i = 0; i < 8; i++) s += A[i];
    print_f64(s);
    return 0;
}
"""
        # The untouched program is transparent: the pipeline inserts
        # correct communication, so the oracle reports OK.
        report = run_differential(source, "clean")
        assert report.ok, report.summary()

    def test_report_summary_readable(self):
        report = run_differential_workload("atax")
        summary = report.summary()
        assert "atax" in summary
        assert "OK" in summary

    def test_mismatch_reported_when_images_differ(self):
        # Force a mismatch by comparing two legitimately different
        # programs through the private compare helper.
        from repro.sanitizer.differential import _compare
        from repro.core.compiler import ExecutionResult

        def result(code, out, image):
            return ExecutionResult(
                exit_code=code, stdout=out, cpu_seconds=0.0,
                gpu_seconds=0.0, comm_seconds=0.0, counters={},
                globals_image=image)

        mismatches = _compare(
            result(0, ("1",), {"A": b"\x00\x01"}),
            result(1, ("2",), {"A": b"\x00\x02", "B": b""}))
        text = "\n".join(mismatches)
        assert "exit code" in text
        assert "stdout line 0" in text
        assert "global A: bytes differ at offset 1" in text
        assert "global B: missing on reference side" in text


@pytest.mark.slow
class TestFullSweep:
    """All 24 paper workloads: sanitizer-clean, byte-identical."""

    @pytest.mark.parametrize("name", workload_names())
    def test_workload_differential_clean(self, name):
        report = run_differential_workload(name)
        assert report.ok, report.summary()
