"""Shared fixtures and helpers for the repro test-suite."""

from __future__ import annotations

import pytest

from repro.core import CgcmCompiler, CgcmConfig, OptLevel
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.runtime import CgcmRuntime


def run_source(source: str, opt_level: OptLevel = OptLevel.SEQUENTIAL,
               record_events: bool = False):
    """Compile MiniC at a level and execute it; returns ExecutionResult."""
    config = CgcmConfig(opt_level=opt_level, record_events=record_events)
    compiler = CgcmCompiler(config)
    report = compiler.compile_source(source)
    return compiler.execute(report)


def machine_for(source: str, with_runtime: bool = False) -> Machine:
    """A machine for untransformed MiniC source (manual-mode tests)."""
    module = compile_minic(source)
    machine = Machine(module)
    if with_runtime:
        runtime = CgcmRuntime(machine)
        runtime.declare_all_globals()
    return machine


@pytest.fixture
def differential_oracle():
    """CPU-vs-GPU differential runner with the sanitizer armed.

    Yields a callable: ``differential_oracle(source_or_workload)``
    returns a :class:`repro.sanitizer.DifferentialReport`; tests
    assert on ``report.ok`` / ``report.violations``.
    """
    from repro.sanitizer import (run_differential,
                                 run_differential_workload)
    from repro.workloads import Workload

    def run(target, level: OptLevel = OptLevel.OPTIMIZED):
        if isinstance(target, Workload) or "\n" not in target.strip():
            return run_differential_workload(target, level)
        return run_differential(target, level=level)

    return run


@pytest.fixture
def simple_kernel_module():
    """A module with one kernel that doubles an 8-element global."""
    return compile_minic(r"""
        double A[8];

        __global__ void scale(long tid, double *a) {
            a[tid] = a[tid] * 2.0;
        }

        int main(void) {
            for (int i = 0; i < 8; i++) A[i] = i + 1;
            double *d = (double *) map((char *) A);
            __launch(scale, 8, d);
            unmap((char *) A);
            release((char *) A);
            double s = 0.0;
            for (int i = 0; i < 8; i++) s += A[i];
            print_f64(s);
            return 0;
        }
    """)
