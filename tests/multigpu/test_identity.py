"""Multi-device byte-identity: sharded == unsharded, always.

The eager-data model keeps one physical backing store, so device
placement and grid sharding are pure scheduling decisions -- every
N-device run must produce byte-identical observables to the
single-device streams run.  A fast subset guards tier-1; the full
24-workload sweep across counts and shapes runs under ``-m slow``.
"""

import pytest

from repro import api
from repro.core import CgcmConfig, OptLevel
from repro.gpu.topology import Topology
from repro.workloads import ALL_WORKLOADS, get_workload

#: Tier-1 subset: the comm-bound best case, a sharded DOALL matmul,
#: a reduction, and a wavefront that must *not* shard.
FAST_NAMES = ("cfd", "gemm", "gesummv", "nw")


def run_pair(workload, topology):
    base = api.compile_workload(
        workload.source, CgcmConfig(opt_level=OptLevel.OPTIMIZED,
                                    streams=True),
        name=workload.name).run()
    multi = api.compile_workload(
        workload.source, CgcmConfig(opt_level=OptLevel.OPTIMIZED,
                                    topology=topology),
        name=workload.name).run()
    return base, multi


@pytest.mark.parametrize("name", FAST_NAMES)
def test_four_device_identity_fast_subset(name):
    workload = get_workload(name)
    base, multi = run_pair(workload, Topology.fully_connected(4))
    assert base.observable() == multi.observable()
    assert multi.counters.get("multigpu_placements", 0) > 0


def test_ring_topology_identity():
    base, multi = run_pair(get_workload("gemm"), Topology.ring(4))
    assert base.observable() == multi.observable()


def test_sharding_pays_when_cores_saturate():
    # Under the default 480-core model the paper grids (~32 threads)
    # are latency-bound -- the longest thread bounds the launch, so
    # the coordinator rightly refuses to shard.  Constrain the cores
    # and the same DOALL kernels split across devices, stay
    # byte-identical, and beat the single-device schedule.
    from repro.gpu import CostModel
    workload = get_workload("gemm")
    model = CostModel(gpu_cores=4)
    base = api.compile_workload(
        workload.source, CgcmConfig(opt_level=OptLevel.OPTIMIZED,
                                    streams=True, cost_model=model),
        name=workload.name).run()
    multi = api.compile_workload(
        workload.source, CgcmConfig(opt_level=OptLevel.OPTIMIZED,
                                    topology=Topology.fully_connected(4),
                                    cost_model=model),
        name=workload.name).run()
    assert base.observable() == multi.observable()
    assert multi.counters.get("sharded_launches", 0) > 0
    assert multi.counters.get("p2p_copies", 0) > 0
    assert multi.critical_path_seconds < base.critical_path_seconds


def test_unsharded_launches_still_span_devices():
    # Even without profitable sharding the coordinator routes every
    # launch to the device homing most of its operands and pays peer
    # broadcasts for the rest.
    _, multi = run_pair(get_workload("gemm"),
                        Topology.fully_connected(4))
    assert multi.counters.get("multi_device_launches", 0) > 0
    assert multi.counters.get("p2p_copies", 0) > 0


@pytest.mark.slow
@pytest.mark.parametrize("workload", ALL_WORKLOADS,
                         ids=lambda w: w.name)
@pytest.mark.parametrize("devices", (2, 4, 8))
def test_full_sweep_identity(workload, devices):
    base, multi = run_pair(workload, Topology.fully_connected(devices))
    assert base.observable() == multi.observable()
