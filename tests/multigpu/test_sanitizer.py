"""Cross-device coherence sanitizer: stale reads under a seeded defect.

The sanitizer mirrors the coordinator's valid sets purely from hook
events, so it catches a coordinator that launches a kernel on a device
before broadcasting the operands there.  ``auto_broadcast=False`` is
exactly that seeded defect; real executions always coordinate, so the
same pipeline run through the public config must stay clean.
"""

from repro import api
from repro.core import CgcmCompiler, CgcmConfig, OptLevel
from repro.gpu.topology import Topology
from repro.interp import Machine
from repro.multigpu import MultiGpuCoordinator, plan_placement
from repro.runtime import CgcmRuntime
from repro.sanitizer import CommSanitizer, ViolationKind
from repro.workloads import get_workload


def coordinated_run(workload, auto_broadcast):
    """The compiler's multi-device wiring, with the defect exposed."""
    compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED,
                                       streams=True))
    report = compiler.compile_source(workload.source, workload.name)
    machine = Machine(report.module, streams=True)
    runtime = CgcmRuntime(machine)
    topology = Topology.fully_connected(4)
    plan = plan_placement(report.module, topology)
    MultiGpuCoordinator(machine, runtime, topology, plan,
                        auto_broadcast=auto_broadcast)
    sanitizer = CommSanitizer(machine, runtime)
    machine.run()
    machine.clock.device_synchronize()
    return sanitizer.finish()


class TestCrossDeviceStale:
    def test_seeded_defect_fires(self):
        report = coordinated_run(get_workload("gemm"),
                                 auto_broadcast=False)
        stale = [v for v in report.violations
                 if v.kind == ViolationKind.CROSS_DEVICE_STALE]
        assert stale, "missing broadcasts must surface as stale reads"

    def test_coordinated_run_is_clean(self):
        report = coordinated_run(get_workload("gemm"),
                                 auto_broadcast=True)
        assert not [v for v in report.violations
                    if v.kind == ViolationKind.CROSS_DEVICE_STALE]
        assert report.stats["mg_launches"] > 0
        assert report.stats["mg_broadcasts"] > 0

    def test_config_driven_multi_device_sanitize_is_clean(self):
        workload = get_workload("cfd")
        result = api.compile_workload(
            workload.source,
            CgcmConfig(opt_level=OptLevel.OPTIMIZED,
                       topology=Topology.fully_connected(2),
                       sanitize=True),
            name=workload.name).run()
        assert result.sanitizer_report is not None
        assert result.sanitizer_report.clean

    def test_single_device_stats_shape_unchanged(self):
        # Without a coordinator the sanitizer must not grow mg_* keys:
        # existing stats-shape consumers see exactly the old dict.
        workload = get_workload("gemm")
        result = api.compile_workload(
            workload.source,
            CgcmConfig(opt_level=OptLevel.OPTIMIZED, sanitize=True),
            name=workload.name).run()
        assert result.sanitizer_report is not None
        assert not [k for k in result.sanitizer_report.stats
                    if k.startswith("mg_")]
