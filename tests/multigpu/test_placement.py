"""Placement pass: determinism, balance, and the lint surface."""

from repro.analysis.unitgraph import build_unit_graph
from repro.core import CgcmCompiler, CgcmConfig, OptLevel
from repro.gpu.topology import Topology
from repro.multigpu import partition_units, plan_placement
from repro.staticcheck import lint_source
from repro.workloads import ALL_WORKLOADS, get_workload


def compiled_module(source, name="program"):
    compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED,
                                       streams=True))
    return compiler.compile_source(source, name).module


class TestDeterminism:
    def test_same_module_same_assignment(self):
        # The greedy solver must be a pure function of the module:
        # re-planning a workload twice (fresh graph each time) gives
        # the identical assignment, loads, and cut.
        for workload in (get_workload("gemm"), get_workload("cfd")):
            module = compiled_module(workload.source, workload.name)
            topo = Topology.fully_connected(4)
            first = plan_placement(module, topo)
            second = plan_placement(module, topo)
            assert first.assignment == second.assignment
            assert first.loads == second.loads
            assert first.cut_weight == second.cut_weight

    def test_recompile_is_deterministic_too(self):
        workload = get_workload("2mm")
        topo = Topology.ring(4)
        plans = [plan_placement(compiled_module(workload.source),
                                topo).assignment for _ in range(2)]
        assert plans[0] == plans[1]


class TestBalance:
    def test_every_unit_gets_a_device(self):
        for workload in ALL_WORKLOADS[:8]:
            module = compiled_module(workload.source, workload.name)
            graph = build_unit_graph(module)
            plan = partition_units(graph, Topology.fully_connected(4))
            assert set(plan.assignment) == set(graph.sizes)
            assert all(0 <= d < 4 for d in plan.assignment.values())
            assert sum(plan.loads) == sum(graph.sizes.values())

    def test_oversized_units_fall_back_to_load_balancing(self):
        # Three equal giant units can never fit under the 1.25x/k cap
        # on 2 devices; the fallback must still spread them instead of
        # piling everything on one device.
        from repro.analysis.unitgraph import UnitGraph
        graph = UnitGraph()
        graph.sizes = {"g:A": 1 << 20, "g:B": 1 << 20, "g:C": 1 << 20}
        graph.edges = {("g:A", "g:B"): 10, ("g:B", "g:C"): 10}
        plan = partition_units(graph, Topology.fully_connected(2))
        assert max(plan.loads) <= 2 << 20

    def test_single_device_is_trivial(self):
        module = compiled_module(get_workload("gemm").source)
        plan = plan_placement(module, Topology.single())
        assert all(d == 0 for d in plan.assignment.values())
        assert plan.cut_weight == 0


class TestPlacementLint:
    def test_inert_without_topology(self):
        report = lint_source(get_workload("gemm").source, streams=True)
        assert "placement" in report.passes_run
        assert not [f for f in report.findings
                    if f.pass_name == "placement"]

    def test_reports_coaccess_crossings(self):
        # gemm's three matrices are co-accessed by one kernel, so any
        # 2-device split must cut at least one edge; the pass notes it.
        report = lint_source(get_workload("gemm").source, streams=True,
                             topology=Topology.fully_connected(2))
        placement = [f for f in report.findings
                     if f.pass_name == "placement"]
        assert placement
        assert report.clean  # NOTE/WARNING only: lint stays clean
