"""CLI surface for multi-device runs: --devices/--topology, multibench."""

import json

import pytest

from repro.__main__ import main

PROGRAM = r"""
double xs[64];
double ys[64];
int main(void) {
    for (int i = 0; i < 64; i++) { xs[i] = i; ys[i] = 64 - i; }
    for (int t = 0; t < 3; t++)
        for (int i = 0; i < 64; i++)
            xs[i] = xs[i] + ys[i];
    double s = 0.0;
    for (int i = 0; i < 64; i++) s += xs[i];
    print_f64(s);
    return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "program.c"
    path.write_text(PROGRAM)
    return str(path)


class TestDevicesFlag:
    def test_run_output_is_device_count_invariant(self, source_file,
                                                  capsys):
        outputs = []
        for argv in (["run", source_file],
                     ["run", source_file, "--devices", "2"],
                     ["run", source_file, "--devices", "4",
                      "--topology", "ring"]):
            assert main(argv) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_run_devices_with_sanitizer_is_clean(self, source_file,
                                                 capsys):
        code = main(["run", source_file, "--devices", "2", "--sanitize"])
        captured = capsys.readouterr()
        assert code == 0
        assert "sanitizer: clean" in captured.err

    def test_stats_show_multigpu_counters(self, source_file, capsys):
        main(["run", source_file, "--devices", "2", "--stats"])
        err = capsys.readouterr().err
        assert "multigpu_placements" in err

    def test_trace_devices_renders(self, source_file, capsys):
        code = main(["trace", source_file, "--devices", "2"])
        assert code == 0
        assert "gpu1" in capsys.readouterr().out


class TestMultibench:
    def test_multibench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(["multibench", "gemm", "--devices", "1", "2",
                     "--out", str(out)])
        captured = capsys.readouterr()
        assert code == 0
        assert "geomean" in captured.out
        data = json.loads(out.read_text())
        assert data["device_counts"] == [1, 2]
        assert all(c["identical"] for c in data["cells"])

    def test_bench_devices_redirects_to_multibench(self, tmp_path,
                                                   capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["bench", "gesummv", "--devices", "2"])
        assert code == 0
        assert (tmp_path / "BENCH_multigpu.json").exists()
