"""Collective scheduling properties over the modeled clock.

The coordinator prices every broadcast/gather hop on a directed p2p
lane (its own bus) with a FIFO stream per link.  Whatever the traffic
pattern, the overlap-aware critical path can never exceed the fully
serialized schedule -- and must still cover the longest single
dependency chain (each multi-hop path is FIFO along its links).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import SimClock
from repro.gpu.topology import Topology

copies = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7),
              st.integers(1, 1 << 22)),
    min_size=1, max_size=24)


def schedule_collectives(topology, traffic):
    """Mimic the coordinator: one span per hop, chained via ``after``."""
    clock = SimClock()
    clock.enable_streams()
    longest_chain = 0.0
    for src, dst, num_bytes in traffic:
        src, dst = src % topology.num_devices, dst % topology.num_devices
        done = 0.0
        chain = 0.0
        for a, b in topology.path(src, dst):
            lane = clock.add_lane(Topology.p2p_lane(a, b))
            clock.stream_create(lane)
            hop = topology.link.transfer_time(num_bytes)
            done = clock.schedule(lane, hop, lane, "bcast", after=(done,))
            chain += hop
        longest_chain = max(longest_chain, chain)
    clock.device_synchronize()
    return clock, longest_chain


class TestCollectiveSchedules:
    @settings(deadline=None, max_examples=60)
    @given(n=st.integers(2, 8), kind=st.sampled_from(["ring", "full"]),
           traffic=copies)
    def test_critical_path_bounded_by_serial(self, n, kind, traffic):
        topology = Topology.build(kind, n)
        clock, longest = schedule_collectives(topology, traffic)
        assert clock.critical_path_s <= clock.serial_total_s + 1e-12
        assert clock.critical_path_s >= longest - 1e-12

    @settings(deadline=None, max_examples=30)
    @given(n=st.integers(2, 8), traffic=copies)
    def test_full_topology_traffic_is_embarrassingly_parallel(
            self, n, traffic):
        # All-to-all: distinct (src, dst) pairs never share a lane, so
        # the critical path is exactly the busiest directed link.
        topology = Topology.fully_connected(n)
        clock, _ = schedule_collectives(topology, traffic)
        per_lane = {}
        for src, dst, num_bytes in traffic:
            src, dst = src % n, dst % n
            if src == dst:
                continue
            lane = Topology.p2p_lane(src, dst)
            per_lane[lane] = per_lane.get(lane, 0.0) \
                + topology.link.transfer_time(num_bytes)
        busiest = max(per_lane.values(), default=0.0)
        assert clock.critical_path_s == pytest.approx(busiest)

    def test_ring_hops_serialize_along_the_path(self):
        # One 3-hop copy on a 6-ring: the hops are FIFO-chained, so
        # the path costs exactly three link times end to end.
        topology = Topology.ring(6)
        clock, longest = schedule_collectives(topology, [(0, 3, 1 << 20)])
        assert clock.critical_path_s == pytest.approx(longest)
        assert longest == pytest.approx(
            3 * topology.link.transfer_time(1 << 20))
