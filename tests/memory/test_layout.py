"""Global layout and initializer serialization tests."""

import struct

import pytest

from repro.errors import MemoryFault
from repro.ir import (ArrayType, GlobalRef, Module, StructType, F64, I8,
                      I64, pointer_to)
from repro.memory import GlobalLayout, initializer_bytes, make_cpu_memory


def resolve_nothing(name):
    raise AssertionError(f"unexpected global reference {name}")


class TestInitializerBytes:
    def test_zero_fill(self):
        assert initializer_bytes(ArrayType(F64, 2), None,
                                 resolve_nothing) == b"\x00" * 16

    def test_scalar_int(self):
        assert initializer_bytes(I64, 7, resolve_nothing) == \
            struct.pack("<q", 7)

    def test_scalar_wraps(self):
        assert initializer_bytes(I8, 300, resolve_nothing) == \
            struct.pack("<b", 44)

    def test_float(self):
        assert initializer_bytes(F64, 2.5, resolve_nothing) == \
            struct.pack("<d", 2.5)

    def test_string_nul_terminated_and_padded(self):
        data = initializer_bytes(ArrayType(I8, 8), "hi", resolve_nothing)
        assert data == b"hi\x00" + b"\x00" * 5

    def test_string_overflow_rejected(self):
        with pytest.raises(MemoryFault):
            initializer_bytes(ArrayType(I8, 2), "hi", resolve_nothing)

    def test_array_of_scalars_partial_init(self):
        data = initializer_bytes(ArrayType(I64, 4), [1, 2], resolve_nothing)
        assert data == struct.pack("<4q", 1, 2, 0, 0)

    def test_nested_arrays(self):
        data = initializer_bytes(ArrayType(ArrayType(I64, 2), 2),
                                 [[1, 2], [3, 4]], resolve_nothing)
        assert data == struct.pack("<4q", 1, 2, 3, 4)

    def test_global_ref_resolution(self):
        data = initializer_bytes(ArrayType(pointer_to(I8), 2),
                                 [GlobalRef("a"), GlobalRef("a", 3)],
                                 lambda name: 0x1000)
        assert data == struct.pack("<2Q", 0x1000, 0x1003)

    def test_struct_with_padding(self):
        struct_type = StructType("s", [("tag", I8), ("x", F64)])
        data = initializer_bytes(struct_type, [1, 2.0], resolve_nothing)
        assert len(data) == struct_type.size
        assert data[0] == 1
        assert struct.unpack_from("<d", data, 8)[0] == 2.0

    def test_too_many_array_items_rejected(self):
        with pytest.raises(MemoryFault):
            initializer_bytes(ArrayType(I64, 1), [1, 2], resolve_nothing)


class TestGlobalLayout:
    def test_addresses_are_disjoint_and_aligned(self):
        module = Module("m")
        module.add_global("a", I8)
        module.add_global("b", ArrayType(F64, 3))
        module.add_global("c", I64)
        layout = GlobalLayout(module)
        items = layout.items()
        for name, address, _ in items:
            assert address % 8 == 0
        spans = sorted((addr, addr + size) for _, addr, size in items)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_install_writes_images(self):
        module = Module("m")
        module.add_global("nums", ArrayType(I64, 3), [10, 20, 30])
        module.add_global("text", ArrayType(I8, 4), "ab")
        layout = GlobalLayout(module)
        memory = make_cpu_memory()
        layout.install(memory)
        base = layout.address_of("nums")
        assert memory.load_scalar(base + 8, I64) == 20
        assert memory.read_c_string(layout.address_of("text")) == b"ab"

    def test_cross_global_pointer_initializer(self):
        module = Module("m")
        module.add_global("target", ArrayType(I8, 4), "hey")
        module.add_global("ptr", pointer_to(I8), GlobalRef("target", 1))
        layout = GlobalLayout(module)
        memory = make_cpu_memory()
        layout.install(memory)
        stored = memory.load_scalar(layout.address_of("ptr"),
                                    pointer_to(I8))
        assert stored == layout.address_of("target") + 1
