"""Heap allocator tests, including property-based free-list checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryFault
from repro.memory import Heap, make_cpu_memory
from repro.memory.layout import HEAP_BASE


@pytest.fixture
def heap():
    return Heap(make_cpu_memory())


class TestMalloc:
    def test_returns_aligned_addresses(self, heap):
        for size in (1, 7, 16, 100):
            assert heap.malloc(size) % 16 == 0

    def test_zero_size_returns_null(self, heap):
        assert heap.malloc(0) == 0

    def test_negative_size_faults(self, heap):
        with pytest.raises(MemoryFault):
            heap.malloc(-4)

    def test_allocations_are_disjoint(self, heap):
        blocks = [(heap.malloc(24), 24) for _ in range(10)]
        spans = sorted((base, base + size) for base, size in blocks)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_poisons_fresh_memory(self, heap):
        address = heap.malloc(8)
        assert heap.memory.read(address, 8) == b"\xcd" * 8

    def test_size_of(self, heap):
        address = heap.malloc(100)
        assert heap.size_of(address) == 100
        with pytest.raises(MemoryFault):
            heap.size_of(address + 1)


class TestFree:
    def test_free_reuses_memory(self, heap):
        a = heap.malloc(64)
        heap.free(a)
        b = heap.malloc(64)
        assert b == a  # first fit re-uses the hole

    def test_double_free_faults(self, heap):
        a = heap.malloc(8)
        heap.free(a)
        with pytest.raises(MemoryFault):
            heap.free(a)

    def test_free_of_interior_pointer_faults(self, heap):
        a = heap.malloc(32)
        with pytest.raises(MemoryFault):
            heap.free(a + 8)

    def test_free_null_is_noop(self, heap):
        heap.free(0)

    def test_coalescing(self, heap):
        a = heap.malloc(16)
        b = heap.malloc(16)
        c = heap.malloc(16)
        heap.free(a)
        heap.free(c)
        heap.free(b)  # merges with both neighbours
        big = heap.malloc(48)
        assert big == a


class TestCallocRealloc:
    def test_calloc_zeroes(self, heap):
        address = heap.calloc(4, 8)
        assert heap.memory.read(address, 32) == b"\x00" * 32

    def test_realloc_preserves_prefix(self, heap):
        a = heap.malloc(16)
        heap.memory.write(a, b"0123456789abcdef")
        b = heap.realloc(a, 32)
        assert heap.memory.read(b, 16) == b"0123456789abcdef"

    def test_realloc_null_is_malloc(self, heap):
        assert heap.realloc(0, 16) != 0

    def test_realloc_to_zero_frees(self, heap):
        a = heap.malloc(16)
        assert heap.realloc(a, 0) == 0
        assert a not in heap.allocations


class TestHeapProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 512)),
                    min_size=1, max_size=60))
    def test_alloc_free_sequences_never_overlap(self, ops):
        heap = Heap(make_cpu_memory())
        live = []
        for do_free, size in ops:
            if do_free and live:
                heap.free(live.pop())
            else:
                live.append(heap.malloc(size))
        spans = sorted((a, a + heap.allocations[a]) for a in live)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start
        assert heap.live_bytes == sum(heap.allocations[a] for a in live)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 256), min_size=1, max_size=40))
    def test_free_everything_restores_capacity(self, sizes):
        heap = Heap(make_cpu_memory())
        blocks = [heap.malloc(size) for size in sizes]
        for block in blocks:
            heap.free(block)
        assert heap.live_bytes == 0
        # A single free span remains, starting at the heap base.
        assert heap._free[0][0] == HEAP_BASE
        assert len(heap._free) == 1
