"""Property tests: typed-view segment access == struct codecs.

The source engine's fast path reads and writes scalars through the
memoryview-backed segment views (``load_typed``/``store_typed`` and
the per-site inline caches built on the same layout); the
tree-walker keeps the legacy ``struct.Struct`` codecs.  Hypothesis
holds the two byte-equivalent for every scalar and pointer type,
including unaligned addresses and cross-address-space slice copies.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import F32, F64, I1, I8, I16, I32, I64, RAW_PTR
from repro.memory import make_cpu_memory
from repro.memory.flatmem import copy_across, scalar_struct
from repro.memory.layout import HEAP_BASE

SCALAR_TYPES = (I1, I8, I16, I32, I64, F32, F64, RAW_PTR)

_INT_BITS = {I1: 1, I8: 8, I16: 16, I32: 32, I64: 64}


def _values_for(type_):
    if type_ in _INT_BITS:
        bits = _INT_BITS[type_]
        return st.integers(min_value=-(2 ** 63), max_value=2 ** 64 - 1) \
            if bits == 64 else st.integers(min_value=-(2 ** bits),
                                           max_value=2 ** bits - 1)
    if type_ is RAW_PTR:
        return st.integers(min_value=0, max_value=2 ** 64 - 1)
    if type_ is F32:
        return st.floats(width=32, allow_nan=False)
    return st.floats(allow_nan=False)


@st.composite
def typed_accesses(draw):
    type_ = draw(st.sampled_from(SCALAR_TYPES))
    # Deliberately misaligned offsets included: the typed view must
    # fall back to the codec path and still produce identical bytes.
    offset = draw(st.integers(min_value=0, max_value=257))
    value = draw(_values_for(type_))
    return type_, HEAP_BASE + offset, value


@given(typed_accesses())
@settings(max_examples=300, deadline=None)
def test_store_typed_matches_codec_store(access):
    type_, address, value = access
    size = scalar_struct(type_).size
    legacy = make_cpu_memory()
    typed = make_cpu_memory()
    legacy.store_scalar(address, type_, value)
    typed.store_typed(address, type_, value)
    assert typed.read(address, size) == legacy.read(address, size)
    # ... and both decoders agree on the decoded value as well.
    decoded_codec = legacy.load_scalar(address, type_)
    decoded_view = typed.load_typed(address, type_)
    if isinstance(decoded_codec, float) and math.isnan(decoded_codec):
        assert math.isnan(decoded_view)
    else:
        assert decoded_view == decoded_codec


@given(typed_accesses())
@settings(max_examples=300, deadline=None)
def test_load_typed_matches_codec_load(access):
    type_, address, value = access
    memory = make_cpu_memory()
    memory.store_scalar(address, type_, value)
    via_codec = memory.load_scalar(address, type_)
    via_view = memory.load_typed(address, type_)
    if isinstance(via_codec, float) and math.isnan(via_codec):
        assert math.isnan(via_view)
    else:
        assert via_view == via_codec


@given(payload=st.binary(min_size=0, max_size=300),
       src_offset=st.integers(min_value=0, max_value=129),
       dst_offset=st.integers(min_value=0, max_value=129))
@settings(max_examples=200, deadline=None)
def test_copy_across_round_trip(payload, src_offset, dst_offset):
    """Cross-unit slice transfers move exactly the bytes written,
    at arbitrary (unaligned) offsets, in both directions."""
    host = make_cpu_memory()
    device = make_cpu_memory()
    host.write(HEAP_BASE + src_offset, payload)
    copy_across(host, HEAP_BASE + src_offset,
                device, HEAP_BASE + dst_offset, len(payload))
    assert device.read(HEAP_BASE + dst_offset, len(payload)) == payload
    # Round-trip back into a different spot of the source space.
    back = HEAP_BASE + src_offset + 512
    copy_across(device, HEAP_BASE + dst_offset, host, back,
                len(payload))
    assert host.read(back, len(payload)) == payload


@given(st.integers(min_value=0, max_value=63),
       st.lists(st.integers(min_value=0, max_value=2 ** 64 - 1),
                min_size=0, max_size=40))
@settings(max_examples=200, deadline=None)
def test_read_u64_array_matches_scalar_loads(offset, values):
    memory = make_cpu_memory()
    base = HEAP_BASE + offset * 8
    for i, value in enumerate(values):
        memory.store_scalar(base + 8 * i, I64, value)
    array = memory.read_u64_array(base, len(values))
    expected = [memory.load_scalar(base + 8 * i, I64) & (2 ** 64 - 1)
                for i in range(len(values))]
    assert [v & (2 ** 64 - 1) for v in array] == expected
