"""Tests for the segmented flat memory."""

import pytest

from repro.errors import MemoryFault
from repro.ir import F32, F64, I8, I64, pointer_to
from repro.memory import FlatMemory, make_cpu_memory
from repro.memory.layout import (DEVICE_BASE, GLOBALS_BASE, HEAP_BASE,
                                 STACK_BASE, is_device_address)


@pytest.fixture
def memory():
    return make_cpu_memory()


class TestSegments:
    def test_standard_layout(self, memory):
        assert memory.segment("globals").base == GLOBALS_BASE
        assert memory.segment("heap").base == HEAP_BASE
        assert memory.segment("stack").base == STACK_BASE

    def test_overlapping_segments_rejected(self):
        memory = FlatMemory()
        memory.add_segment("a", 0x1000, 0x1000)
        with pytest.raises(MemoryFault):
            memory.add_segment("b", 0x1800, 0x1000)

    def test_device_range_is_foreign(self, memory):
        assert is_device_address(DEVICE_BASE)
        with pytest.raises(MemoryFault, match="foreign or wild"):
            memory.read(DEVICE_BASE, 8)

    def test_wild_pointer_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.write(0x10, b"x")

    def test_segment_overflow_faults(self, memory):
        heap = memory.segment("heap")
        with pytest.raises(MemoryFault, match="overruns"):
            memory.read(heap.limit - 4, 8)


class TestRawAccess:
    def test_write_read_roundtrip(self, memory):
        memory.write(HEAP_BASE + 16, b"hello world")
        assert memory.read(HEAP_BASE + 16, 11) == b"hello world"

    def test_unwritten_memory_reads_zero(self, memory):
        assert memory.read(HEAP_BASE + 100, 4) == b"\x00" * 4

    def test_fill(self, memory):
        memory.fill(HEAP_BASE, 8, 0xAB)
        assert memory.read(HEAP_BASE, 8) == b"\xab" * 8

    def test_c_string(self, memory):
        memory.write(GLOBALS_BASE, b"repro\x00junk")
        assert memory.read_c_string(GLOBALS_BASE) == b"repro"

    def test_unterminated_c_string(self, memory):
        memory.write(GLOBALS_BASE, b"x" * 64)
        with pytest.raises(MemoryFault, match="unterminated"):
            memory.read_c_string(GLOBALS_BASE, max_len=32)

    def test_negative_size_rejected(self, memory):
        with pytest.raises(MemoryFault):
            memory.read(HEAP_BASE, -1)


class TestTypedAccess:
    @pytest.mark.parametrize("type_,value", [
        (I8, -5), (I64, 1 << 40), (F32, 1.5), (F64, -2.25),
    ])
    def test_scalar_roundtrip(self, memory, type_, value):
        memory.store_scalar(HEAP_BASE, type_, value)
        assert memory.load_scalar(HEAP_BASE, type_) == value

    def test_integer_store_wraps(self, memory):
        memory.store_scalar(HEAP_BASE, I8, 300)
        assert memory.load_scalar(HEAP_BASE, I8) == 44

    def test_f32_store_rounds(self, memory):
        memory.store_scalar(HEAP_BASE, F32, 0.1)
        loaded = memory.load_scalar(HEAP_BASE, F32)
        assert loaded != 0.1  # f32 precision
        assert abs(loaded - 0.1) < 1e-7

    def test_pointer_roundtrip(self, memory):
        ptr_type = pointer_to(F64)
        memory.store_scalar(HEAP_BASE, ptr_type, STACK_BASE + 8)
        assert memory.load_scalar(HEAP_BASE, ptr_type) == STACK_BASE + 8

    def test_little_endian_layout(self, memory):
        memory.store_scalar(HEAP_BASE, I64, 1)
        assert memory.read(HEAP_BASE, 8) == b"\x01" + b"\x00" * 7


class TestScalarFastPath:
    """The hoisted struct.Struct codecs and the segment cache."""

    def test_scalar_struct_is_precompiled_and_shared(self):
        from repro.memory.flatmem import scalar_struct
        import struct as struct_mod
        codec = scalar_struct(I64)
        assert isinstance(codec, struct_mod.Struct)
        assert codec is scalar_struct(I64)
        assert codec.size == 8
        assert scalar_struct(pointer_to(F64)).format in ("<Q", b"<Q")

    def test_segment_cache_does_not_leak_across_segments(self, memory):
        # Warm the cache on the heap, then access a different segment
        # and a wild address: correctness must not depend on the cache.
        memory.store_scalar(HEAP_BASE, I64, 7)
        memory.store_scalar(STACK_BASE, I64, 9)
        assert memory.load_scalar(HEAP_BASE, I64) == 7
        assert memory.load_scalar(STACK_BASE, I64) == 9
        with pytest.raises(MemoryFault):
            memory.load_scalar(DEVICE_BASE, I64)  # not in this space

    def test_cached_segment_bounds_still_enforced(self, memory):
        heap = memory.segment("heap")
        memory.store_scalar(HEAP_BASE, I8, 1)  # cache the heap segment
        with pytest.raises(MemoryFault):
            memory.load_scalar(heap.limit - 4, I64)  # 8 bytes, 4 left
