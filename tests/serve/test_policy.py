"""Unit tests for admission/scheduling policies and requests."""

import pytest

from repro.errors import ConfigError
from repro.serve import (FairSharePolicy, FifoPolicy, ServeRequest,
                         make_policy)


def req(rid, arrival=0.0, tenant="default"):
    return ServeRequest(request_id=rid, arrival_s=arrival, tenant=tenant,
                        source="int main(void) { return 0; }")


class TestFifo:
    def test_picks_earliest_arrival(self):
        pending = [req(3, 0.2), req(1, 0.1), req(2, 0.3)]
        chosen = FifoPolicy().select(pending, 1.0, {})
        assert chosen.request_id == 1

    def test_ties_break_on_request_id(self):
        pending = [req(5), req(2), req(9)]
        assert FifoPolicy().select(pending, 0.0, {}).request_id == 2


class TestFairShare:
    def test_least_served_tenant_first(self):
        pending = [req(1, 0.0, "hog"), req(2, 0.5, "quiet")]
        service = {"hog": 1.0, "quiet": 0.0}
        chosen = FairSharePolicy().select(pending, 1.0, service)
        assert chosen.request_id == 2

    def test_unserved_tenant_counts_as_zero(self):
        pending = [req(1, 0.0, "hog"), req(2, 0.5, "new")]
        chosen = FairSharePolicy().select(pending, 1.0, {"hog": 0.5})
        assert chosen.request_id == 2

    def test_within_tenant_arrival_order(self):
        pending = [req(2, 0.4, "t"), req(1, 0.1, "t")]
        assert FairSharePolicy().select(pending, 1.0, {}).request_id == 1


class TestMakePolicy:
    def test_names_resolve(self):
        assert make_policy("fifo").name == "fifo"
        assert make_policy("fair").name == "fair"

    def test_policy_objects_pass_through(self):
        policy = FifoPolicy()
        assert make_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown serve policy"):
            make_policy("round-robin")

    def test_selectless_object_rejected(self):
        with pytest.raises(ConfigError, match="select"):
            make_policy(object())


class TestResolveSource:
    def test_workload_requests_resolve_to_ported_source(self):
        source, artifact = ServeRequest(
            request_id=0, workload="atax").resolve_source()
        assert artifact == "atax"
        assert "main" in source

    def test_source_requests_substitute_args(self):
        source, artifact = ServeRequest(
            request_id=0,
            source="int main(void) { print_i64(__ARG0__); return 0; }",
            args=("7",)).resolve_source()
        assert "print_i64(7)" in source
        assert artifact.startswith("serve-")

    def test_distinct_args_are_distinct_artifacts(self):
        template = "int main(void) { print_i64(__ARG0__); return 0; }"
        _, a = ServeRequest(request_id=0, source=template,
                            args=("1",)).resolve_source()
        _, b = ServeRequest(request_id=1, source=template,
                            args=("2",)).resolve_source()
        assert a != b

    def test_neither_or_both_targets_rejected(self):
        with pytest.raises(ConfigError, match="exactly one"):
            ServeRequest(request_id=0).resolve_source()
        with pytest.raises(ConfigError, match="exactly one"):
            ServeRequest(request_id=0, workload="atax",
                         source="int main(void) { return 0; }"
                         ).resolve_source()

    def test_workload_requests_take_no_args(self):
        with pytest.raises(ConfigError, match="takes no arguments"):
            ServeRequest(request_id=0, workload="atax",
                         args=("1",)).resolve_source()
