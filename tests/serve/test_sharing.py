"""Unit tests for the shared-mapping registry."""

from repro.serve.sharing import SharedMappingRegistry

CONTENT = bytes(range(64)) * 4


class TestAttach:
    def test_no_active_request_never_shares(self):
        registry = SharedMappingRegistry()
        assert registry.attach("W", CONTENT) is False
        assert registry.stats()["first_copies"] == 0

    def test_first_holder_pays_the_copy(self):
        registry = SharedMappingRegistry()
        registry.set_active(1)
        assert registry.attach("W", CONTENT) is False
        assert registry.first_copies == 1
        assert registry.bytes_saved == 0

    def test_second_in_flight_holder_shares(self):
        registry = SharedMappingRegistry()
        registry.set_active(1)
        registry.attach("W", CONTENT)
        registry.set_active(2)
        assert registry.attach("W", CONTENT) is True
        assert registry.attaches == 1
        assert registry.bytes_saved == len(CONTENT)
        assert registry.live_entries == 1

    def test_different_content_same_label_does_not_share(self):
        registry = SharedMappingRegistry()
        registry.set_active(1)
        registry.attach("W", CONTENT)
        registry.set_active(2)
        assert registry.attach("W", b"\x00" * len(CONTENT)) is False
        assert registry.first_copies == 2
        assert registry.live_entries == 2

    def test_same_request_reattach_shares_with_itself_only_once(self):
        registry = SharedMappingRegistry()
        registry.set_active(1)
        registry.attach("W", CONTENT)
        # A re-map within the same run sees the already-held entry.
        assert registry.attach("W", CONTENT) is True


class TestRelease:
    def test_release_frees_holder_less_entries(self):
        registry = SharedMappingRegistry()
        registry.set_active(1)
        registry.attach("W", CONTENT)
        registry.release(1)
        assert registry.live_entries == 0

    def test_entry_survives_while_another_holder_lives(self):
        registry = SharedMappingRegistry()
        registry.set_active(1)
        registry.attach("W", CONTENT)
        registry.set_active(2)
        registry.attach("W", CONTENT)
        registry.release(1)
        assert registry.live_entries == 1
        registry.release(2)
        assert registry.live_entries == 0

    def test_departed_request_does_not_seed_future_sharing(self):
        # Sharing is only across *in-flight* requests: once the sole
        # holder completes, a later request pays its own first copy.
        registry = SharedMappingRegistry()
        registry.set_active(1)
        registry.attach("W", CONTENT)
        registry.release(1)
        registry.set_active(2)
        assert registry.attach("W", CONTENT) is False
        assert registry.first_copies == 2

    def test_release_unknown_request_is_a_noop(self):
        registry = SharedMappingRegistry()
        registry.release(99)
        assert registry.stats()["live_entries"] == 0
