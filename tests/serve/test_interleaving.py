"""Concurrent-request interleavings never change what a request computes.

The serve loop's ``shuffle_seed`` perturbs the pending-queue view
before every policy pick, standing in for arbitrary scheduler
interleavings.  Whatever the dispatch order -- and whatever else is in
flight (batch partners, shared mappings, fault schedules, tenant quota
pressure) -- every request's observables must equal an isolated
sequential run of the same artifact, byte for byte.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.core import CgcmConfig
from repro.gpu.faults import FaultPlan
from repro.serve import ServeLoop, ServeOptions, TenantSpec
from repro.serve.mixes import QUOTA_SOURCE, build_mix


@pytest.fixture(autouse=True)
def fresh_cache():
    api.clear_cache()
    yield
    api.clear_cache()


def isolated_observables(requests, config=None):
    """One isolated (fresh machine, no sharing, no batching) run per
    distinct artifact."""
    isolated = {}
    for request in requests:
        source, artifact = request.resolve_source()
        if artifact not in isolated:
            workload = api.compile_workload(
                source, config, name=artifact)
            isolated[artifact] = workload.run().observable()
    return isolated


def assert_byte_identical(report, isolated, expect_ok=None):
    ok = [m for m in report.metrics if m.status == "ok"]
    if expect_ok is not None:
        assert len(ok) == expect_ok
    assert ok, "nothing served"
    for m in ok:
        assert m.observable == isolated[m.artifact], \
            f"request {m.request_id} diverged from its isolated run"


class TestShuffledInterleavings:
    @pytest.mark.parametrize("policy", ["fifo", "fair"])
    @pytest.mark.parametrize("shuffle_seed", [None, 1, 2, 3])
    def test_mix_outputs_match_isolated_runs(self, policy, shuffle_seed):
        requests = build_mix(15, tenants=("a", "b", "c"))
        isolated = isolated_observables(requests)
        report = ServeLoop(ServeOptions(
            policy=policy, shuffle_seed=shuffle_seed,
            workers=3)).run(requests)
        assert_byte_identical(report, isolated, expect_ok=15)

    def test_shuffles_are_deterministic_per_seed(self):
        requests = build_mix(12)
        runs = [ServeLoop(ServeOptions(shuffle_seed=7)).run(requests)
                for _ in range(2)]
        assert [m.dispatch_s for m in runs[0].metrics] \
            == [m.dispatch_s for m in runs[1].metrics]

    @settings(max_examples=15, deadline=None)
    @given(shuffle_seed=st.integers(0, 2 ** 32 - 1),
           workers=st.integers(1, 5))
    def test_any_interleaving_is_byte_identical(self, shuffle_seed,
                                                workers):
        requests = build_mix(10, tenants=("a", "b"))
        isolated = isolated_observables(requests)
        report = ServeLoop(ServeOptions(
            shuffle_seed=shuffle_seed, workers=workers,
            policy="fair")).run(requests)
        assert_byte_identical(report, isolated, expect_ok=10)


class TestUnderFaults:
    @pytest.mark.parametrize("shuffle_seed", [None, 11])
    def test_faulted_serve_matches_isolated_faulted_runs(self,
                                                         shuffle_seed):
        # The per-request fault schedule is part of the config (and so
        # of the artifact identity): isolated runs replay it exactly.
        config = CgcmConfig(faults=FaultPlan(
            seed=5, alloc_fail_rate=0.3, transfer_fail_rate=0.15,
            launch_fail_rate=0.15))
        requests = build_mix(9)
        isolated = isolated_observables(requests, config)
        report = ServeLoop(ServeOptions(
            base_config=config, shuffle_seed=shuffle_seed)).run(requests)
        assert_byte_identical(report, isolated, expect_ok=9)

    def test_faulted_serve_matches_fault_free_outputs(self):
        plain = isolated_observables(build_mix(9))
        config = CgcmConfig(faults=FaultPlan(
            seed=5, alloc_fail_rate=0.3, transfer_fail_rate=0.15,
            launch_fail_rate=0.15))
        report = ServeLoop(ServeOptions(base_config=config)) \
            .run(build_mix(9))
        assert_byte_identical(report, plain, expect_ok=9)


class TestUnderQuotaPressure:
    @pytest.mark.parametrize("shuffle_seed", [None, 3])
    def test_capped_tenants_stay_byte_identical(self, shuffle_seed):
        requests = build_mix(
            8, tenants=("tight", "free"),
            sources=(("quota", QUOTA_SOURCE),),
            args_variants=("1.5", "2.5"))
        isolated = isolated_observables(requests)
        report = ServeLoop(ServeOptions(
            shuffle_seed=shuffle_seed,
            tenants={"tight": TenantSpec(
                "tight", device_heap_limit=24 << 10)})).run(requests)
        assert_byte_identical(report, isolated, expect_ok=8)
        assert report.counters["device_evictions"] > 0

    def test_pressure_with_sanitizer_armed(self):
        requests = build_mix(
            6, tenants=("tight",),
            sources=(("quota", QUOTA_SOURCE),),
            args_variants=("1.5",))
        isolated = isolated_observables(requests)
        report = ServeLoop(ServeOptions(
            sanitize=True,
            tenants={"tight": TenantSpec(
                "tight", device_heap_limit=24 << 10)})).run(requests)
        assert_byte_identical(report, isolated, expect_ok=6)
        assert all(m.sanitizer_clean is True
                   for m in report.metrics if m.status == "ok")
