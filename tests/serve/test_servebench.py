"""Serve benchmark: smoke at small scale, full sweep under -m bench."""

import json

import pytest

from repro import api
from repro.evaluation.servebench import (SERVEBENCH_SCHEMA,
                                         run_serve_bench)


@pytest.fixture(autouse=True)
def fresh_cache():
    api.clear_cache()
    yield
    api.clear_cache()


class TestSmokeSweep:
    def test_small_sweep_verifies_and_serializes(self, tmp_path):
        report = run_serve_bench(scales=(8,), seed=0)
        assert report.ok
        assert report.byte_identity == {8: True}
        assert report.sanitizer_clean == {8: True}
        assert len(report.cells) == 4  # cache x sharing
        assert report.speedup_cache(8) > 1.0
        assert report.h2d_saved_frac(8) > 0.0
        path = tmp_path / "BENCH_serve.json"
        report.write(str(path))
        document = json.loads(path.read_text())
        assert document["schema"] == SERVEBENCH_SCHEMA
        assert document["byte_identity"]["8"] is True
        assert len(document["cells"]) == 4
        assert "speedup_cache_8" in document["derived"]

    def test_render_mentions_every_cell(self):
        report = run_serve_bench(scales=(6,), seed=0, verify=False)
        text = report.render()
        assert text.count("\n") >= 4
        assert "req/s" in text


@pytest.mark.bench
class TestFullSweep:
    def test_default_scales_meet_acceptance(self):
        report = run_serve_bench()
        assert report.ok
        # The acceptance criteria of the serving-runtime issue.
        assert report.speedup_cache(100) >= 5.0
        assert report.h2d_saved_frac(100) > 0.0
        for clients in (10, 100, 1000):
            assert report.byte_identity[clients]
            assert report.sanitizer_clean[clients]
