"""Serve-loop behavior: batching, caching, sharing, quotas, metrics."""

import json

import pytest

from repro import api
from repro.errors import ConfigError
from repro.serve import (ServeLoop, ServeOptions, ServeRequest,
                         TenantSpec, serve)
from repro.serve.mixes import QUOTA_SOURCE, build_mix


@pytest.fixture(autouse=True)
def fresh_cache():
    api.clear_cache()
    yield
    api.clear_cache()


def run_mix(clients=12, seed=0, **options):
    return serve(build_mix(clients, seed=seed), ServeOptions(**options))


class TestBasics:
    def test_burst_serves_every_request(self):
        report = run_mix(12)
        assert len(report.ok) == 12 and not report.rejected
        assert report.makespan_s > 0
        assert report.throughput_rps > 0
        assert report.latency_p99_s >= report.latency_p95_s \
            >= report.latency_p50_s > 0

    def test_deterministic_given_options(self):
        first = run_mix(20, workers=3, policy="fair")
        second = run_mix(20, workers=3, policy="fair")
        assert json.dumps(first.to_json(), sort_keys=True) \
            == json.dumps(second.to_json(), sort_keys=True)

    def test_workload_name_requests_serve(self):
        report = serve([ServeRequest(request_id=0, workload="atax")])
        assert len(report.ok) == 1
        assert report.metrics[0].artifact == "atax"
        assert report.metrics[0].stdout

    def test_malformed_source_rejected_not_crashed(self):
        requests = [ServeRequest(request_id=0, source="int main(\n"),
                    ServeRequest(request_id=1,
                                 source="int main(void) { return 0; }")]
        report = serve(requests)
        assert [m.status for m in report.metrics] == ["rejected", "ok"]
        assert report.metrics[0].reason

    def test_options_validated(self):
        with pytest.raises(ConfigError, match="workers"):
            ServeLoop(ServeOptions(workers=0))
        with pytest.raises(ConfigError, match="batch_limit"):
            ServeLoop(ServeOptions(batch_limit=0))

    def test_queue_wait_and_latency_metrics(self):
        report = run_mix(16, workers=2)
        waited = [m for m in report.ok if m.queue_wait_s > 0]
        assert waited, "a 16-burst on 2 workers must queue someone"
        for m in report.ok:
            assert m.complete_s >= m.dispatch_s >= m.arrival_s
            assert m.latency_s >= m.queue_wait_s


class TestCompileCache:
    def test_distinct_artifacts_miss_once_then_hit(self):
        # The default mix is 3 programs x 2 argument variants.
        report = run_mix(18)
        assert report.counters["compile_misses"] == 6
        assert report.counters["compile_hits"] == 12
        assert sum(1 for m in report.ok if not m.compile_hit) == 6

    def test_cache_off_charges_every_request(self):
        report = run_mix(18, cache=False)
        assert report.counters["compile_misses"] == 18
        assert report.counters["compile_hits"] == 0

    def test_cache_off_is_slower(self):
        on = run_mix(18)
        off = run_mix(18, cache=False)
        assert off.makespan_s > on.makespan_s
        assert off.mean_latency_s > on.mean_latency_s

    def test_physical_compilation_happens_once_per_artifact(self):
        run_mix(18, cache=False)
        # Even the cache-off ablation compiles each artifact once
        # physically; only the modelled charge repeats.
        assert api.cache_stats()["misses"] == 6


class TestBatching:
    def test_same_artifact_requests_batch(self):
        report = run_mix(18)
        assert report.counters["batches"] < 18
        assert max(m.batch_size for m in report.ok) > 1

    def test_no_batching_dispatches_singletons(self):
        report = run_mix(12, batching=False)
        assert report.counters["batches"] == 12
        assert all(m.batch_size == 1 for m in report.ok)

    def test_batch_limit_respected(self):
        report = run_mix(18, batch_limit=2)
        assert max(m.batch_size for m in report.ok) <= 2

    def test_batching_lowers_makespan(self):
        batched = run_mix(18)
        alone = run_mix(18, batching=False)
        assert batched.makespan_s < alone.makespan_s

    def test_batched_outputs_equal_unbatched(self):
        batched = run_mix(18)
        alone = run_mix(18, batching=False)
        assert [m.observable for m in batched.ok] \
            == [m.observable for m in alone.ok]


class TestSharing:
    def test_sharing_saves_modelled_h2d_bytes(self):
        shared = run_mix(12)
        assert shared.counters["shared_attaches"] > 0
        assert shared.counters["transfer_bytes_saved"] > 0
        assert shared.counters["htod_bytes"] \
            + shared.counters["transfer_bytes_saved"] \
            == run_mix(12, sharing=False).counters["htod_bytes"]

    def test_sharing_off_saves_nothing(self):
        report = run_mix(12, sharing=False)
        assert report.counters["shared_attaches"] == 0
        assert report.counters["transfer_bytes_saved"] == 0

    def test_sharing_preserves_outputs(self):
        shared = run_mix(12)
        isolated = run_mix(12, sharing=False)
        assert [m.observable for m in shared.ok] \
            == [m.observable for m in isolated.ok]

    def test_sanitizer_verifies_shared_runs(self):
        report = run_mix(9, sanitize=True)
        assert all(m.sanitizer_clean is True for m in report.ok)
        assert report.counters["shared_attaches"] > 0


def quota_requests(count, tenants):
    return build_mix(count, tenants=tenants,
                     sources=(("quota", QUOTA_SOURCE),),
                     args_variants=("1.5",))


class TestTenantQuotas:
    def test_too_small_quota_rejects_up_front(self):
        # QUOTA_SOURCE's largest unit is malloc(16384): an 8 KiB
        # tenant heap can never hold it, so the strict heap-limit
        # check rejects the request instead of degrading forever.
        options = ServeOptions(tenants={
            "tiny": TenantSpec("tiny", device_heap_limit=8 << 10)})
        report = serve(quota_requests(2, ("tiny",)), options)
        assert all(m.status == "rejected" for m in report.metrics)
        assert "largest allocation unit" in report.metrics[0].reason

    def test_tight_quota_drives_eviction_machinery(self):
        options = ServeOptions(tenants={
            "tight": TenantSpec("tight", device_heap_limit=24 << 10)})
        report = serve(quota_requests(4, ("tight",)), options)
        assert all(m.status == "ok" for m in report.metrics)
        assert report.counters["device_evictions"] > 0

    def test_quota_pressure_is_byte_identical_to_uncapped(self):
        capped = serve(quota_requests(4, ("tight",)), ServeOptions(
            tenants={"tight": TenantSpec("tight",
                                         device_heap_limit=24 << 10)}))
        free = serve(quota_requests(4, ("roomy",)), ServeOptions())
        assert [m.observable for m in capped.ok] \
            == [m.observable for m in free.ok]

    def test_quotas_isolate_tenants(self):
        # The capped tenant suffers; the uncapped one serves clean.
        options = ServeOptions(tenants={
            "gold": TenantSpec("gold"),
            "tiny": TenantSpec("tiny", device_heap_limit=8 << 10)})
        report = serve(quota_requests(6, ("gold", "tiny")), options)
        by_tenant = report.tenants
        assert by_tenant["gold"]["ok"] == 3
        assert by_tenant["tiny"]["rejected"] == 3

    def test_tenant_quotas_share_one_artifact(self):
        options = ServeOptions(tenants={
            "a": TenantSpec("a"),
            "b": TenantSpec("b", device_heap_limit=24 << 10)})
        report = serve(quota_requests(4, ("a", "b")), options)
        # Heap quotas are execution-time knobs, not compile-time
        # config: both tenants reuse one compiled artifact.
        assert report.counters["compile_misses"] == 1
        assert all(m.status == "ok" for m in report.metrics)
        # The capped tenant still feels its quota at run time.
        assert report.counters["device_evictions"] > 0


class TestPolicies:
    def test_fair_share_balances_tenant_service(self):
        # One tenant floods 9 requests at t=0, the other sends 3
        # late; fair-share lets the light tenant jump the flood.
        requests = []
        for index in range(9):
            requests.append(ServeRequest(
                request_id=index, arrival_s=0.0, tenant="hog",
                source="int main(void) { print_i64(__ARG0__); return 0; }",
                args=(str(index % 2),)))
        for index in range(9, 12):
            requests.append(ServeRequest(
                request_id=index, arrival_s=2e-5, tenant="light",
                source="int main(void) { print_i64(9); return 0; }"))
        # One worker, no batching, full compile charge per request:
        # the flood queues long enough for policy order to matter.
        fifo = serve(requests, ServeOptions(
            workers=1, policy="fifo", batching=False, cache=False))
        fair = serve(requests, ServeOptions(
            workers=1, policy="fair", batching=False, cache=False))
        fifo_light = fifo.tenants["light"]["mean_latency_s"]
        fair_light = fair.tenants["light"]["mean_latency_s"]
        assert fair_light < fifo_light
        assert len(fair.ok) == len(fifo.ok) == 12

    def test_policies_serve_identical_outputs(self):
        requests = build_mix(12, tenants=("a", "b"))
        fifo = serve(requests, ServeOptions(policy="fifo"))
        fair = serve(requests, ServeOptions(policy="fair"))
        observables = lambda r: {m.request_id: m.observable
                                 for m in r.metrics}
        assert observables(fifo) == observables(fair)


class TestTrace:
    def test_per_request_tracks_recorded(self):
        report = serve(build_mix(4, arrival_spread_s=1e-3),
                       ServeOptions(record_events=True, workers=1))
        tracks = {e.track for e in report.events if e.track}
        for rid in range(4):
            assert f"req{rid}" in tracks
        labels = {e.label for e in report.events}
        assert any(l.startswith("admit") for l in labels)
        assert any(l.startswith("compile") for l in labels)
        assert any(l.startswith("xfer") for l in labels)
        assert "queued" in labels
