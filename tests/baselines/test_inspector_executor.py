"""Inspector-executor baseline tests (paper section 6.3 idealization)."""

import pytest

from repro.baselines import (INSPECTION_OPS_PER_ACCESS,
                             InspectorExecutorMachine)
from repro.core import CgcmCompiler, CgcmConfig, OptLevel
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.transforms import DoallParallelizer

PROGRAM = r"""
double A[32];
double B[32];
int main(void) {
    for (int i = 0; i < 32; i++) { A[i] = i; B[i] = 2 * i; }
    for (int t = 0; t < 4; t++) {
        for (int i = 0; i < 32; i++)
            A[i] = A[i] * 0.5 + B[i];
    }
    double s = 0.0;
    for (int i = 0; i < 32; i++) s += A[i];
    print_f64(s);
    return 0;
}
"""


def run_ie(source=PROGRAM):
    module = compile_minic(source, "ie")
    DoallParallelizer(module).run()
    machine = InspectorExecutorMachine(module)
    machine.run()
    return machine


class TestCorrectness:
    def test_matches_sequential(self):
        seq = Machine(compile_minic(PROGRAM))
        seq.run()
        ie = run_ie()
        assert ie.stdout == seq.stdout

    def test_heap_programs(self):
        source = r"""
        int main(void) {
            double *xs = (double *) malloc(16 * sizeof(double));
            for (int i = 0; i < 16; i++) xs[i] = i * 1.5;
            double s = 0.0;
            for (int i = 0; i < 16; i++) s += xs[i];
            print_f64(s);
            return 0;
        }
        """
        seq = Machine(compile_minic(source))
        seq.run()
        ie = run_ie(source)
        assert ie.stdout == seq.stdout


class TestCostModel:
    def test_transfers_one_byte_per_unit(self):
        """Oracle transfers: bytes moved = accessed allocation units,
        not array sizes."""
        ie = run_ie()
        launches = ie.clock.counters["kernel_launches"]
        # Two arrays accessed per compute launch: at most 2 bytes in.
        assert ie.clock.counters["htod_bytes"] <= 3 * launches
        # Far less than the 256-byte arrays a full copy would move.
        assert ie.clock.counters["htod_bytes"] < 64

    def test_inspection_charges_cpu_time(self):
        ie = run_ie()
        accesses = ie.clock.counters["ie_accesses"]
        assert accesses > 0
        expected = ie.clock.model.cpu_time(
            accesses * INSPECTION_OPS_PER_ACCESS)
        # CPU lane includes inspection plus ordinary CPU execution.
        assert ie.clock.cpu_seconds > expected * 0.9

    def test_pattern_is_cyclic(self):
        """Every launch syncs both directions (the defining weakness)."""
        ie = run_ie()
        launches = ie.clock.counters["kernel_launches"]
        assert ie.clock.counters["htod_copies"] == launches
        assert ie.clock.counters["dtoh_copies"] == launches

    def test_written_units_counted(self):
        ie = run_ie()
        assert ie.clock.counters["ie_written_units"] >= 1
        assert ie.clock.counters["ie_read_units"] >= \
            ie.clock.counters["ie_written_units"]


class TestComparisonShape:
    def test_ie_between_unopt_and_opt_on_time_loops(self):
        """On a time-stepped workload: unopt < IE (fewer bytes) and
        IE < opt (still cyclic + sequential inspection)."""
        results = {}
        for level in (OptLevel.SEQUENTIAL, OptLevel.UNOPTIMIZED,
                      OptLevel.OPTIMIZED):
            compiler = CgcmCompiler(CgcmConfig(opt_level=level))
            report = compiler.compile_source(PROGRAM, "cmp")
            results[level] = compiler.execute(report)
        ie = run_ie()
        seq = results[OptLevel.SEQUENTIAL].total_seconds
        assert ie.clock.total_seconds < \
            results[OptLevel.UNOPTIMIZED].total_seconds
        assert results[OptLevel.OPTIMIZED].total_seconds < \
            ie.clock.total_seconds
