"""Applicability analysis tests (Table 1 / Table 3 support)."""

import pytest

from repro.baselines import analyze_module
from repro.frontend import compile_minic
from repro.transforms import DoallParallelizer


def analyzed(source):
    module = compile_minic(source)
    DoallParallelizer(module).run()
    return analyze_module(module)


class TestNamedRegionCriteria:
    def test_simple_global_kernel_fully_applicable(self):
        result = analyzed("""
        double A[16];
        int main(void) {
            for (int i = 0; i < 16; i++) A[i] = i * 2.0;
            return 0;
        }""")
        assert result.total_kernels == 1
        assert result.cgcm == 1
        assert result.inspector_executor == 1
        assert result.named_regions == 1

    def test_heap_data_defeats_prior_techniques(self):
        """malloc'd buffers are not named regions."""
        result = analyzed("""
        int main(void) {
            double *xs = (double *) malloc(16 * sizeof(double));
            for (int i = 0; i < 16; i++) xs[i] = i;
            double s = 0.0;
            for (int i = 0; i < 16; i++) s += xs[i];
            print_f64(s);
            free(xs);
            return 0;
        }""")
        assert result.total_kernels == 1
        assert result.cgcm == 1
        assert result.inspector_executor == 0
        assert result.named_regions == 0

    def test_irregular_indexing_defeats_named_regions_only(self):
        """Index arrays are fine for IE (it inspects) but not for
        induction-based named regions."""
        result = analyzed("""
        double values[32];
        double out[16];
        long idx[16];
        int main(void) {
            for (int i = 0; i < 32; i++) values[i] = i;
            for (int i = 0; i < 16; i++) idx[i] = (i * 5) % 32;
            for (int i = 0; i < 16; i++) out[i] = values[idx[i]];
            double s = 0.0;
            for (int i = 0; i < 16; i++) s += out[i];
            print_f64(s);
            return 0;
        }""")
        gather = [d for d in result.details if d.cgcm]
        assert result.cgcm == result.total_kernels
        assert result.named_regions < result.total_kernels

    def test_double_indirection_only_cgcm(self):
        source = """
        char *rows[4];
        __global__ void poke(long tid, char **rs) {
            char *row = rs[tid];
            row[0] = (char) tid;
        }
        int main(void) {
            for (int r = 0; r < 4; r++) rows[r] = (char *) malloc(8);
            __launch(poke, 4, rows);
            return 0;
        }
        """
        module = compile_minic(source)
        result = analyze_module(module)
        assert result.total_kernels == 1
        assert result.cgcm == 1
        assert result.inspector_executor == 0
        assert result.named_regions == 0

    def test_triple_indirection_defeats_even_cgcm(self):
        source = """
        char ***deep;
        __global__ void bad(long tid, char ***d) {
            char **mid = d[tid];
            char *leaf = mid[0];
            leaf[0] = 1;
        }
        int main(void) {
            __launch(bad, 1, deep);
            return 0;
        }
        """
        module = compile_minic(source)
        result = analyze_module(module)
        assert result.cgcm == 0

    def test_ordering_invariant(self):
        """named_regions <= inspector_executor <= total everywhere."""
        result = analyzed("""
        double A[8][8];
        double B[8][8];
        int main(void) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++) A[i][j] = i + j;
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++) B[i][j] = A[i][j] * 2.0;
            return 0;
        }""")
        assert result.named_regions <= result.inspector_executor
        assert result.inspector_executor <= result.total_kernels
