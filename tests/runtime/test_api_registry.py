"""The unified runtime-API registry is the single source of truth.

Every consumer (transforms, static checkers, alias analysis,
sanitizer, the interpreter's external bindings) derives its name
tables from :mod:`repro.runtime.api`; these tests pin the registry's
internal consistency and that the runtime implements exactly the
registered surface -- the drift these string tables used to suffer.
"""

from repro.frontend import compile_minic
from repro.interp import Machine
from repro.runtime import CgcmRuntime, declare_runtime
from repro.runtime import api


class TestRegistryConsistency:
    def test_every_name_registered_once(self):
        assert len(api.RUNTIME_FUNCTION_NAMES) \
            == len(set(api.RUNTIME_FUNCTION_NAMES)) == 13

    def test_families_partition_the_unit_operations(self):
        families = (set(api.MAP_FUNCTIONS) | set(api.UNMAP_FUNCTIONS)
                    | set(api.RELEASE_FUNCTIONS))
        declares = {ep.name for ep in api.ENTRY_POINTS.values()
                    if ep.op is api.EntryOp.DECLARE}
        assert families | declares | {api.SYNC_FUNCTION} \
            == set(api.RUNTIME_FUNCTION_NAMES)
        assert not (set(api.MAP_FUNCTIONS) & set(api.UNMAP_FUNCTIONS))
        assert not (set(api.MAP_FUNCTIONS) & set(api.RELEASE_FUNCTIONS))

    def test_async_twins_are_symmetric(self):
        for sync_name, async_name in api.ASYNC_VARIANTS.items():
            sync_ep, async_ep = api.entry(sync_name), api.entry(async_name)
            assert not sync_ep.is_async and async_ep.is_async
            assert async_ep.twin == sync_name
            assert async_ep.op is sync_ep.op
            assert async_ep.unit_kind is sync_ep.unit_kind
            assert async_ep.signature == sync_ep.signature
        assert set(api.ASYNC_VARIANTS.values()) \
            == set(api.ASYNC_RUNTIME_FUNCTIONS)

    def test_release_has_no_async_twin(self):
        """Frees are stream-ordered by the runtime itself; the
        transform never rewrites a release to an async name."""
        for name in api.RELEASE_FUNCTIONS:
            assert api.entry(name).twin is None

    def test_depth_helpers_round_trip(self):
        assert api.map_name(1) == "map"
        assert api.map_name(2) == "mapArray"
        assert api.unmap_name(2) == "unmapArray"
        assert api.release_name(2) == "releaseArray"
        for depth in (1, 2):
            for helper in (api.map_name, api.unmap_name,
                           api.release_name):
                assert api.is_runtime_call(helper(depth))

    def test_modref_summary_matches_operation(self):
        """map ships host bytes (reads), unmap lands them (writes);
        this is what the analyses' coherence treatment relies on."""
        for ep in api.ENTRY_POINTS.values():
            assert ep.reads_host == (ep.op is api.EntryOp.MAP)
            assert ep.writes_host == (ep.op is api.EntryOp.UNMAP)


class TestRuntimeImplementsRegistry:
    def test_externals_cover_every_entry_point(self):
        machine = Machine(compile_minic("int main(void) { return 0; }"))
        before = set(machine.externals)
        CgcmRuntime(machine)
        installed = set(machine.externals) - before
        assert set(api.RUNTIME_FUNCTION_NAMES) <= installed
        for name in api.RUNTIME_FUNCTION_NAMES:
            assert machine.external_types[name] == api.entry(name).signature

    def test_declare_runtime_declares_the_registry(self):
        module = compile_minic("int main(void) { return 0; }")
        declared = declare_runtime(module)
        assert set(declared) == set(api.RUNTIME_FUNCTION_NAMES)

    def test_cgcm_reexports_for_compatibility(self):
        from repro.runtime import cgcm
        assert cgcm.RUNTIME_SIGNATURES is api.RUNTIME_SIGNATURES
        assert cgcm.RUNTIME_FUNCTION_NAMES is api.RUNTIME_FUNCTION_NAMES
