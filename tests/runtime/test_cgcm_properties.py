"""Property-based tests of the run-time library against a model.

Hypothesis drives random sequences of map/unmap/release/launch events
on a handful of allocation units and checks the run-time against a
simple reference model of what CGCM guarantees:

* reference counts never go negative and device buffers live exactly
  while the count is positive,
* after an ``unmap`` the CPU copy equals the device copy,
* at most one DtoH copy happens per unit per epoch,
* interior pointers always translate to base-relative offsets.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CgcmRuntimeError
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.ir import F64
from repro.runtime import CgcmRuntime

UNIT_COUNT = 3
UNIT_ELEMS = 4

SOURCE = "\n".join(
    f"double unit{i}[{UNIT_ELEMS}];" for i in range(UNIT_COUNT)
) + "\nint main(void) { return 0; }"


def fresh():
    machine = Machine(compile_minic(SOURCE))
    runtime = CgcmRuntime(machine)
    runtime.declare_all_globals()
    bases = [machine.global_address(f"unit{i}") for i in range(UNIT_COUNT)]
    return machine, runtime, bases


class _Model:
    """Reference semantics for one allocation unit."""

    def __init__(self):
        self.refs = 0
        self.copies_in = 0
        self.copies_out = 0


operations = st.lists(
    st.tuples(
        st.sampled_from(["map", "unmap", "release", "launch",
                         "cpu_write", "gpu_write"]),
        st.integers(0, UNIT_COUNT - 1),
        st.integers(0, UNIT_ELEMS - 1),
    ),
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(operations)
def test_runtime_against_model(ops):
    machine, runtime, bases = fresh()
    models = [_Model() for _ in range(UNIT_COUNT)]
    value_counter = 1.0

    for op, unit, elem in ops:
        base = bases[unit]
        model = models[unit]
        address = base + elem * 8
        if op == "map":
            device = runtime.map_ptr(address)
            model.refs += 1
            # Interior pointers keep their offset (Algorithm 1).
            info = runtime.info_for(base)
            assert device == info.device_ptr + elem * 8
        elif op == "unmap":
            if model.refs > 0:
                runtime.unmap_ptr(address)
                info = runtime.info_for(base)
                device_bytes = machine.device.memory.read(
                    info.device_ptr, info.size)
                host_bytes = machine.cpu_memory.read(base, info.size)
                assert device_bytes == host_bytes
        elif op == "release":
            if model.refs > 0:
                runtime.release_ptr(address)
                model.refs -= 1
            else:
                with pytest.raises(CgcmRuntimeError):
                    runtime.release_ptr(address)
        elif op == "launch":
            runtime.global_epoch += 1
        elif op == "cpu_write":
            if model.refs == 0:  # CPU only touches unmapped units
                value_counter += 1.0
                machine.cpu_memory.store_scalar(address, F64,
                                                value_counter)
        elif op == "gpu_write":
            if model.refs > 0:
                info = runtime.info_for(base)
                value_counter += 1.0
                machine.device.memory.store_scalar(
                    info.device_ptr + elem * 8, F64, value_counter)
                # Only GPU functions modify device memory, and every
                # launch advances the epoch (the run-time's contract).
                runtime.global_epoch += 1

        # Global invariants after every step.
        for check_unit, check_model in zip(bases, models):
            info = runtime.info_for(check_unit)
            assert info.ref_count == check_model.refs
            if check_model.refs > 0:
                assert info.device_ptr is not None


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 6), st.integers(1, 8))
def test_unmap_copies_once_per_epoch(launches, unmaps_per_epoch):
    machine, runtime, bases = fresh()
    runtime.map_ptr(bases[0])
    for _ in range(launches):
        runtime.global_epoch += 1
        before = machine.clock.counters.get("dtoh_copies", 0)
        for _ in range(unmaps_per_epoch):
            runtime.unmap_ptr(bases[0])
        after = machine.clock.counters.get("dtoh_copies", 0)
        assert after - before == 1  # exactly one copy per epoch


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, UNIT_COUNT - 1), min_size=1, max_size=20))
def test_map_release_balance_frees_everything(units):
    machine, runtime, bases = fresh()
    for unit in units:
        runtime.map_ptr(bases[unit])
    for unit in units:
        runtime.release_ptr(bases[unit])
    for base in bases:
        assert runtime.info_for(base).ref_count == 0
    # Globals keep their named regions; nothing on the device heap.
    assert machine.device.live_allocations == 0


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_unmap_reflects_latest_gpu_state(data):
    machine, runtime, bases = fresh()
    base = bases[0]
    device = runtime.map_ptr(base)
    rounds = data.draw(st.integers(1, 5))
    expected = None
    for round_no in range(rounds):
        value = float(data.draw(st.integers(-1000, 1000)))
        machine.device.memory.store_scalar(device, F64, value)
        runtime.global_epoch += 1
        runtime.unmap_ptr(base)
        expected = value
        assert machine.cpu_memory.load_scalar(base, F64) == expected
    runtime.release_ptr(base)
