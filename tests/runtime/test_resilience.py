"""Resilient runtime: eviction, restore, sentinels, CPU fallback
(repro.resilience)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compiler import CgcmCompiler, compile_and_run
from repro.core.config import CgcmConfig, OptLevel
from repro.frontend import compile_minic
from repro.gpu.faults import FaultInjector, FaultPlan
from repro.interp import Machine
from repro.runtime import CgcmRuntime
from repro.runtime.cgcm import _SENTINEL_BASE, AllocationInfo
from repro.workloads import get_workload

SOURCE = "int main(void) { return 0; }"

UNIT_SIZE = 48


def fresh(heap_limit=None, plan=None):
    machine = Machine(
        compile_minic(SOURCE),
        fault_injector=FaultInjector(plan) if plan is not None else None,
        device_heap_limit=heap_limit)
    runtime = CgcmRuntime(machine)
    runtime.declare_all_globals()
    return machine, runtime


def heap_unit(machine, runtime, fill, size=UNIT_SIZE, read_only=False):
    """A malloc-style allocation unit the way the heap hook makes one
    (globals never evict: their device copies are module-resident)."""
    base = machine.heap.malloc(size)
    machine.cpu_memory.write(base, bytes([fill]) * size)
    info = AllocationInfo(base, size, is_read_only=read_only)
    runtime.alloc_map.insert(base, info)
    return base, info


class TestEviction:
    def test_pressure_evicts_lru_and_writes_back_dirty(self):
        """Mapping a second unit under a one-unit cap evicts the
        first; its device-written bytes land back in host memory."""
        machine, runtime = fresh(heap_limit=UNIT_SIZE)
        base_a, info_a = heap_unit(machine, runtime, 0xAA)
        runtime.map_ptr(base_a)
        # A kernel wrote the device copy last epoch.
        machine.device.memory.write(info_a.device_ptr, b"\x11" * UNIT_SIZE)
        runtime.global_epoch += 1

        base_b, info_b = heap_unit(machine, runtime, 0xBB)
        runtime.map_ptr(base_b)

        assert not info_a.resident
        assert info_b.resident
        assert machine.cpu_memory.read(base_a, UNIT_SIZE) == b"\x11" * UNIT_SIZE
        assert machine.clock.counters["device_evictions"] == 1

    def test_clean_unit_evicts_without_copy(self):
        machine, runtime = fresh(heap_limit=UNIT_SIZE)
        base_a, info_a = heap_unit(machine, runtime, 0xAA)
        runtime.map_ptr(base_a)
        copies_before = machine.clock.counters.get("dtoh_copies", 0)
        base_b, _ = heap_unit(machine, runtime, 0xBB)
        runtime.map_ptr(base_b)
        assert not info_a.resident
        # Same-epoch device copy is not newer than the host copy.
        assert machine.clock.counters.get("dtoh_copies", 0) == copies_before
        assert machine.cpu_memory.read(base_a, UNIT_SIZE) == b"\xAA" * UNIT_SIZE

    def test_device_ptr_stable_across_evict_and_restore(self):
        """Translated pointers live in registers across an eviction;
        the unit must re-materialize at the address they were minted
        for, with the host image re-copied."""
        machine, runtime = fresh(heap_limit=2 * UNIT_SIZE)
        base, info = heap_unit(machine, runtime, 0xAA)
        translated = runtime.map_ptr(base + 8)
        minted = info.device_ptr
        assert translated == minted + 8

        runtime._evict(info)
        assert not info.resident and info.device_ptr == minted

        runtime._restore(info)
        assert info.resident and info.device_ptr == minted
        assert machine.device.memory.read(minted, UNIT_SIZE) \
            == machine.cpu_memory.read(base, UNIT_SIZE)
        assert machine.clock.counters["device_restores"] == 1

    def test_evicted_range_never_reissued(self):
        """First-fit would hand the freed range to the next unit;
        the avoid list keeps reverse translation unambiguous."""
        machine, runtime = fresh(heap_limit=UNIT_SIZE)
        base_a, info_a = heap_unit(machine, runtime, 0xAA)
        runtime.map_ptr(base_a)
        minted = info_a.device_ptr
        base_b, info_b = heap_unit(machine, runtime, 0xBB)
        runtime.map_ptr(base_b)
        assert not info_a.resident
        assert info_b.device_ptr != minted


class TestSentinel:
    def test_unit_that_never_fits_gets_sentinel_range(self):
        machine, runtime = fresh(heap_limit=16)
        base, info = heap_unit(machine, runtime, 0xAA)
        translated = runtime.map_ptr(base + 8)
        assert info.device_ptr >= _SENTINEL_BASE
        assert translated == info.device_ptr + 8
        assert not info.resident
        assert machine.clock.counters["sentinel_units"] == 1

    def test_sentinel_unit_unmap_and_release_are_noops_on_device(self):
        """Host bytes are authoritative for a non-resident unit: the
        full map/unmap/release protocol completes without any device
        traffic or error."""
        machine, runtime = fresh(heap_limit=16)
        base, info = heap_unit(machine, runtime, 0xAA)
        runtime.map_ptr(base)
        runtime.global_epoch += 1
        runtime.unmap_ptr(base)
        runtime.release_ptr(base)
        assert info.ref_count == 0 and info.device_ptr is None
        assert machine.cpu_memory.read(base, UNIT_SIZE) == b"\xAA" * UNIT_SIZE


class TestTransientRetry:
    def test_map_rides_out_transfer_faults(self):
        plan = FaultPlan(seed=11, transfer_fail_rate=0.6,
                         max_consecutive=4)
        machine, runtime = fresh(plan=plan)
        base, info = heap_unit(machine, runtime, 0xAA)
        runtime.map_ptr(base)
        assert machine.device.memory.read(info.device_ptr, UNIT_SIZE) \
            == b"\xAA" * UNIT_SIZE
        # Make the device copy newer so unmap must copy back.
        machine.device.memory.write(info.device_ptr, b"\x22" * UNIT_SIZE)
        runtime.global_epoch += 1
        runtime.unmap_ptr(base)
        assert machine.cpu_memory.read(base, UNIT_SIZE) == b"\x22" * UNIT_SIZE
        assert machine.clock.counters["fault_retries"] > 0

    def test_backoff_charges_modelled_time(self):
        plan = FaultPlan(seed=11, transfer_fail_rate=0.6,
                         max_consecutive=4)
        clean_machine, clean_runtime = fresh()
        faulty_machine, faulty_runtime = fresh(plan=plan)
        for machine, runtime in ((clean_machine, clean_runtime),
                                 (faulty_machine, faulty_runtime)):
            base, _ = heap_unit(machine, runtime, 0xAA)
            runtime.map_ptr(base)
        assert faulty_machine.clock.comm_seconds \
            > clean_machine.clock.comm_seconds


dirty_mixes = st.lists(
    st.tuples(st.booleans(),      # kernel wrote the device copy
              st.booleans(),      # unit is read-only
              st.integers(1, 255)),
    min_size=1, max_size=6)


@settings(max_examples=50, deadline=None)
@given(dirty_mixes)
def test_eviction_write_back_preserves_host_bytes(mix):
    """Property: for an arbitrary mix of dirty/clean/read-only mapped
    units, evicting everything leaves each unit's host bytes equal to
    whichever image was authoritative -- the device copy if a kernel
    wrote it (and the unit is writable), the host copy otherwise."""
    machine, runtime = fresh(heap_limit=1 << 20)
    units = []
    for index, (dirty, read_only, fill) in enumerate(mix):
        base, info = heap_unit(machine, runtime, fill,
                               read_only=read_only)
        runtime.map_ptr(base)
        device_fill = 0 if not dirty else (fill ^ 0xFF) or 1
        if dirty:
            machine.device.memory.write(info.device_ptr,
                                        bytes([device_fill]) * UNIT_SIZE)
        units.append((base, info, fill, device_fill, dirty, read_only))
    # One kernel launch happened since every map.
    runtime.global_epoch += 1
    for base, info, fill, device_fill, dirty, read_only in units:
        runtime._evict(info)
        expected = fill if (read_only or not dirty) else device_fill
        assert machine.cpu_memory.read(base, UNIT_SIZE) \
            == bytes([expected]) * UNIT_SIZE, \
            f"unit at {base:#x} dirty={dirty} read_only={read_only}"
        assert not info.resident


#: Small, fast workloads covering globals (atax), malloc-heavy units
#: (cfd), and a malloc'd matrix with in-place update (lud).
FAST_CHAOS_SUBSET = ("atax", "cfd", "lud")


@pytest.mark.parametrize("name", FAST_CHAOS_SUBSET)
def test_fault_subset_byte_identical_with_sanitizer(name):
    """Tier-1 chaos slice: aggressive faults + a tight device heap,
    sanitizer armed; observables must match the clean run and the
    sanitizer must stay silent."""
    workload = get_workload(name)
    baseline = compile_and_run(workload.source, OptLevel.OPTIMIZED,
                               name=workload.name)
    config = CgcmConfig(
        opt_level=OptLevel.OPTIMIZED,
        faults=FaultPlan(seed=1234, alloc_fail_rate=0.5,
                         transfer_fail_rate=0.3, launch_fail_rate=0.3,
                         max_consecutive=4),
        device_heap_limit=64 << 10,
        sanitize=True)
    compiler = CgcmCompiler(config)
    result = compiler.execute(
        compiler.compile_source(workload.source, workload.name))
    assert result.observable() == baseline.observable()
    assert result.sanitizer_report is not None
    assert not result.sanitizer_report.violations


@pytest.mark.slow
def test_full_chaos_sweep_byte_identical():
    """All 24 workloads under every fault schedule (the headline
    acceptance sweep); run with ``-m slow``."""
    from repro.evaluation.faultbench import run_fault_bench

    bench = run_fault_bench()
    diverged = [f"{c.name}/{c.schedule}" for c in bench.comparisons
                if not c.ok]
    assert not diverged, f"observables diverged: {diverged}"
    good, total = bench.workloads_identical
    assert (good, total) == (24, 24)
