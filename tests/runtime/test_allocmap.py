"""AVL allocation-map tests, including hypothesis model checking."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import AvlTreeMap


class TestBasicOperations:
    def test_insert_find(self):
        tree = AvlTreeMap()
        tree.insert(10, "a")
        tree.insert(5, "b")
        assert tree.find(10) == "a"
        assert tree.find(5) == "b"
        assert tree.find(7) is None
        assert len(tree) == 2

    def test_insert_replaces(self):
        tree = AvlTreeMap()
        tree.insert(1, "old")
        tree.insert(1, "new")
        assert tree.find(1) == "new"
        assert len(tree) == 1

    def test_remove(self):
        tree = AvlTreeMap()
        for key in (5, 3, 8, 1, 4):
            tree.insert(key, key)
        assert tree.remove(3)
        assert not tree.remove(3)
        assert tree.find(3) is None
        assert len(tree) == 4
        tree.check_invariants()

    def test_items_sorted(self):
        tree = AvlTreeMap()
        for key in (9, 1, 5, 3, 7):
            tree.insert(key, key * 10)
        assert [k for k, _ in tree.items()] == [1, 3, 5, 7, 9]

    def test_min_max(self):
        tree = AvlTreeMap()
        assert tree.min_key() is None
        for key in (4, 2, 9):
            tree.insert(key, None)
        assert tree.min_key() == 2
        assert tree.max_key() == 9


class TestGreatestLTE:
    """The lookup that finds a pointer's allocation unit (paper 3.1)."""

    def test_exact_hit(self):
        tree = AvlTreeMap()
        tree.insert(100, "unit")
        assert tree.find_le(100) == (100, "unit")

    def test_interior_pointer(self):
        tree = AvlTreeMap()
        tree.insert(100, "a")
        tree.insert(200, "b")
        assert tree.find_le(150) == (100, "a")
        assert tree.find_le(250) == (200, "b")

    def test_below_everything(self):
        tree = AvlTreeMap()
        tree.insert(100, "a")
        assert tree.find_le(99) is None

    def test_empty(self):
        assert AvlTreeMap().find_le(5) is None


class TestBalance:
    def test_sequential_insert_stays_balanced(self):
        tree = AvlTreeMap()
        for key in range(1000):
            tree.insert(key, key)
        tree.check_invariants()
        # AVL height bound: 1.44 * log2(n + 2).
        assert tree._root.height <= 15

    def test_reverse_insert_stays_balanced(self):
        tree = AvlTreeMap()
        for key in reversed(range(1000)):
            tree.insert(key, key)
        tree.check_invariants()


class TestModelBased:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["insert", "remove", "query"]),
                              st.integers(0, 64)),
                    max_size=120))
    def test_against_dict_model(self, operations):
        tree = AvlTreeMap()
        model = {}
        for op, key in operations:
            if op == "insert":
                tree.insert(key, key * 2)
                model[key] = key * 2
            elif op == "remove":
                assert tree.remove(key) == (key in model)
                model.pop(key, None)
            else:
                expected = None
                le_keys = [k for k in model if k <= key]
                if le_keys:
                    best = max(le_keys)
                    expected = (best, model[best])
                assert tree.find_le(key) == expected
            tree.check_invariants()
            assert len(tree) == len(model)
        assert dict(tree.items()) == model
