"""Tests for the doubly-indirect (array) run-time variants."""

import struct

import pytest

from repro.errors import CgcmRuntimeError, CgcmUnsupportedError
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.runtime import CgcmRuntime


def jagged_machine():
    """words[3] -> three heap strings, set up by running main's prologue."""
    source = r"""
    char *words[3];
    int main(void) {
        for (int i = 0; i < 3; i++) {
            words[i] = (char *) malloc(8);
            words[i][0] = 'a' + i;
            words[i][1] = 0;
        }
        return 0;
    }
    """
    machine = Machine(compile_minic(source))
    runtime = CgcmRuntime(machine)
    runtime.declare_all_globals()
    machine.run()
    return machine, runtime


class TestMapArray:
    def test_translates_every_element(self):
        machine, runtime = jagged_machine()
        base = machine.global_address("words")
        device_array = runtime.map_array(base)
        raw = machine.device.memory.read(device_array, 24)
        device_ptrs = struct.unpack("<3Q", raw)
        for i, device_ptr in enumerate(device_ptrs):
            text = machine.device.memory.read(device_ptr, 2)
            assert text == bytes([ord('a') + i, 0])

    def test_null_elements_stay_null(self):
        source = "char *xs[2]; int main(void) { return 0; }"
        machine = Machine(compile_minic(source))
        runtime = CgcmRuntime(machine)
        runtime.declare_all_globals()
        base = machine.global_address("xs")
        device_array = runtime.map_array(base)
        assert struct.unpack(
            "<2Q", machine.device.memory.read(device_array, 16)) == (0, 0)

    def test_cpu_copy_keeps_host_pointers(self):
        """mapArray must not scribble device pointers into CPU memory."""
        machine, runtime = jagged_machine()
        base = machine.global_address("words")
        before = machine.cpu_memory.read(base, 24)
        runtime.map_array(base)
        assert machine.cpu_memory.read(base, 24) == before

    def test_element_refcounts_bumped_once(self):
        machine, runtime = jagged_machine()
        base = machine.global_address("words")
        runtime.map_array(base)
        runtime.map_array(base)  # second map: array refcount only
        element = machine.cpu_memory.load_scalar(
            base, __import__("repro.ir", fromlist=["RAW_PTR"]).RAW_PTR)
        assert runtime.info_for(element).ref_count == 1
        assert runtime.info_for(base).ref_count == 2

    def test_triple_indirection_rejected(self):
        """CGCM restriction: max two degrees of indirection."""
        source = r"""
        char **outer[2];
        char *inner[2];
        int main(void) { return 0; }
        """
        machine = Machine(compile_minic(source))
        runtime = CgcmRuntime(machine)
        runtime.declare_all_globals()
        outer = machine.global_address("outer")
        inner = machine.global_address("inner")
        runtime.map_array(inner)  # inner is a *currently mapped* array
        machine.cpu_memory.store_scalar(
            outer, __import__("repro.ir", fromlist=["RAW_PTR"]).RAW_PTR,
            inner)
        with pytest.raises(CgcmUnsupportedError, match="indirection"):
            runtime.map_array(outer)


class TestUnmapReleaseArray:
    def test_unmap_array_updates_elements(self):
        from repro.ir import RAW_PTR, I8
        machine, runtime = jagged_machine()
        base = machine.global_address("words")
        device_array = runtime.map_array(base)
        first_device = struct.unpack(
            "<Q", machine.device.memory.read(device_array, 8))[0]
        machine.device.memory.store_scalar(first_device, I8, ord('z'))
        runtime.global_epoch += 1
        runtime.unmap_array(base)
        first_host = machine.cpu_memory.load_scalar(base, RAW_PTR)
        assert machine.cpu_memory.load_scalar(first_host, I8) == ord('z')

    def test_release_array_frees_elements_and_array(self):
        machine, runtime = jagged_machine()
        base = machine.global_address("words")
        runtime.map_array(base)
        # Three heap strings on the device heap; the pointer array
        # itself is a global, living in the module's named region.
        assert machine.device.live_allocations == 3
        runtime.release_array(base)
        assert machine.device.live_allocations == 0

    def test_release_array_below_zero_fails(self):
        machine, runtime = jagged_machine()
        base = machine.global_address("words")
        with pytest.raises(CgcmRuntimeError, match="below zero"):
            runtime.release_array(base)

    def test_nested_release_order(self):
        machine, runtime = jagged_machine()
        base = machine.global_address("words")
        runtime.map_array(base)
        runtime.map_array(base)
        runtime.release_array(base)
        # Elements still mapped: array refcount was 2.
        assert machine.device.live_allocations == 3
        runtime.release_array(base)
        assert machine.device.live_allocations == 0
