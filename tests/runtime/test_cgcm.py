"""Tests for the CGCM run-time library semantics (paper Algorithms 1-3)."""

import struct

import pytest

from repro.errors import CgcmRuntimeError, CgcmUnsupportedError
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.runtime import CgcmRuntime

EMPTY_MAIN = "int main(void) { return 0; }"


def fresh(source: str = EMPTY_MAIN):
    machine = Machine(compile_minic(source))
    runtime = CgcmRuntime(machine)
    runtime.declare_all_globals()
    return machine, runtime


class TestMap:
    def test_map_copies_unit_to_device(self):
        machine, runtime = fresh("double g[4]; int main(void) {return 0;}")
        base = machine.global_address("g")
        machine.cpu_memory.write(base, struct.pack("<4d", 1, 2, 3, 4))
        device_ptr = runtime.map_ptr(base)
        assert machine.device.memory.read(device_ptr, 32) == \
            struct.pack("<4d", 1, 2, 3, 4)

    def test_interior_pointer_keeps_offset(self):
        machine, runtime = fresh("double g[4]; int main(void) {return 0;}")
        base = machine.global_address("g")
        d_base = runtime.map_ptr(base)
        runtime.release_ptr(base)
        d_interior = runtime.map_ptr(base + 24)
        assert d_interior - runtime.info_for(base).device_ptr == 24

    def test_aliases_map_to_single_device_unit(self):
        """Paper: multiple maps of one unit yield one GPU allocation."""
        machine, runtime = fresh("double g[4]; int main(void) {return 0;}")
        base = machine.global_address("g")
        first = runtime.map_ptr(base)
        second = runtime.map_ptr(base + 8)
        assert second == first + 8
        assert runtime.info_for(base).ref_count == 2
        assert machine.clock.counters.get("htod_copies") == 1  # one copy

    def test_map_untracked_pointer_fails(self):
        machine, runtime = fresh()
        with pytest.raises(CgcmRuntimeError, match="tracked"):
            runtime.map_ptr(0x7000_0100)  # unregistered stack address

    def test_heap_allocations_are_tracked_automatically(self):
        machine, runtime = fresh()
        address = machine.heap.malloc(64)
        machine.notify_heap("malloc", address, 64)
        info = runtime.info_for(address + 10)
        assert info.base == address
        assert info.size == 64

    def test_remap_after_release_recopies(self):
        machine, runtime = fresh("double g[2]; int main(void) {return 0;}")
        base = machine.global_address("g")
        runtime.map_ptr(base)
        runtime.release_ptr(base)
        machine.cpu_memory.store_scalar(base, __import__(
            "repro.ir", fromlist=["F64"]).F64, 42.0)
        device_ptr = runtime.map_ptr(base)
        assert machine.device.memory.load_scalar(
            device_ptr, __import__("repro.ir", fromlist=["F64"]).F64) == 42.0


class TestUnmapEpochs:
    def test_unmap_without_launch_skips_copy(self):
        machine, runtime = fresh("double g[2]; int main(void) {return 0;}")
        base = machine.global_address("g")
        runtime.map_ptr(base)
        before = machine.clock.counters.get("dtoh_copies", 0)
        runtime.unmap_ptr(base)
        assert machine.clock.counters.get("dtoh_copies", 0) == before

    def test_unmap_copies_once_per_epoch(self):
        """Paper Algorithm 2: at most one DtoH per unit per epoch."""
        machine, runtime = fresh("double g[2]; int main(void) {return 0;}")
        base = machine.global_address("g")
        runtime.map_ptr(base)
        runtime.global_epoch += 1  # simulate a kernel launch
        runtime.unmap_ptr(base)
        runtime.unmap_ptr(base)
        runtime.unmap_ptr(base)
        assert machine.clock.counters.get("dtoh_copies", 0) == 1

    def test_read_only_units_never_copy_back(self):
        machine, runtime = fresh(
            "const double g[2] = {1.0, 2.0}; int main(void) {return 0;}")
        base = machine.global_address("g")
        runtime.map_ptr(base)
        runtime.global_epoch += 1
        runtime.unmap_ptr(base)
        assert machine.clock.counters.get("dtoh_copies", 0) == 0

    def test_unmap_reflects_device_writes(self):
        from repro.ir import F64
        machine, runtime = fresh("double g[2]; int main(void) {return 0;}")
        base = machine.global_address("g")
        device_ptr = runtime.map_ptr(base)
        machine.device.memory.store_scalar(device_ptr, F64, 7.5)
        runtime.global_epoch += 1
        runtime.unmap_ptr(base)
        assert machine.cpu_memory.load_scalar(base, F64) == 7.5


class TestRelease:
    def test_release_frees_at_zero(self):
        machine, runtime = fresh("double g[2]; int main(void) {return 0;}")
        base = machine.global_address("g")
        runtime.map_ptr(base)
        runtime.map_ptr(base)
        runtime.release_ptr(base)
        assert runtime.info_for(base).ref_count == 1
        runtime.release_ptr(base)
        assert runtime.info_for(base).ref_count == 0

    def test_release_below_zero_fails(self):
        machine, runtime = fresh("double g[2]; int main(void) {return 0;}")
        base = machine.global_address("g")
        with pytest.raises(CgcmRuntimeError, match="below zero"):
            runtime.release_ptr(base)

    def test_heap_unit_device_buffer_freed(self):
        machine, runtime = fresh()
        address = machine.heap.malloc(32)
        machine.notify_heap("malloc", address, 32)
        runtime.map_ptr(address)
        assert machine.device.live_allocations == 1
        runtime.release_ptr(address)
        assert machine.device.live_allocations == 0

    def test_globals_never_freed_on_device(self):
        """Paper Algorithm 3: "it is not legal to free a global"."""
        machine, runtime = fresh("double g[2]; int main(void) {return 0;}")
        base = machine.global_address("g")
        runtime.map_ptr(base)
        runtime.release_ptr(base)
        # Re-mapping still resolves to the module's named region.
        again = runtime.map_ptr(base)
        assert again == machine.device.module_get_global("g")


class TestLifetimeErrors:
    def test_free_while_mapped_fails(self):
        machine, runtime = fresh()
        address = machine.heap.malloc(16)
        machine.notify_heap("malloc", address, 16)
        runtime.map_ptr(address)
        with pytest.raises(CgcmRuntimeError, match="still mapped"):
            machine.notify_heap("free", address, 0)

    def test_free_after_release_is_fine(self):
        machine, runtime = fresh()
        address = machine.heap.malloc(16)
        machine.notify_heap("malloc", address, 16)
        runtime.map_ptr(address)
        runtime.release_ptr(address)
        machine.notify_heap("free", address, 0)
        machine.heap.free(address)
        with pytest.raises(CgcmRuntimeError):
            runtime.info_for(address)


class TestDeclareAlloca:
    def test_stack_registration_expires_with_frame(self):
        source = r"""
        long helper(void) {
            char *p = declareAlloca(32);
            p[0] = 'x';
            return (long) p;
        }
        int main(void) {
            long address = helper();
            return 0;
        }
        """
        machine = Machine(compile_minic(source))
        runtime = CgcmRuntime(machine)
        runtime.declare_all_globals()
        machine.run()
        # After helper returned, the registration is gone.
        assert all(not (info.frame_id is not None)
                   for info in runtime.alloc_map.values())

    def test_escaping_mapped_stack_var_faults_on_return(self):
        source = r"""
        long helper(void) {
            char *p = declareAlloca(32);
            map(p);
            return 0;
        }
        int main(void) { return (int) helper(); }
        """
        machine = Machine(compile_minic(source))
        runtime = CgcmRuntime(machine)
        runtime.declare_all_globals()
        with pytest.raises(CgcmRuntimeError, match="left scope"):
            machine.run()
