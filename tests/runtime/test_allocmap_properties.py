"""Randomized property tests for the allocation map's AVL tree.

The run-time library's correctness hangs on ``AvlTreeMap``: every
``map``/``unmap``/``release`` resolves a pointer to its allocation
unit through ``find_le``.  These tests drive the tree with thousands
of seeded-random insert/remove/lookup operations against a plain
sorted-dict oracle and re-check the structural invariants (BST
ordering, AVL balance, cached heights) after **every** mutation.
"""

import bisect
import random

import pytest

from repro.runtime.allocmap import AvlTreeMap

OPS_PER_RUN = 2000
KEY_SPACE = 512


def oracle_find_le(keys, query):
    """Greatest key <= query via bisect over the sorted oracle keys."""
    index = bisect.bisect_right(keys, query)
    return keys[index - 1] if index else None


@pytest.mark.parametrize("seed", [0, 1, 2, 1234, 0xC6C3])
def test_random_ops_match_dict_oracle(seed):
    rng = random.Random(seed)
    tree = AvlTreeMap()
    oracle = {}
    for step in range(OPS_PER_RUN):
        op = rng.random()
        key = rng.randrange(KEY_SPACE)
        if op < 0.5:
            value = f"v{step}"
            tree.insert(key, value)
            oracle[key] = value
        elif op < 0.8:
            assert tree.remove(key) == (key in oracle)
            oracle.pop(key, None)
        else:
            # Pure lookups; no mutation, but keep the oracle honest.
            assert tree.find(key) == oracle.get(key)
            sorted_keys = sorted(oracle)
            expected = oracle_find_le(sorted_keys, key)
            got = tree.find_le(key)
            if expected is None:
                assert got is None
            else:
                assert got == (expected, oracle[expected])
            continue
        tree.check_invariants()
        assert len(tree) == len(oracle)

    assert list(tree.items()) == sorted(oracle.items())
    sorted_keys = sorted(oracle)
    assert tree.min_key() == (sorted_keys[0] if sorted_keys else None)
    assert tree.max_key() == (sorted_keys[-1] if sorted_keys else None)


@pytest.mark.parametrize("seed", [7, 99])
def test_floor_lookup_between_keys(seed):
    # find_le with queries that deliberately fall between stored keys
    # (the common case: an interior pointer resolving to its unit base).
    rng = random.Random(seed)
    tree = AvlTreeMap()
    keys = sorted(rng.sample(range(0, 10_000, 8), 200))
    for key in keys:
        tree.insert(key, key * 2)
        tree.check_invariants()
    for _ in range(500):
        query = rng.randrange(-16, 10_016)
        expected = oracle_find_le(keys, query)
        got = tree.find_le(query)
        if expected is None:
            assert got is None
        else:
            assert got == (expected, expected * 2)


def test_sequential_insert_stays_balanced():
    # Monotone insertion is the classic AVL worst case; height must
    # stay logarithmic (checked indirectly by check_invariants) and
    # iteration sorted.
    tree = AvlTreeMap()
    for key in range(256):
        tree.insert(key, key)
        tree.check_invariants()
    for key in range(0, 256, 2):
        assert tree.remove(key)
        tree.check_invariants()
    assert list(tree.keys()) == list(range(1, 256, 2))


def test_insert_replaces_value_without_growth():
    tree = AvlTreeMap()
    tree.insert(42, "old")
    tree.insert(42, "new")
    assert len(tree) == 1
    assert tree.find(42) == "new"
    tree.check_invariants()


def test_remove_absent_key_is_noop():
    tree = AvlTreeMap()
    tree.insert(1, "x")
    assert not tree.remove(2)
    assert len(tree) == 1
    tree.check_invariants()
