"""Closure-compiler unit tests: slots, variants, compile-time checks."""

import pytest

from repro.errors import CgcmUnsupportedError, InterpError
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.interp.codegen import CompiledFunction, compile_function
from repro.ir import (Constant, FunctionType, I64, IRBuilder, Load, Module,
                      verify_module)


def machine_pair(source: str):
    """(tree machine, compiled machine) for the same source."""
    return (Machine(compile_minic(source), engine="tree"),
            Machine(compile_minic(source), engine="compiled"))


class TestSlotAllocation:
    def test_constants_share_one_slot(self):
        module = Module("m")
        fn = module.add_function("f", FunctionType(I64, []))
        b = IRBuilder(fn.new_block("entry"))
        p = b.alloca(I64)
        # The literal 7 appears three times but is one Constant value.
        b.store(7, p)
        v = b.load(p)
        v = b.add(v, 7)
        v = b.add(v, 7)
        b.ret(v)
        machine = Machine(module, engine="compiled")
        code = compile_function(machine, fn, "cpu", False)
        assert isinstance(code, CompiledFunction)
        # args(0) + 4 value-producing insts + {7, 1(alloca count)}.
        assert code.n_slots == 6
        assert machine.call(fn, []) == 21

    def test_globals_baked_per_mode(self, simple_kernel_module):
        machine = Machine(simple_kernel_module, engine="compiled")
        main = simple_kernel_module.get_function("main")
        cpu = compile_function(machine, main, "cpu", False)
        gpu_fn = simple_kernel_module.get_function("scale")
        gpu = compile_function(machine, gpu_fn, "gpu", False)
        assert cpu.mode == "cpu" and gpu.mode == "gpu"

    def test_variants_cached_per_mode_and_hooks(self):
        source = "int main(void) { return 3; }"
        machine = Machine(compile_minic(source), engine="compiled")
        assert machine.run() == 3
        fn = machine.module.get_function("main")
        first = machine.compiled_for(fn)
        assert machine.compiled_for(fn) is first
        machine.mem_hooks.append(lambda *a: None)
        hooked = machine.compiled_for(fn)
        assert hooked is not first and hooked.hooked


class TestResultEquivalence:
    SOURCE = r"""
        long fib(long n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main(void) {
            print_i64(fib(15));
            return 0;
        }
    """

    def test_recursion_and_reentrant_register_file(self):
        tree, compiled = machine_pair(self.SOURCE)
        assert tree.run() == compiled.run() == 0
        assert tree.stdout == compiled.stdout == ["610"]
        assert tree.clock.totals() == compiled.clock.totals()
        assert tree.executed_instructions == compiled.executed_instructions

    def test_division_costs_charged_identically(self):
        source = r"""
            int main(void) {
                long s = 0;
                for (long i = 1; i < 50; i++) s += (1000 / i) % 7;
                print_i64(s);
                return 0;
            }
        """
        tree, compiled = machine_pair(source)
        tree.run(), compiled.run()
        assert tree.stdout == compiled.stdout
        assert tree.clock.totals() == compiled.clock.totals()

    def test_float_semantics_match(self):
        source = r"""
            int main(void) {
                double z = 0.0;
                print_f64(1.0 / z);
                print_f64(-1.0 / z);
                float f = 1.5;
                print_f64((double) (f * 3.0));
                print_i64((long) (7.9 / 2.0));
                return 0;
            }
        """
        tree, compiled = machine_pair(source)
        tree.run(), compiled.run()
        assert tree.stdout == compiled.stdout


class TestHookedVariants:
    def test_mem_hooks_fire_identically(self):
        source = r"""
            long A[4];
            int main(void) {
                for (int i = 0; i < 4; i++) A[i] = i * i;
                long s = 0;
                for (int i = 0; i < 4; i++) s += A[i];
                return (int) s;
            }
        """
        events = {}
        for engine in ("tree", "compiled"):
            machine = Machine(compile_minic(source), engine=engine)
            log = []
            machine.mem_hooks.append(
                lambda m, kind, addr, size, log=log:
                log.append((kind, addr, size)))
            assert machine.run() == 14
            events[engine] = log
        assert events["tree"] == events["compiled"]
        assert any(kind == "store" for kind, _, _ in events["tree"])


class TestGpuRestrictions:
    def test_kernel_pointer_store_rejected_compiled(self):
        module = compile_minic(r"""
            long G[4];
            long *P[4];
            __global__ void bad(long tid, long **p, long *g) {
                p[tid] = g;
            }
            int main(void) {
                long **dp = (long **) map((char *) P);
                long *dg = (long *) map((char *) G);
                __launch(bad, 1, dp, dg);
                return 0;
            }
        """)
        machine = Machine(module, engine="compiled")
        from repro.runtime import CgcmRuntime
        CgcmRuntime(machine).declare_all_globals()
        with pytest.raises(CgcmUnsupportedError, match="pointer into"):
            machine.run()


class TestUndefinedRegisterDetection:
    def _malformed_module(self):
        """Verifier-clean function whose use is not dominated by its def."""
        module = Module("m")
        fn = module.add_function("main", FunctionType(I64, []))
        entry = fn.new_block("entry")
        left = fn.new_block("left")
        join = fn.new_block("join")
        b = IRBuilder(entry)
        flag = b.alloca(I64)
        b.store(0, flag)
        cond = b.cmp("eq", b.load(flag), 1)
        b.cbr(cond, left, join)
        b.position_at_end(left)
        defined = b.add(b.const(I64, 2), 3)   # only defined on this path
        b.br(join)
        b.position_at_end(join)
        b.ret(defined)                        # undefined when entry -> join
        return module, fn

    def test_verifier_accepts_but_tree_raises_at_runtime(self):
        module, _ = self._malformed_module()
        verify_module(module)  # structure is fine; dominance is not checked
        machine = Machine(module, engine="tree")
        with pytest.raises(InterpError, match="undefined register"):
            machine.run()

    def test_codegen_rejects_at_compile_time(self):
        module, fn = self._malformed_module()
        machine = Machine(module, engine="compiled")
        with pytest.raises(InterpError, match="does not dominate"):
            compile_function(machine, fn, "cpu", False)

    def test_unreachable_blocks_are_not_flagged(self):
        module = Module("m")
        fn = module.add_function("main", FunctionType(I64, []))
        entry = fn.new_block("entry")
        dead = fn.new_block("dead")
        b = IRBuilder(entry)
        b.ret(0)
        b.position_at_end(dead)
        # Dead block reads a register defined in another dead spot;
        # it can never execute, so compilation must succeed.
        ghost = b.add(b.const(I64, 1), 1)
        b.ret(ghost)
        machine = Machine(module, engine="compiled")
        compile_function(machine, fn, "cpu", False)
        assert machine.run() == 0

    def test_declaration_cannot_be_compiled(self):
        module = Module("m")
        decl = module.declare_function("ext", FunctionType(I64, []))
        machine = Machine(module, engine="compiled")
        with pytest.raises(InterpError, match="declaration"):
            compile_function(machine, decl, "cpu", False)
