"""Interpreter semantics tests: arithmetic, memory, control flow."""

import pytest

from repro.errors import InterpError, MemoryFault
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.ir import parse_module


def run(source: str):
    machine = Machine(compile_minic(source))
    code = machine.run()
    return code, machine.stdout


class TestIntegerSemantics:
    def test_truncating_division(self):
        code, out = run("""
        int main(void) {
            print_i64(7 / 2);
            print_i64(-7 / 2);
            print_i64(7 % 2);
            print_i64(-7 % 2);
            return 0;
        }""")
        assert out == ["3", "-3", "1", "-1"]  # C semantics, not Python

    def test_division_by_zero_traps(self):
        machine = Machine(compile_minic(
            "int main(void) { int z = 0; return 1 / z; }"))
        with pytest.raises(InterpError, match="division by zero"):
            machine.run()

    def test_wraparound(self):
        code, out = run("""
        int main(void) {
            char c = 127;
            c = c + 1;
            print_i64(c);
            return 0;
        }""")
        assert out == ["-128"]

    def test_shifts_and_bitops(self):
        code, out = run("""
        int main(void) {
            print_i64(1 << 10);
            print_i64(-8 >> 1);
            print_i64(12 & 10);
            print_i64(12 | 10);
            print_i64(12 ^ 10);
            print_i64(~0);
            return 0;
        }""")
        assert out == ["1024", "-4", "8", "14", "6", "-1"]


class TestFloatSemantics:
    def test_float_div_by_zero_is_inf(self):
        code, out = run("""
        int main(void) {
            double z = 0.0;
            double r = 1.0 / z;
            print_i64(r > 1e308);
            return 0;
        }""")
        assert out == ["1"]

    def test_f32_rounding_through_memory(self):
        code, out = run("""
        float f;
        int main(void) {
            f = 0.1;
            print_i64(f == 0.1);
            return 0;
        }""")
        assert out == ["0"]  # f32 0.1 != f64 0.1

    def test_math_externals(self):
        code, out = run("""
        int main(void) {
            print_f64(sqrt(16.0));
            print_f64(fabs(-2.5));
            print_f64(pow(2.0, 10.0));
            print_f64(fmax(1.0, 3.0));
            return 0;
        }""")
        assert out == ["4", "2.5", "1024", "3"]


class TestControlFlow:
    def test_nested_loops_with_break_continue(self):
        code, out = run("""
        int main(void) {
            long total = 0;
            for (int i = 0; i < 10; i++) {
                if (i == 7) break;
                if (i % 2 == 0) continue;
                total += i;
            }
            print_i64(total);
            return 0;
        }""")
        assert out == ["9"]  # 1 + 3 + 5

    def test_short_circuit_evaluation(self):
        code, out = run("""
        long calls = 0;
        long bump(void) { calls++; return 1; }
        int main(void) {
            long a = 0 && bump();
            long b = 1 || bump();
            print_i64(calls);
            print_i64(a);
            print_i64(b);
            return 0;
        }""")
        assert out == ["0", "0", "1"]

    def test_recursion(self):
        code, out = run("""
        long fib(long n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main(void) { print_i64(fib(15)); return 0; }""")
        assert out == ["610"]

    def test_runaway_recursion_trapped(self):
        machine = Machine(compile_minic("""
        long spin(long n) { return spin(n + 1); }
        int main(void) { return (int) spin(0); }"""))
        with pytest.raises(InterpError, match="call depth"):
            machine.run()

    def test_exit_external(self):
        code, out = run("""
        int main(void) {
            print_i64(1);
            exit(42);
            print_i64(2);
            return 0;
        }""")
        assert code == 42
        assert out == ["1"]


class TestMemoryBehaviour:
    def test_pointer_arithmetic_and_aliasing(self):
        code, out = run("""
        double grid[3][4];
        int main(void) {
            double *flat = &grid[0][0];
            flat[7] = 9.5;              /* aliases grid[1][3] */
            print_f64(grid[1][3]);
            double *row = grid[2];
            row[1] = -1.0;
            print_f64(grid[2][1]);
            print_i64(&grid[2][1] - flat);
            return 0;
        }""")
        assert out == ["9.5", "-1", "9"]

    def test_heap_workflow(self):
        code, out = run("""
        int main(void) {
            long *xs = (long *) malloc(10 * sizeof(long));
            for (int i = 0; i < 10; i++) xs[i] = i * i;
            long total = 0;
            for (int i = 0; i < 10; i++) total += xs[i];
            free(xs);
            print_i64(total);
            return 0;
        }""")
        assert out == ["285"]

    def test_memcpy_memset(self):
        code, out = run("""
        int main(void) {
            char *a = (char *) malloc(8);
            char *b = (char *) malloc(8);
            memset(a, 7, 8);
            memcpy(b, a, 8);
            print_i64(b[5]);
            return 0;
        }""")
        assert out == ["7"]

    def test_struct_access(self):
        code, out = run("""
        struct point { double x; double y; long tag; };
        struct point pts[4];
        int main(void) {
            pts[2].x = 1.5;
            pts[2].tag = 9;
            struct point *p = &pts[2];
            print_f64(p->x);
            print_i64(p->tag);
            return 0;
        }""")
        assert out == ["1.5", "9"]

    def test_wild_pointer_faults(self):
        machine = Machine(compile_minic("""
        int main(void) {
            long *p = (long *) 64;
            return (int) *p;
        }"""))
        with pytest.raises(MemoryFault):
            machine.run()


class TestDeterminism:
    def test_rng_is_deterministic(self):
        results = []
        for _ in range(2):
            code, out = run("""
            int main(void) {
                srand(42);
                for (int i = 0; i < 3; i++) print_i64(rand_i64(1000));
                return 0;
            }""")
            results.append(out)
        assert results[0] == results[1]

    def test_clock_is_deterministic(self):
        source = "int main(void) { for (int i = 0; i < 50; i++) ; return 0; }"
        m1 = Machine(compile_minic(source))
        m2 = Machine(compile_minic(source))
        m1.run()
        m2.run()
        assert m1.clock.snapshot() == m2.clock.snapshot()
        assert m1.clock.cpu_seconds > 0


class TestActiveMemoryCache:
    """``Machine.memory`` is cached on mode switches (hot-path opt)."""

    def test_mode_setter_switches_address_space(self):
        machine = Machine(compile_minic("int main(void) { return 0; }"))
        assert machine.memory is machine.cpu_memory
        machine.mode = "gpu"
        assert machine.memory is machine.device.memory
        machine.mode = "cpu"
        assert machine.memory is machine.cpu_memory

    def test_device_and_host_stay_separate(self):
        """Regression: the cache must never blur the address spaces."""
        machine = Machine(compile_minic("int main(void) { return 0; }"))
        from repro.ir import I64
        host_addr = machine.cpu_memory.segment("heap").base
        machine.memory.store_scalar(host_addr, I64, 111)
        machine.mode = "gpu"
        device_addr = machine.device.memory.segment("device-heap").base \
            if any(s.name == "device-heap"
                   for s in machine.device.memory.segments) \
            else machine.device.memory.segments[0].base
        machine.memory.store_scalar(device_addr, I64, 222)
        # A host address dereferenced through the (cached) GPU space
        # must still fault, exactly as before the optimization.
        with pytest.raises(MemoryFault):
            machine.memory.load_scalar(host_addr, I64)
        machine.mode = "cpu"
        assert machine.memory.load_scalar(host_addr, I64) == 111
        with pytest.raises(MemoryFault):
            machine.memory.load_scalar(device_addr, I64)

    def test_undefined_register_read_raises(self):
        """Tree-walker runtime guard (see also test_codegen.py)."""
        from repro.ir import FunctionType, I64, IRBuilder, Module
        module = Module("m")
        fn = module.add_function("main", FunctionType(I64, []))
        entry = fn.new_block("entry")
        skip = fn.new_block("skip")
        join = fn.new_block("join")
        b = IRBuilder(entry)
        b.cbr(b.cmp("eq", b.const(I64, 0), 1), skip, join)
        b.position_at_end(skip)
        ghost = b.add(b.const(I64, 1), 1)
        b.br(join)
        b.position_at_end(join)
        b.ret(ghost)
        machine = Machine(module, engine="tree")
        with pytest.raises(InterpError, match="undefined register"):
            machine.run()
