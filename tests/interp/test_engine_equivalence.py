"""Engine equivalence: all three engines must agree with the tree.

The compiled engines (closure and source codegen) exist only for
speed; any observable difference -- stdout, exit code, final global
bytes, dynamic instruction count, or a single bit of any
simulated-clock lane -- is a bug.  The fast subset runs in tier-1;
the full 24-workload sweep and the 25-program fuzz corpus are
``slow``.
"""

import pytest

from repro.core import CgcmCompiler, CgcmConfig, OptLevel
from repro.evaluation.bench import compare_engines
from repro.workloads import ALL_WORKLOADS, get_workload, workload_names

#: Small-but-diverse tier-1 subset (int, float, multi-kernel, glue).
FAST_WORKLOADS = ("atax", "nw", "kmeans", "blackscholes")

#: Engines held to the tree-walker oracle.
FAST_ENGINES = ("compiled", "source")


def engine_results(name: str, level: OptLevel):
    workload = get_workload(name)
    compiler = CgcmCompiler(CgcmConfig(opt_level=level))
    report = compiler.compile_source(workload.source, workload.name)
    return {engine: compiler.execute(report, engine=engine)
            for engine in ("tree",) + FAST_ENGINES}


@pytest.mark.parametrize("name", FAST_WORKLOADS)
@pytest.mark.parametrize("level",
                         [OptLevel.SEQUENTIAL, OptLevel.OPTIMIZED],
                         ids=lambda l: l.value)
def test_engines_identical_fast(name, level):
    results = engine_results(name, level)
    for engine in FAST_ENGINES:
        assert compare_engines(results["tree"], results[engine]) == (), \
            engine


@pytest.mark.slow
@pytest.mark.parametrize("name", workload_names())
def test_engines_identical_all_workloads(name):
    results = engine_results(name, OptLevel.OPTIMIZED)
    for engine in FAST_ENGINES:
        assert compare_engines(results["tree"], results[engine]) == (), \
            engine


@pytest.mark.slow
@pytest.mark.parametrize("name", workload_names())
def test_engines_identical_unoptimized(name):
    results = engine_results(name, OptLevel.UNOPTIMIZED)
    for engine in FAST_ENGINES:
        assert compare_engines(results["tree"], results[engine]) == (), \
            engine


@pytest.mark.slow
@pytest.mark.parametrize("index", range(25))
def test_engines_identical_fuzz_corpus(index):
    """25 generator programs, clock-for-clock across all engines.

    The fuzz generator reaches IR shapes the workloads do not
    (degenerate loops, dead blocks, deep conditional ladders), so it
    exercises the source engine's block fusion and dispatch fallback
    paths.
    """
    from repro.scenarios.generator import generate_program

    program = generate_program(0, index)
    compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED))
    report = compiler.compile_source(program.source, program.name)
    tree = compiler.execute(report, engine="tree")
    for engine in FAST_ENGINES:
        other = compiler.execute(report, engine=engine)
        assert compare_engines(tree, other) == (), engine


@pytest.mark.parametrize("name", ("atax", "kmeans"))
@pytest.mark.parametrize("engine", FAST_ENGINES)
def test_sanitizer_armed_subset(name, engine):
    """Hook-compiled variants keep the sanitizer's view identical.

    All engines execute the *same* compiled module: recompiling per
    engine may legally reorder instructions, which shifts the int
    partition at clock flushes and the exact-float comparison with it.
    """
    from repro.interp import Machine
    from repro.runtime import CgcmRuntime
    from repro.sanitizer import CommSanitizer

    workload = get_workload(name)
    compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED))
    report = compiler.compile_source(workload.source, workload.name)
    runs = {}
    for which in ("tree", engine):
        machine = Machine(report.module, compiler.config.cost_model,
                          engine=which)
        runtime = CgcmRuntime(machine)
        sanitizer = CommSanitizer(machine, runtime)
        exit_code = machine.run()
        sanitizer_report = sanitizer.finish()
        runs[which] = (exit_code, list(machine.stdout),
                       machine.clock.totals(),
                       machine.executed_instructions,
                       sanitizer_report)
    tree, other = runs["tree"], runs[engine]
    # Everything down to exact clock floats and sanitizer statistics.
    assert tree[:4] == other[:4]
    assert tree[4].clean and other[4].clean
    assert tree[4].stats == other[4].stats
    # The sanitizer saw real traffic, i.e. the hooks did fire.
    assert any(tree[4].stats.values())

    # The full differential oracle stays clean under the fast engine.
    from repro.sanitizer import run_differential_workload
    oracle = run_differential_workload(name, OptLevel.OPTIMIZED,
                                       engine=engine)
    assert oracle.ok, f"{engine}: {oracle.summary()}"


def test_config_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engine"):
        CgcmConfig(engine="jit")


def test_default_engine_is_source():
    assert CgcmConfig().engine == "source"
    assert len(ALL_WORKLOADS) == 24
