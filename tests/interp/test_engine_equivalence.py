"""Engine equivalence: tree-walker and closure compiler must agree.

The compiled engine exists only for speed; any observable difference
-- stdout, exit code, final global bytes, dynamic instruction count,
or a single bit of any simulated-clock lane -- is a bug.  The fast
subset runs in tier-1; the full 24-workload sweep is ``slow``.
"""

import pytest

from repro.core import CgcmCompiler, CgcmConfig, OptLevel
from repro.evaluation.bench import compare_engines
from repro.workloads import ALL_WORKLOADS, get_workload, workload_names

#: Small-but-diverse tier-1 subset (int, float, multi-kernel, glue).
FAST_WORKLOADS = ("atax", "nw", "kmeans", "blackscholes")


def both_engines(name: str, level: OptLevel):
    workload = get_workload(name)
    compiler = CgcmCompiler(CgcmConfig(opt_level=level))
    report = compiler.compile_source(workload.source, workload.name)
    return (compiler.execute(report, engine="tree"),
            compiler.execute(report, engine="compiled"))


@pytest.mark.parametrize("name", FAST_WORKLOADS)
@pytest.mark.parametrize("level",
                         [OptLevel.SEQUENTIAL, OptLevel.OPTIMIZED],
                         ids=lambda l: l.value)
def test_engines_identical_fast(name, level):
    tree, compiled = both_engines(name, level)
    assert compare_engines(tree, compiled) == ()


@pytest.mark.slow
@pytest.mark.parametrize("name", workload_names())
def test_engines_identical_all_workloads(name):
    tree, compiled = both_engines(name, OptLevel.OPTIMIZED)
    assert compare_engines(tree, compiled) == ()


@pytest.mark.slow
@pytest.mark.parametrize("name", workload_names())
def test_engines_identical_unoptimized(name):
    tree, compiled = both_engines(name, OptLevel.UNOPTIMIZED)
    assert compare_engines(tree, compiled) == ()


@pytest.mark.parametrize("name", ("atax", "kmeans"))
def test_sanitizer_armed_subset(name):
    """Hook-compiled variants keep the sanitizer's view identical.

    Both engines execute the *same* compiled module: recompiling per
    engine may legally reorder instructions, which shifts the int
    partition at clock flushes and the exact-float comparison with it.
    """
    from repro.interp import Machine
    from repro.runtime import CgcmRuntime
    from repro.sanitizer import CommSanitizer

    workload = get_workload(name)
    compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED))
    report = compiler.compile_source(workload.source, workload.name)
    runs = {}
    for engine in ("tree", "compiled"):
        machine = Machine(report.module, compiler.config.cost_model,
                          engine=engine)
        runtime = CgcmRuntime(machine)
        sanitizer = CommSanitizer(machine, runtime)
        exit_code = machine.run()
        sanitizer_report = sanitizer.finish()
        runs[engine] = (exit_code, list(machine.stdout),
                        machine.clock.totals(),
                        machine.executed_instructions,
                        sanitizer_report)
    tree, compiled = runs["tree"], runs["compiled"]
    # Everything down to exact clock floats and sanitizer statistics.
    assert tree[:4] == compiled[:4]
    assert tree[4].clean and compiled[4].clean
    assert tree[4].stats == compiled[4].stats
    # The sanitizer saw real traffic, i.e. the hooks did fire.
    assert any(tree[4].stats.values())

    # The full differential oracle stays clean under both engines.
    from repro.sanitizer import run_differential_workload
    for engine in ("tree", "compiled"):
        oracle = run_differential_workload(name, OptLevel.OPTIMIZED,
                                           engine=engine)
        assert oracle.ok, f"{engine}: {oracle.summary()}"


def test_config_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engine"):
        CgcmConfig(engine="jit")


def test_default_engine_is_compiled():
    assert CgcmConfig().engine == "compiled"
    assert len(ALL_WORKLOADS) == 24
