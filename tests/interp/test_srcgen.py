"""Source-engine unit tests: emission, caching, hook variants.

Mirrors ``test_codegen.py`` for the srcgen engine and adds the
compiled-cache keying regression: a sanitizer-armed run must never
reuse an unhooked compiled body, and vice versa.
"""

import pytest

from repro.errors import CgcmUnsupportedError, InterpError
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.interp.srcgen import compile_function_source
from repro.ir import (FunctionType, I64, IRBuilder, Module, verify_module)


def machine_pair(source: str):
    """(tree machine, source-engine machine) for the same source."""
    return (Machine(compile_minic(source), engine="tree"),
            Machine(compile_minic(source), engine="source"))


class TestEmission:
    def test_registers_are_locals_and_source_attached(self):
        source = "int main(void) { return 2 + 3; }"
        machine = Machine(compile_minic(source), engine="source")
        fn = machine.module.get_function("main")
        code = compile_function_source(machine, fn, "cpu", False)
        assert code.mode == "cpu" and not code.hooked
        assert "def __srcgen(args" in code.source
        assert machine.run() == 5

    def test_straight_line_function_has_no_dispatch_loop(self):
        """Block fusion: an acyclic body emits no ``while``/jump table."""
        source = r"""
            long pick(long n) {
                if (n < 10) return n * 2;
                return n - 1;
            }
            int main(void) { return (int) (pick(3) + pick(40)); }
        """
        machine = Machine(compile_minic(source), engine="source")
        assert machine.run() == 45
        fn = machine.module.get_function("pick")
        code = compile_function_source(machine, fn, "cpu", False)
        assert "while True:" not in code.source
        assert "_b =" not in code.source

    def test_loops_keep_the_dispatch_header(self):
        source = r"""
            int main(void) {
                long s = 0;
                for (long i = 0; i < 5; i++) s += i;
                return (int) s;
            }
        """
        machine = Machine(compile_minic(source), engine="source")
        fn = machine.module.get_function("main")
        code = compile_function_source(machine, fn, "cpu", False)
        assert "while True:" in code.source
        assert machine.run() == 10


class TestCompiledCacheKeying:
    """Satellite regression: variants are keyed by armed hook *set*."""

    SOURCE = r"""
        long A[4];
        int main(void) {
            for (int i = 0; i < 4; i++) A[i] = i;
            long s = 0;
            for (int i = 0; i < 4; i++) s += A[i];
            return (int) s;
        }
    """

    @pytest.mark.parametrize("engine", ("compiled", "source"))
    def test_armed_run_never_reuses_unhooked_body(self, engine):
        machine = Machine(compile_minic(self.SOURCE), engine=engine)
        fn = machine.module.get_function("main")
        unhooked = machine.compiled_for(fn)
        assert not unhooked.hooked
        hook = lambda *a: None  # noqa: E731
        machine.mem_hooks.append(hook)
        armed = machine.compiled_for(fn)
        assert armed is not unhooked and armed.hooked
        # ... and an unhooked lookup never reuses the armed body.
        machine.mem_hooks.remove(hook)
        disarmed = machine.compiled_for(fn)
        assert disarmed is unhooked and not disarmed.hooked

    @pytest.mark.parametrize("engine", ("compiled", "source"))
    def test_distinct_hook_sets_get_distinct_variants(self, engine):
        machine = Machine(compile_minic(self.SOURCE), engine=engine)
        fn = machine.module.get_function("main")
        first_hook = lambda *a: None  # noqa: E731
        second_hook = lambda *a: None  # noqa: E731
        machine.mem_hooks.append(first_hook)
        first = machine.compiled_for(fn)
        machine.mem_hooks.append(second_hook)
        second = machine.compiled_for(fn)
        assert second is not first

    def test_code_cache_shared_across_machines(self):
        """Emission happens once per function; later machines only
        re-instantiate the baked namespace."""
        module = compile_minic(self.SOURCE)
        fn = module.get_function("main")
        first = compile_function_source(
            Machine(module, engine="source"), fn, "cpu", False)
        second = compile_function_source(
            Machine(module, engine="source"), fn, "cpu", False)
        assert first is not second  # per-machine callables ...
        assert first.source == second.source  # ... one cached emission
        assert first.__code__ is second.__code__


class TestResultEquivalence:
    SOURCE = r"""
        long fib(long n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main(void) {
            print_i64(fib(15));
            return 0;
        }
    """

    def test_recursion_and_reentrant_locals(self):
        tree, source = machine_pair(self.SOURCE)
        assert tree.run() == source.run() == 0
        assert tree.stdout == source.stdout == ["610"]
        assert tree.clock.totals() == source.clock.totals()
        assert tree.executed_instructions == source.executed_instructions

    def test_division_costs_charged_identically(self):
        program = r"""
            int main(void) {
                long s = 0;
                for (long i = 1; i < 50; i++) s += (1000 / i) % 7;
                print_i64(s);
                return 0;
            }
        """
        tree, source = machine_pair(program)
        tree.run(), source.run()
        assert tree.stdout == source.stdout
        assert tree.clock.totals() == source.clock.totals()

    def test_float_semantics_match(self):
        program = r"""
            int main(void) {
                double z = 0.0;
                print_f64(1.0 / z);
                print_f64(-1.0 / z);
                float f = 1.5;
                print_f64((double) (f * 3.0));
                print_i64((long) (7.9 / 2.0));
                return 0;
            }
        """
        tree, source = machine_pair(program)
        tree.run(), source.run()
        assert tree.stdout == source.stdout

    def test_integer_division_by_zero_raises(self):
        program = r"""
            int main(void) {
                long z = 0;
                return (int) (7 / z);
            }
        """
        machine = Machine(compile_minic(program), engine="source")
        with pytest.raises(InterpError, match="division by zero"):
            machine.run()


class TestHookedVariants:
    def test_mem_hooks_fire_identically(self):
        program = r"""
            long A[4];
            int main(void) {
                for (int i = 0; i < 4; i++) A[i] = i * i;
                long s = 0;
                for (int i = 0; i < 4; i++) s += A[i];
                return (int) s;
            }
        """
        events = {}
        for engine in ("tree", "source"):
            machine = Machine(compile_minic(program), engine=engine)
            log = []
            machine.mem_hooks.append(
                lambda m, kind, addr, size, log=log:
                log.append((kind, addr, size)))
            assert machine.run() == 14
            events[engine] = log
        assert events["tree"] == events["source"]
        assert any(kind == "store" for kind, _, _ in events["tree"])


class TestGpuRestrictions:
    def test_kernel_pointer_store_rejected(self):
        module = compile_minic(r"""
            long G[4];
            long *P[4];
            __global__ void bad(long tid, long **p, long *g) {
                p[tid] = g;
            }
            int main(void) {
                long **dp = (long **) map((char *) P);
                long *dg = (long *) map((char *) G);
                __launch(bad, 1, dp, dg);
                return 0;
            }
        """)
        machine = Machine(module, engine="source")
        from repro.runtime import CgcmRuntime
        CgcmRuntime(machine).declare_all_globals()
        with pytest.raises(CgcmUnsupportedError, match="pointer into"):
            machine.run()


class TestCompileTimeChecks:
    def _malformed_module(self):
        """Verifier-clean function whose use is not dominated by its def."""
        module = Module("m")
        fn = module.add_function("main", FunctionType(I64, []))
        entry = fn.new_block("entry")
        left = fn.new_block("left")
        join = fn.new_block("join")
        b = IRBuilder(entry)
        flag = b.alloca(I64)
        b.store(0, flag)
        cond = b.cmp("eq", b.load(flag), 1)
        b.cbr(cond, left, join)
        b.position_at_end(left)
        defined = b.add(b.const(I64, 2), 3)   # only defined on this path
        b.br(join)
        b.position_at_end(join)
        b.ret(defined)                        # undefined when entry -> join
        return module, fn

    def test_srcgen_rejects_undominated_use(self):
        module, fn = self._malformed_module()
        verify_module(module)
        machine = Machine(module, engine="source")
        with pytest.raises(InterpError, match="does not dominate"):
            compile_function_source(machine, fn, "cpu", False)

    def test_unreachable_blocks_are_not_flagged(self):
        module = Module("m")
        fn = module.add_function("main", FunctionType(I64, []))
        entry = fn.new_block("entry")
        dead = fn.new_block("dead")
        b = IRBuilder(entry)
        b.ret(0)
        b.position_at_end(dead)
        ghost = b.add(b.const(I64, 1), 1)
        b.ret(ghost)
        machine = Machine(module, engine="source")
        compile_function_source(machine, fn, "cpu", False)
        assert machine.run() == 0

    def test_declaration_cannot_be_compiled(self):
        module = Module("m")
        decl = module.declare_function("ext", FunctionType(I64, []))
        machine = Machine(module, engine="source")
        with pytest.raises(InterpError, match="declaration"):
            compile_function_source(machine, decl, "cpu", False)

    def test_bad_mode_rejected(self):
        source = "int main(void) { return 0; }"
        machine = Machine(compile_minic(source), engine="source")
        fn = machine.module.get_function("main")
        with pytest.raises(InterpError, match="mode"):
            compile_function_source(machine, fn, "sequential", False)
