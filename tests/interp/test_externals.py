"""Tests for the external-function table."""

import pytest

from repro.errors import InterpError
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.interp.externals import (GPU_SAFE, call_cost,
                                    external_signatures)


def run(source):
    machine = Machine(compile_minic(source))
    code = machine.run()
    return code, machine.stdout


class TestSignatures:
    def test_every_external_has_handler_and_signature(self):
        machine = Machine(compile_minic("int main(void) { return 0; }"))
        signatures = external_signatures()
        assert set(machine.externals) == set(signatures)

    def test_gpu_safe_is_subset(self):
        assert GPU_SAFE <= set(external_signatures())

    def test_call_costs_positive(self):
        for name in external_signatures():
            assert call_cost(name) > 0


class TestMathFunctions:
    def test_trigonometry(self):
        _, out = run("""
        int main(void) {
            print_f64(sin(0.0));
            print_f64(cos(0.0));
            print_f64(tan(0.0));
            print_f64(atan(1.0) * 4.0);
            return 0;
        }""")
        assert out[0] == "0"
        assert out[1] == "1"
        assert out[2] == "0"
        assert abs(float(out[3]) - 3.14159) < 1e-4

    def test_exponentials(self):
        _, out = run("""
        int main(void) {
            print_f64(exp(0.0));
            print_f64(log(1.0));
            print_f64(exp2(10.0));
            return 0;
        }""")
        assert out == ["1", "0", "1024"]

    def test_rounding(self):
        _, out = run("""
        int main(void) {
            print_f64(floor(2.7));
            print_f64(ceil(2.2));
            print_f64(floor(-2.7));
            return 0;
        }""")
        assert out == ["2", "3", "-3"]

    def test_domain_error_raises(self):
        machine = Machine(compile_minic(
            "int main(void) { double z = -1.0; print_f64(sqrt(z)); "
            "return 0; }"))
        with pytest.raises(InterpError, match="domain"):
            machine.run()

    def test_abs_i64(self):
        _, out = run("""
        int main(void) {
            print_i64(abs_i64(-42));
            print_i64(abs_i64(42));
            return 0;
        }""")
        assert out == ["42", "42"]


class TestAllocationFunctions:
    def test_calloc_zeroes(self):
        _, out = run("""
        int main(void) {
            long *xs = (long *) calloc(4, 8);
            print_i64(xs[0] + xs[3]);
            free(xs);
            return 0;
        }""")
        assert out == ["0"]

    def test_realloc_preserves_data(self):
        _, out = run("""
        int main(void) {
            long *xs = (long *) malloc(2 * 8);
            xs[0] = 11;
            xs[1] = 22;
            xs = (long *) realloc(xs, 8 * 8);
            xs[7] = 77;
            print_i64(xs[0] + xs[1] + xs[7]);
            free(xs);
            return 0;
        }""")
        assert out == ["110"]

    def test_heap_hooks_fire(self):
        machine = Machine(compile_minic("""
        int main(void) {
            char *p = (char *) malloc(32);
            free(p);
            return 0;
        }"""))
        events = []
        machine.heap_hooks.append(
            lambda m, kind, addr, size: events.append((kind, size)))
        machine.run()
        assert ("malloc", 32) in events
        assert events[-1][0] == "free"


class TestRng:
    def test_bounded(self):
        _, out = run("""
        int main(void) {
            srand(99);
            for (int i = 0; i < 20; i++) {
                long v = rand_i64(10);
                if (v < 0) print_str("NEGATIVE");
                if (v >= 10) print_str("TOO BIG");
            }
            print_str("done");
            return 0;
        }""")
        assert out == ["done"]

    def test_rand_f64_in_unit_interval(self):
        machine = Machine(compile_minic("int main(void) { return 0; }"))
        machine.run()
        for _ in range(100):
            value = machine.externals["rand_f64"](machine, [])
            assert 0.0 <= value < 1.0

    def test_bad_bound_raises(self):
        machine = Machine(compile_minic(
            "int main(void) { rand_i64(0); return 0; }"))
        with pytest.raises(InterpError, match="positive"):
            machine.run()

    def test_seed_changes_stream(self):
        def stream(seed):
            machine = Machine(compile_minic(f"""
            int main(void) {{
                srand({seed});
                print_i64(rand_i64(1000000));
                return 0;
            }}"""))
            machine.run()
            return machine.stdout
        assert stream(1) != stream(2)


class TestPrinting:
    def test_float_formatting(self):
        _, out = run("""
        int main(void) {
            print_f64(1.0);
            print_f64(0.5);
            print_f64(-1234.25);
            print_f64(1e20);
            return 0;
        }""")
        assert out == ["1", "0.5", "-1234.25", "1e+20"]

    def test_string_and_int(self):
        _, out = run("""
        int main(void) {
            print_str("value:");
            print_i64(-7);
            return 0;
        }""")
        assert out == ["value:", "-7"]
