"""Kernel execution on the simulated GPU: grids, timing, restrictions."""

import pytest

from repro.errors import CgcmUnsupportedError, InterpError, MemoryFault
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.runtime import CgcmRuntime


def run_with_runtime(source: str, record_events: bool = False):
    machine = Machine(compile_minic(source), record_events=record_events)
    runtime = CgcmRuntime(machine)
    runtime.declare_all_globals()
    code = machine.run()
    return machine, code


class TestGridExecution:
    def test_every_thread_runs(self):
        machine, code = run_with_runtime("""
        long hits[32];
        __global__ void mark(long tid, long *h) { h[tid] = tid + 1; }
        int main(void) {
            long *d = (long *) map((char *) hits);
            __launch(mark, 32, d);
            unmap((char *) hits);
            release((char *) hits);
            long total = 0;
            for (int i = 0; i < 32; i++) total += hits[i];
            print_i64(total);
            return 0;
        }""")
        assert machine.stdout == [str(sum(range(1, 33)))]

    def test_zero_grid_runs_no_threads(self):
        machine, code = run_with_runtime("""
        long hits[4];
        __global__ void mark(long tid, long *h) { h[tid] = 1; }
        int main(void) {
            long *d = (long *) map((char *) hits);
            __launch(mark, 0, d);
            unmap((char *) hits);
            release((char *) hits);
            print_i64(hits[0]);
            return 0;
        }""")
        assert machine.stdout == ["0"]

    def test_kernel_allocas_are_thread_private(self):
        machine, code = run_with_runtime("""
        double out[8];
        __global__ void work(long tid, double *o) {
            double acc = 0.0;
            for (int k = 0; k <= tid; k++) acc += 1.0;
            o[tid] = acc;
        }
        int main(void) {
            double *d = (double *) map((char *) out);
            __launch(work, 8, d);
            unmap((char *) out);
            release((char *) out);
            print_f64(out[7]);
            print_f64(out[0]);
            return 0;
        }""")
        assert machine.stdout == ["8", "1"]

    def test_kernel_reads_global_scalar_from_named_region(self):
        """Globals referenced in kernels resolve via cuModuleGetGlobal."""
        machine, code = run_with_runtime("""
        double factor;
        double xs[4];
        __global__ void scale(long tid, double *x) {
            x[tid] = x[tid] * factor;
        }
        int main(void) {
            factor = 3.0;
            for (int i = 0; i < 4; i++) xs[i] = i + 1;
            map((char *) &factor);
            double *d = (double *) map((char *) xs);
            __launch(scale, 4, d);
            unmap((char *) xs);
            release((char *) xs);
            release((char *) &factor);
            print_f64(xs[3]);
            return 0;
        }""")
        assert machine.stdout == ["12"]


class TestIsolation:
    def test_kernel_cannot_touch_host_memory(self):
        machine = Machine(compile_minic("""
        double xs[4];
        __global__ void bad(long tid, double *x) { x[tid] = 1.0; }
        int main(void) {
            /* Pass the raw host pointer without mapping. */
            __launch(bad, 4, xs);
            return 0;
        }"""))
        with pytest.raises(MemoryFault):
            machine.run()

    def test_host_cannot_dereference_device_pointer(self):
        machine, code = None, None
        machine = Machine(compile_minic("""
        double xs[4];
        int main(void) {
            double *d = (double *) map((char *) xs);
            return (int) *d;   /* CPU deref of GPU pointer */
        }"""))
        CgcmRuntime(machine).declare_all_globals()
        runtime = CgcmRuntime(machine)
        runtime.declare_all_globals()
        with pytest.raises(MemoryFault):
            machine.run()

    def test_kernel_storing_pointer_rejected(self):
        machine = Machine(compile_minic("""
        char *slots[4];
        __global__ void bad(long tid, char **s) { s[tid] = (char *) s; }
        int main(void) {
            char **d = (char **) mapArray((char *) slots);
            __launch(bad, 4, d);
            return 0;
        }"""))
        CgcmRuntime(machine).declare_all_globals()
        with pytest.raises(CgcmUnsupportedError, match="pointer"):
            machine.run()

    def test_kernel_cannot_call_host_externals(self):
        machine = Machine(compile_minic("""
        __global__ void bad(long tid) { print_i64(tid); }
        int main(void) { __launch(bad, 1); return 0; }"""))
        with pytest.raises(InterpError, match="host-only"):
            machine.run()


class TestTimingModel:
    def test_gpu_time_accounts_launch_latency(self):
        machine, _ = run_with_runtime("""
        double xs[4];
        __global__ void nop(long tid, double *x) { }
        int main(void) {
            double *d = (double *) map((char *) xs);
            __launch(nop, 4, d);
            __launch(nop, 4, d);
            unmap((char *) xs);
            release((char *) xs);
            return 0;
        }""")
        model = machine.clock.model
        assert machine.clock.gpu_seconds >= 2 * model.kernel_launch_latency_s
        assert machine.clock.counters["kernel_launches"] == 2

    def test_wide_grids_amortize(self):
        """GPU time grows sublinearly until the cores saturate."""
        def gpu_time(grid):
            machine, _ = run_with_runtime(f"""
            double xs[{grid}];
            __global__ void work(long tid, double *x) {{
                double a = 0.0;
                for (int i = 0; i < 20; i++) a += 1.0;
                x[tid] = a;
            }}
            int main(void) {{
                double *d = (double *) map((char *) xs);
                __launch(work, {grid}, d);
                unmap((char *) xs);
                release((char *) xs);
                return 0;
            }}""")
            return machine.clock.gpu_seconds
        # 64 threads fit in the 480-core machine alongside 1 thread:
        # per-thread critical path dominates, so times are equal.
        assert gpu_time(64) == pytest.approx(gpu_time(1), rel=0.05)

    def test_comm_time_scales_with_bytes(self):
        def comm_time(n):
            machine, _ = run_with_runtime(f"""
            double xs[{n}];
            __global__ void nop(long tid, double *x) {{ }}
            int main(void) {{
                double *d = (double *) map((char *) xs);
                __launch(nop, 1, d);
                unmap((char *) xs);
                release((char *) xs);
                return 0;
            }}""")
            return machine.clock.comm_seconds
        assert comm_time(4096) > comm_time(4)
