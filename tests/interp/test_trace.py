"""Tests for event traces and the schedule renderer (Figure 2 support)."""

from repro.gpu.timing import LANE_COMM, LANE_CPU, LANE_GPU, TraceEvent
from repro.interp import (count_direction_switches, render_schedule,
                          summarize_events)
from tests.conftest import run_source
from repro.core import OptLevel

CYCLIC_PROGRAM = r"""
double data[64];
int main(void) {
    for (int i = 0; i < 64; i++) data[i] = i;
    for (int t = 0; t < 5; t++) {
        for (int i = 0; i < 64; i++) {
            data[i] = data[i] * 1.5 + t;
        }
    }
    double s = 0.0;
    for (int i = 0; i < 64; i++) s += data[i];
    print_f64(s);
    return 0;
}
"""


class TestRenderer:
    def test_empty_trace(self):
        assert render_schedule([]) == "(empty trace)"

    def test_lanes_rendered(self):
        events = [
            TraceEvent(LANE_CPU, "cpu", 0.0, 1.0),
            TraceEvent(LANE_COMM, "HtoD", 1.0, 1.0),
            TraceEvent(LANE_GPU, "kernel", 2.0, 1.0),
        ]
        drawing = render_schedule(events, width=30)
        lines = drawing.splitlines()
        assert lines[0].startswith("CPU ")
        assert "#" in lines[0]
        assert "~" in lines[1]
        assert "=" in lines[2]

    def test_summarize(self):
        events = [TraceEvent(LANE_GPU, "k[8]", 0.0, 1e-6)]
        lines = summarize_events(events)
        assert len(lines) == 1
        assert "k[8]" in lines[0]


class TestScheduleShape:
    def test_unoptimized_is_cyclic_optimized_is_acyclic(self):
        """The core claim of paper Figure 2: optimization removes the
        back-and-forth alternation between transfers and kernels."""
        unopt = run_source(CYCLIC_PROGRAM, OptLevel.UNOPTIMIZED,
                           record_events=True)
        opt = run_source(CYCLIC_PROGRAM, OptLevel.OPTIMIZED,
                         record_events=True)
        assert unopt.observable() == opt.observable()
        cyclic = count_direction_switches(unopt.events)
        acyclic = count_direction_switches(opt.events)
        assert cyclic > acyclic
        assert acyclic <= 4


class TestChromeTrace:
    def test_json_shape(self):
        import json

        from repro.interp.trace import chrome_trace_json

        events = [
            TraceEvent(LANE_CPU, "loop", 0.0, 1e-6),
            TraceEvent(LANE_COMM, "HtoD 64B", 0.0, 2e-6, track="h2d"),
            TraceEvent(LANE_GPU, "k[8]", 2e-6, 1e-6, track="compute"),
        ]
        document = json.loads(chrome_trace_json(events, name="unit"))
        records = document["traceEvents"]
        names = {r["args"]["name"] for r in records
                 if r["name"] == "thread_name"}
        # One row per lane plus one per stream that appeared.
        assert {"cpu", "comm", "gpu", "h2d", "compute"} <= names
        spans = [r for r in records if r["ph"] == "X"]
        assert len(spans) == 3
        copy = next(r for r in spans if r["name"] == "HtoD 64B")
        assert copy["cat"] == LANE_COMM
        assert copy["ts"] == 0.0
        assert copy["dur"] == 2.0  # microseconds
        # The copy sits on the h2d row, not the generic comm row.
        h2d_tid = next(r["tid"] for r in records
                       if r["name"] == "thread_name"
                       and r["args"]["name"] == "h2d")
        assert copy["tid"] == h2d_tid

    def test_streams_run_emits_stream_tracks(self):
        """An actual streamed run places async spans on stream rows."""
        import json

        from repro.core import CgcmCompiler, CgcmConfig
        from repro.interp.trace import chrome_trace_json

        config = CgcmConfig(opt_level=OptLevel.OPTIMIZED,
                            record_events=True, streams=True)
        compiler = CgcmCompiler(config)
        report = compiler.compile_source(CYCLIC_PROGRAM, "traced")
        result = compiler.execute(report)
        document = json.loads(chrome_trace_json(result.events, "traced"))
        names = {r["args"]["name"] for r in document["traceEvents"]
                 if r["name"] == "thread_name"}
        assert "h2d" in names or "d2h" in names
