"""Tests for event traces and the schedule renderer (Figure 2 support)."""

from repro.gpu.timing import LANE_COMM, LANE_CPU, LANE_GPU, TraceEvent
from repro.interp import (count_direction_switches, render_schedule,
                          summarize_events)
from tests.conftest import run_source
from repro.core import OptLevel

CYCLIC_PROGRAM = r"""
double data[64];
int main(void) {
    for (int i = 0; i < 64; i++) data[i] = i;
    for (int t = 0; t < 5; t++) {
        for (int i = 0; i < 64; i++) {
            data[i] = data[i] * 1.5 + t;
        }
    }
    double s = 0.0;
    for (int i = 0; i < 64; i++) s += data[i];
    print_f64(s);
    return 0;
}
"""


class TestRenderer:
    def test_empty_trace(self):
        assert render_schedule([]) == "(empty trace)"

    def test_lanes_rendered(self):
        events = [
            TraceEvent(LANE_CPU, "cpu", 0.0, 1.0),
            TraceEvent(LANE_COMM, "HtoD", 1.0, 1.0),
            TraceEvent(LANE_GPU, "kernel", 2.0, 1.0),
        ]
        drawing = render_schedule(events, width=30)
        lines = drawing.splitlines()
        assert lines[0].startswith("CPU ")
        assert "#" in lines[0]
        assert "~" in lines[1]
        assert "=" in lines[2]

    def test_summarize(self):
        events = [TraceEvent(LANE_GPU, "k[8]", 0.0, 1e-6)]
        lines = summarize_events(events)
        assert len(lines) == 1
        assert "k[8]" in lines[0]


class TestScheduleShape:
    def test_unoptimized_is_cyclic_optimized_is_acyclic(self):
        """The core claim of paper Figure 2: optimization removes the
        back-and-forth alternation between transfers and kernels."""
        unopt = run_source(CYCLIC_PROGRAM, OptLevel.UNOPTIMIZED,
                           record_events=True)
        opt = run_source(CYCLIC_PROGRAM, OptLevel.OPTIMIZED,
                         record_events=True)
        assert unopt.observable() == opt.observable()
        cyclic = count_direction_switches(unopt.events)
        acyclic = count_direction_switches(opt.events)
        assert cyclic > acyclic
        assert acyclic <= 4
