"""Overlap equivalence: streams runs must be observably identical.

The streams subsystem reorders communication and defers its modeled
time, but data effects stay eager and the comm-overlap transform only
moves calls it can prove independent -- so a streamed run must produce
byte-identical observables to the serial run of the same program, with
a critical path no longer than the serial total.

Tier-1 covers a fast workload subset; the ``slow`` marker covers all
24 plus a sanitizer-armed sweep.
"""

import pytest

from repro.core.compiler import CgcmCompiler
from repro.core.config import CgcmConfig, OptLevel
from repro.evaluation.overlap import compare_overlap, run_overlap_bench
from repro.workloads import ALL_WORKLOADS, get_workload

#: Small-but-representative subset for tier-1: covers globals-only,
#: heap pointers, pointer arrays (mapArray), and glue-kernel programs.
FAST_SUBSET = ("gemm", "atax", "jacobi-2d-imper", "kmeans", "nw",
               "blackscholes")


def run_pair(workload):
    serial = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED))
    serial_result = serial.execute(
        serial.compile_source(workload.source, workload.name))
    streamed = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED,
                                       streams=True))
    streamed_result = streamed.execute(
        streamed.compile_source(workload.source, workload.name))
    return serial_result, streamed_result


@pytest.mark.parametrize("name", FAST_SUBSET)
def test_fast_subset_byte_identical(name):
    serial, streamed = run_pair(get_workload(name))
    assert streamed.observable() == serial.observable()
    assert streamed.critical_path_seconds <= serial.total_seconds
    # The lane accounting stays discipline-independent.
    assert streamed.counters["kernel_launches"] \
        == serial.counters["kernel_launches"]


@pytest.mark.parametrize("name", FAST_SUBSET[:3])
def test_fast_subset_sanitizer_clean(name):
    workload = get_workload(name)
    compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED,
                                       streams=True, sanitize=True))
    report = compiler.compile_source(workload.source, workload.name)
    result = compiler.execute(report)
    assert result.sanitizer_report is not None
    assert result.sanitizer_report.clean


def test_compare_overlap_contract_fields():
    comparison = compare_overlap(get_workload("gemm"))
    assert comparison.ok, comparison.mismatches
    assert comparison.speedup >= 1.0
    assert comparison.limiting_factor in ("GPU", "Comm.", "Other")
    assert 0.0 <= comparison.comm_fraction <= 1.0
    assert comparison.overlap_stats["async_rewrites"] > 0


@pytest.mark.slow
def test_all_workloads_byte_identical():
    for workload in ALL_WORKLOADS:
        serial, streamed = run_pair(workload)
        assert streamed.observable() == serial.observable(), workload.name
        assert streamed.critical_path_seconds <= serial.total_seconds, \
            workload.name


@pytest.mark.slow
def test_all_workloads_sanitizer_clean_with_streams():
    for workload in ALL_WORKLOADS:
        compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED,
                                           streams=True, sanitize=True))
        report = compiler.compile_source(workload.source, workload.name)
        result = compiler.execute(report)
        assert result.sanitizer_report.clean, workload.name


@pytest.mark.slow
def test_overlap_bench_sweep_clean():
    bench = run_overlap_bench()
    assert bench.ok
    assert bench.geomean_speedup >= 1.0
    assert bench.comm_bound_geomean_speedup > 1.0
    payload = bench.to_json()
    assert payload["schema"] == "repro-bench-streams/1"
    assert len(payload["workloads"]) == len(ALL_WORKLOADS)
