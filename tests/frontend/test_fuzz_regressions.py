"""Regression tests for frontend bugs surfaced by the scenario fuzzer.

Each test is the minimized form of a crash-on-valid-input found while
widening the generated-program corpus; the program text stays as close
to the found form as minimization allows.
"""

import pytest

from repro import compile_and_run, compile_minic, OptLevel
from repro.errors import FrontendError


class TestTrailingCommaInitializers:
    """C99 6.7.8: a trailing comma inside a brace initializer is part
    of the grammar.  The parser treated it as the start of another
    initializer and died on the closing brace."""

    def test_flat_initializer_trailing_comma(self):
        result = compile_and_run(
            "long A[3] = {1, 2, 3,};\n"
            "int main(void){ print_i64(A[0] + A[2]); return 0; }",
            OptLevel.OPTIMIZED)
        assert list(result.stdout) == ["4"]

    def test_single_element_trailing_comma(self):
        result = compile_and_run(
            "long A[1] = {5,};\n"
            "int main(void){ print_i64(A[0]); return 0; }",
            OptLevel.SEQUENTIAL)
        assert list(result.stdout) == ["5"]

    def test_nested_initializer_trailing_commas(self):
        result = compile_and_run(
            "long M[2][2] = {{1, 2,}, {3, 4,},};\n"
            "int main(void){ print_i64(M[1][1]); return 0; }",
            OptLevel.OPTIMIZED)
        assert list(result.stdout) == ["4"]

    def test_double_array_trailing_comma(self):
        result = compile_and_run(
            "double A[2] = {0.25, 1.5,};\n"
            "int main(void){ print_f64(A[0] + A[1]); return 0; }",
            OptLevel.SEQUENTIAL)
        assert list(result.stdout) == ["1.75"]

    def test_lone_comma_still_rejected(self):
        with pytest.raises(FrontendError):
            compile_minic("long A[1] = {,};\n"
                          "int main(void){ return 0; }")

    def test_double_comma_still_rejected(self):
        with pytest.raises(FrontendError):
            compile_minic("long A[3] = {1,, 2};\n"
                          "int main(void){ return 0; }")


class TestProbedCorners:
    """Valid-input corners the fuzz campaign exercised; pinned here so
    they stay working (none of these crashed, but they are the nearest
    neighbours of the class that did)."""

    def test_partial_initializer_zero_fills(self):
        result = compile_and_run(
            "long A[5] = {1, 2};\n"
            "int main(void){ print_i64(A[0] + A[4]); return 0; }",
            OptLevel.SEQUENTIAL)
        assert list(result.stdout) == ["1"]

    def test_empty_initializer_list(self):
        result = compile_and_run(
            "long A[2] = {};\n"
            "int main(void){ print_i64(A[0] + A[1]); return 0; }",
            OptLevel.SEQUENTIAL)
        assert list(result.stdout) == ["0"]

    def test_conditional_is_not_assignable(self):
        # (c ? a : b) = 9 is NOT an lvalue in C; the typed diagnostic
        # must say so instead of crashing.
        with pytest.raises(FrontendError, match="not assignable"):
            compile_minic(
                "int main(void){ long a; long b; long c;\n"
                "c = 1; (c ? a : b) = 9; return 0; }")
