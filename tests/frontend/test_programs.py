"""End-to-end MiniC programs: richer language-feature coverage."""

import pytest

from repro.frontend import compile_minic
from repro.interp import Machine


def run(source):
    machine = Machine(compile_minic(source))
    code = machine.run()
    return code, machine.stdout


class TestAlgorithms:
    def test_insertion_sort(self):
        _, out = run("""
        long data[10];
        int main(void) {
            long seed = 7;
            for (int i = 0; i < 10; i++) {
                seed = (seed * 131 + 17) % 1000;
                data[i] = seed;
            }
            for (int i = 1; i < 10; i++) {
                long key = data[i];
                int j = i - 1;
                while (j >= 0 && data[j] > key) {
                    data[j + 1] = data[j];
                    j--;
                }
                data[j + 1] = key;
            }
            for (int i = 1; i < 10; i++)
                if (data[i - 1] > data[i]) print_str("UNSORTED");
            print_i64(data[0]);
            print_i64(data[9]);
            return 0;
        }""")
        assert "UNSORTED" not in out
        assert int(out[0]) <= int(out[1])

    def test_string_reverse(self):
        _, out = run("""
        int main(void) {
            char buffer[16] = "minic!";
            long n = 0;
            while (buffer[n] != 0) n++;
            for (int i = 0; i < n / 2; i++) {
                char tmp = buffer[i];
                buffer[i] = buffer[n - 1 - i];
                buffer[n - 1 - i] = tmp;
            }
            print_str(buffer);
            return 0;
        }""")
        assert out == ["!cinim"]

    def test_linked_structure_via_indices(self):
        _, out = run("""
        struct node { double value; long next; };
        struct node pool[8];
        int main(void) {
            /* build a list 0 -> 3 -> 6 -> end */
            pool[0].value = 1.5; pool[0].next = 3;
            pool[3].value = 2.5; pool[3].next = 6;
            pool[6].value = 4.0; pool[6].next = -1;
            double total = 0.0;
            long cursor = 0;
            while (cursor >= 0) {
                total += pool[cursor].value;
                cursor = pool[cursor].next;
            }
            print_f64(total);
            return 0;
        }""")
        assert out == ["8"]

    def test_matrix_transpose_in_place(self):
        _, out = run("""
        double m[4][4];
        int main(void) {
            for (int i = 0; i < 4; i++)
                for (int j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            for (int i = 0; i < 4; i++)
                for (int j = i + 1; j < 4; j++) {
                    double tmp = m[i][j];
                    m[i][j] = m[j][i];
                    m[j][i] = tmp;
                }
            print_f64(m[0][3]);
            print_f64(m[3][0]);
            return 0;
        }""")
        assert out == ["30", "3"]

    def test_binary_search(self):
        _, out = run("""
        long xs[16];
        long find(long target) {
            long lo = 0;
            long hi = 15;
            while (lo <= hi) {
                long mid = (lo + hi) / 2;
                if (xs[mid] == target) return mid;
                if (xs[mid] < target) lo = mid + 1;
                else hi = mid - 1;
            }
            return -1;
        }
        int main(void) {
            for (int i = 0; i < 16; i++) xs[i] = i * 3;
            print_i64(find(21));
            print_i64(find(22));
            print_i64(find(0));
            print_i64(find(45));
            return 0;
        }""")
        assert out == ["7", "-1", "0", "15"]


class TestPointerIdioms:
    def test_swap_through_pointers(self):
        _, out = run("""
        void swap(double *a, double *b) {
            double tmp = *a;
            *a = *b;
            *b = tmp;
        }
        int main(void) {
            double x = 1.0;
            double y = 2.0;
            swap(&x, &y);
            print_f64(x);
            print_f64(y);
            return 0;
        }""")
        assert out == ["2", "1"]

    def test_out_parameters(self):
        _, out = run("""
        void minmax(double *xs, long n, double *lo, double *hi) {
            *lo = xs[0];
            *hi = xs[0];
            for (int i = 1; i < n; i++) {
                if (xs[i] < *lo) *lo = xs[i];
                if (xs[i] > *hi) *hi = xs[i];
            }
        }
        int main(void) {
            double data[5] = {3.0, -1.0, 4.0, 1.0, 5.0};
            double lo, hi;
            minmax(data, 5, &lo, &hi);
            print_f64(lo);
            print_f64(hi);
            return 0;
        }""")
        assert out == ["-1", "5"]

    def test_pointer_walk(self):
        _, out = run("""
        int main(void) {
            char text[12] = "count me";
            char *p = text;
            long letters = 0;
            while (*p != 0) {
                if (*p != ' ') letters++;
                p++;
            }
            print_i64(letters);
            return 0;
        }""")
        assert out == ["7"]

    def test_function_returning_pointer(self):
        _, out = run("""
        double table[8];
        double *slot(long i) { return &table[i]; }
        int main(void) {
            *slot(3) = 9.5;
            print_f64(table[3]);
            return 0;
        }""")
        assert out == ["9.5"]


class TestControlEdgeCases:
    def test_do_while_executes_once(self):
        _, out = run("""
        int main(void) {
            long n = 0;
            do { n++; } while (n < 0);
            print_i64(n);
            return 0;
        }""")
        assert out == ["1"]

    def test_deeply_nested_breaks(self):
        _, out = run("""
        int main(void) {
            long found = -1;
            for (int i = 0; i < 5 && found < 0; i++) {
                for (int j = 0; j < 5; j++) {
                    if (i * j == 6) { found = i * 10 + j; break; }
                }
            }
            print_i64(found);
            return 0;
        }""")
        assert out == ["23"]

    def test_comma_operator(self):
        _, out = run("""
        int main(void) {
            long a = 0;
            long b = 0;
            for (int i = 0; i < 3; i++, a += 2)
                b++;
            print_i64(a);
            print_i64(b);
            return 0;
        }""")
        assert out == ["6", "3"]

    def test_ternary_chains(self):
        _, out = run("""
        long grade(long score) {
            return score >= 90 ? 4 : score >= 80 ? 3
                 : score >= 70 ? 2 : score >= 60 ? 1 : 0;
        }
        int main(void) {
            print_i64(grade(95));
            print_i64(grade(75));
            print_i64(grade(10));
            return 0;
        }""")
        assert out == ["4", "2", "0"]

    def test_early_return_in_loop(self):
        _, out = run("""
        long first_factor(long n) {
            for (long d = 2; d * d <= n; d++)
                if (n % d == 0) return d;
            return n;
        }
        int main(void) {
            print_i64(first_factor(91));
            print_i64(first_factor(97));
            return 0;
        }""")
        assert out == ["7", "97"]
