"""MiniC parser tests (AST shape and error recovery)."""

import pytest

from repro.errors import FrontendError
from repro.frontend import parse_minic
from repro.frontend import ast


class TestDeclarations:
    def test_global_array_dims(self):
        program = parse_minic("double A[4][8];")
        g = program.globals[0]
        assert g.type_spec.array_dims == (4, 8)
        assert g.type_spec.base == "double"

    def test_constant_folded_dims(self):
        program = parse_minic("double A[4 * 8 + 2];")
        assert program.globals[0].type_spec.array_dims == (34,)

    def test_inferred_dim_from_list(self):
        program = parse_minic('char *days[] = {"mon", "tue"};')
        g = program.globals[0]
        assert g.type_spec.array_dims == (-1,)
        assert len(g.init_list) == 2

    def test_multiple_declarators(self):
        program = parse_minic("long a, *b, c[4];")
        names = [g.name for g in program.globals]
        assert names == ["a", "b", "c"]
        assert program.globals[1].type_spec.pointers == 1
        assert program.globals[2].type_spec.array_dims == (4,)

    def test_const_flag(self):
        program = parse_minic("const double pi = 3.14;")
        assert program.globals[0].is_const

    def test_modifier_soup(self):
        program = parse_minic("static unsigned long int x;")
        assert program.globals[0].type_spec.base == "long"

    def test_struct_definition(self):
        program = parse_minic("""
        struct node { double value; long next_index; };
        struct node pool[16];
        """)
        assert program.structs[0].name == "node"
        assert len(program.structs[0].fields) == 2
        assert program.globals[0].type_spec.base == "struct node"


class TestFunctions:
    def test_params_and_array_decay(self):
        program = parse_minic("void f(double *a, long n, double b[10]) {}")
        params = program.functions[0].params
        assert params[0].type_spec.pointers == 1
        assert params[1].type_spec.pointers == 0
        assert params[2].type_spec.pointers == 1  # decayed

    def test_kernel_flag(self):
        program = parse_minic("__global__ void k(long tid) {}")
        assert program.functions[0].is_kernel

    def test_prototype(self):
        program = parse_minic("double helper(double x);")
        assert program.functions[0].body is None


class TestExpressions:
    def _expr(self, text):
        program = parse_minic(f"int main(void) {{ return {text}; }}")
        stmt = program.functions[0].body.statements[0]
        return stmt.value

    def test_precedence(self):
        expr = self._expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"

    def test_comparison_binds_looser_than_shift(self):
        expr = self._expr("a << 2 < b")
        assert expr.op == "<"
        assert expr.lhs.op == "<<"

    def test_ternary(self):
        expr = self._expr("a ? b : c ? d : e")
        assert isinstance(expr, ast.Conditional)
        assert isinstance(expr.if_false, ast.Conditional)

    def test_cast_vs_paren(self):
        cast = self._expr("(double) x")
        assert isinstance(cast, ast.CastExpr)
        paren = self._expr("(x) + 1")
        assert isinstance(paren, ast.Binary)

    def test_sizeof_type(self):
        expr = self._expr("sizeof(double)")
        assert isinstance(expr, ast.SizeofExpr)
        assert expr.target.base == "double"

    def test_postfix_chain(self):
        expr = self._expr("a[1][2]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_member_arrow(self):
        expr = self._expr("p->x")
        assert isinstance(expr, ast.Member) and expr.arrow

    def test_launch_expression(self):
        program = parse_minic("""
        __global__ void k(long tid, double *a) {}
        int main(void) { __launch(k, 64, 0); return 0; }
        """)
        stmt = program.functions[1].body.statements[0]
        assert isinstance(stmt.expr, ast.LaunchExpr)
        assert stmt.expr.kernel == "k"

    def test_unary_forms(self):
        assert isinstance(self._expr("-x"), ast.Unary)
        assert isinstance(self._expr("!x"), ast.Unary)
        assert isinstance(self._expr("&x"), ast.Unary)
        assert isinstance(self._expr("*p"), ast.Unary)
        assert self._expr("x++").op == "p++"
        assert self._expr("++x").op == "++"


class TestStatements:
    def _stmts(self, body):
        program = parse_minic(f"int main(void) {{ {body} }}")
        return program.functions[0].body.statements

    def test_for_with_declaration(self):
        stmts = self._stmts("for (int i = 0; i < 4; i++) ;")
        loop = stmts[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.Declaration)

    def test_dangling_else(self):
        stmts = self._stmts("if (a) if (b) x = 1; else x = 2;")
        outer = stmts[0]
        assert outer.else_body is None
        assert outer.then_body.else_body is not None

    def test_do_while(self):
        stmts = self._stmts("do { x = 1; } while (x < 3);")
        assert isinstance(stmts[0], ast.DoWhile)

    def test_local_multi_declarator(self):
        stmts = self._stmts("double a = 1.0, b = 2.0;")
        assert isinstance(stmts[0], ast.DeclGroup)
        assert len(stmts[0].declarations) == 2


class TestErrors:
    @pytest.mark.parametrize("source", [
        "int main(void) { return 1 +; }",
        "int main(void) { if (1 { } }",
        "int main(void { return 0; }",
        "double A[x];",          # non-constant dimension
        "__global__ double g;",  # __global__ on a variable
        "int main(void) { break; }",
    ])
    def test_rejected(self, source):
        with pytest.raises(FrontendError):
            from repro.frontend import compile_minic
            compile_minic(source)
