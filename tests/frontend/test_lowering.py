"""Lowering tests: semantic checks and generated-IR behaviour."""

import pytest

from repro.errors import FrontendError
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.ir import verify_module


def run(source):
    module = compile_minic(source)
    verify_module(module)
    machine = Machine(module)
    code = machine.run()
    return code, machine.stdout


class TestConversions:
    def test_int_to_double_promotion(self):
        _, out = run("""
        int main(void) {
            double d = 1;
            long n = 3;
            print_f64(d / 2);
            print_f64(n / 2.0);
            return 0;
        }""")
        assert out == ["0.5", "1.5"]

    def test_char_arithmetic_promotes(self):
        _, out = run("""
        int main(void) {
            char c = 'A';
            print_i64(c + 1);
            return 0;
        }""")
        assert out == ["66"]

    def test_float_to_int_truncates(self):
        _, out = run("""
        int main(void) {
            long n = (long) 2.9;
            long m = (long) -2.9;
            print_i64(n);
            print_i64(m);
            return 0;
        }""")
        assert out == ["2", "-2"]

    def test_pointer_int_round_trip(self):
        _, out = run("""
        double g;
        int main(void) {
            long address = (long) &g;
            double *p = (double *) address;
            *p = 4.5;
            print_f64(g);
            return 0;
        }""")
        assert out == ["4.5"]

    def test_implicit_return_value(self):
        code, _ = run("long f(void) { } int main(void) { return (int) f(); }")
        assert code == 0


class TestInitializers:
    def test_global_scalar_and_array(self):
        _, out = run("""
        double weights[4] = {0.5, 1.5, 2.5};
        long count = 7;
        int main(void) {
            print_f64(weights[1]);
            print_f64(weights[3]);
            print_i64(count);
            return 0;
        }""")
        assert out == ["1.5", "0", "7"]

    def test_nested_array_initializer(self):
        _, out = run("""
        long m[2][3] = {{1, 2, 3}, {4, 5, 6}};
        int main(void) { print_i64(m[1][2]); return 0; }""")
        assert out == ["6"]

    def test_string_array_global(self):
        _, out = run("""
        char *names[] = {"alpha", "beta"};
        int main(void) {
            print_str(names[1]);
            return 0;
        }""")
        assert out == ["beta"]

    def test_char_array_from_string(self):
        _, out = run("""
        char buffer[10] = "hi";
        int main(void) { print_str(buffer); print_i64(buffer[5]); return 0; }
        """)
        assert out == ["hi", "0"]

    def test_local_array_initializer(self):
        _, out = run("""
        int main(void) {
            double xs[3] = {1.0, 2.0, 4.0};
            print_f64(xs[0] + xs[1] + xs[2]);
            return 0;
        }""")
        assert out == ["7"]

    def test_string_interning(self):
        module = compile_minic("""
        int main(void) {
            print_str("same");
            print_str("same");
            return 0;
        }""")
        strings = [n for n in module.globals if n.startswith(".str")]
        assert len(strings) == 1


class TestLValues:
    def test_compound_assignment_evaluates_target_once(self):
        _, out = run("""
        long calls = 0;
        double xs[4];
        long index(void) { calls++; return 2; }
        int main(void) {
            xs[index()] += 5.0;
            print_i64(calls);
            print_f64(xs[2]);
            return 0;
        }""")
        assert out == ["1", "5"]

    def test_increment_pointer(self):
        _, out = run("""
        double xs[3];
        int main(void) {
            xs[0] = 1.0; xs[1] = 2.0; xs[2] = 3.0;
            double *p = xs;
            p++;
            print_f64(*p);
            print_f64(*(p + 1));
            return 0;
        }""")
        assert out == ["2", "3"]

    def test_sizeof_variable(self):
        _, out = run("""
        double A[10];
        int main(void) {
            print_i64(sizeof(A));
            print_i64(sizeof(double));
            print_i64(sizeof(double *));
            return 0;
        }""")
        assert out == ["80", "8", "8"]


class TestSemanticErrors:
    @pytest.mark.parametrize("source,message", [
        ("int main(void) { return undefined_var; }", "undeclared"),
        ("int main(void) { unknown_fn(); return 0; }", "unknown function"),
        ("int main(void) { long x = 5; x(); return 0; }", "unknown"),
        ("void f(void) { return 5; }", "void function returns"),
        ("__global__ double k(long tid) { return 0.0; }", "void"),
        ("__global__ void k(double x) { }", "thread id"),
        ("int main(void) { return 5 = 6; }", "assignable"),
        ("int main(void) { sqrt(1.0, 2.0); return 0; }", "argument"),
        ("struct missing s; int main(void) { return 0; }", "struct"),
    ])
    def test_rejected_with_message(self, source, message):
        with pytest.raises(FrontendError, match=message):
            compile_minic(source)

    def test_launch_of_non_kernel_rejected(self):
        with pytest.raises(FrontendError, match="kernel"):
            compile_minic("""
            void plain(long tid) {}
            int main(void) { __launch(plain, 4); return 0; }
            """)
