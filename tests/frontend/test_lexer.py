"""Lexer tests."""

import pytest

from repro.errors import FrontendError
from repro.frontend import tokenize, unescape_string


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        tokens = kinds("int main intx __global__ __launch")
        assert tokens == [("keyword", "int"), ("ident", "main"),
                          ("ident", "intx"), ("keyword", "__global__"),
                          ("keyword", "__launch")]

    def test_numbers(self):
        tokens = kinds("42 0x1F 3.14 1e9 2.5e-3 1.0f 7f")
        assert [t[0] for t in tokens] == ["int", "int", "float", "float",
                                          "float", "float", "float"]

    def test_maximal_munch_operators(self):
        tokens = kinds("a<<=b >>= == != <= >= && || ++ -- -> +=")
        ops = [text for kind, text in tokens if kind == "op"]
        assert ops == ["<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||",
                       "++", "--", "->", "+="]

    def test_comments_skipped(self):
        tokens = kinds("a // line comment\nb /* block\ncomment */ c")
        assert [text for _, text in tokens] == ["a", "b", "c"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3

    def test_strings_and_chars(self):
        tokens = kinds(r'"hello\nworld" ' + r"'x' '\n'")
        assert tokens[0][0] == "string"
        assert tokens[1][0] == "char"
        assert tokens[2][0] == "char"

    def test_bad_character(self):
        with pytest.raises(FrontendError):
            tokenize("int a = `5`;")


class TestUnescape:
    def test_common_escapes(self):
        assert unescape_string(r'"a\tb\nc\0"') == "a\tb\nc\0"
        assert unescape_string(r"'\\'") == "\\"

    def test_unknown_escape_rejected(self):
        with pytest.raises(FrontendError):
            unescape_string(r'"\q"')
