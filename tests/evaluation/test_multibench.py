"""Multi-GPU sweep harness: report shape, identity gating, rendering."""

import json

from repro.evaluation.multibench import (MULTIGPU_SCHEMA, MultiGpuCell,
                                         MultiGpuReport,
                                         run_multigpu_bench)
from repro.workloads import get_workload


def small_sweep():
    return run_multigpu_bench(
        workloads=[get_workload("gemm"), get_workload("gesummv")],
        device_counts=(1, 2))


class TestSweep:
    def test_cells_cover_the_grid_and_stay_identical(self):
        report = small_sweep()
        assert report.ok
        assert {(c.name, c.devices) for c in report.cells} == {
            ("gemm", 1), ("gemm", 2), ("gesummv", 1), ("gesummv", 2)}
        for cell in report.cells:
            if cell.devices == 1:
                assert cell.speedup == 1.0

    def test_json_schema(self, tmp_path):
        report = small_sweep()
        path = tmp_path / "bench.json"
        report.write(str(path))
        data = json.loads(path.read_text())
        assert data["schema"] == MULTIGPU_SCHEMA
        assert data["device_counts"] == [1, 2]
        assert "2" in data["geomeans"]
        for cell in data["cells"]:
            assert cell["identical"] is True
            assert cell["speedup"] > 0

    def test_render_flags_divergence(self):
        report = MultiGpuReport("full", (1, 2), [
            MultiGpuCell("good", 2, "full", 2.0, 1.0),
            MultiGpuCell("bad", 2, "full", 2.0, 1.0,
                         mismatches=("observables differ",)),
        ])
        assert not report.ok
        rendered = report.render()
        assert "2.00x" in rendered
        assert "DIVERGE" in rendered
        # Divergent cells never count toward the geomean.
        assert report.geomean(2) == 2.0
