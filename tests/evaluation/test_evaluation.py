"""Evaluation harness tests on a small workload subset."""

import pytest

from repro.evaluation import (CONFIGURATIONS, build_figure4, build_table3,
                              figure4_geomeans, geomean, render_figure4,
                              render_table3, render_table3_comparison,
                              run_benchmark)
from repro.evaluation.figure4 import Figure4Row
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def jacobi_result():
    return run_benchmark(get_workload("jacobi-2d-imper"))


@pytest.fixture(scope="module")
def atax_result():
    return run_benchmark(get_workload("atax"))


class TestRunner:
    def test_all_configurations_present(self, jacobi_result):
        assert set(jacobi_result.results) == set(CONFIGURATIONS)

    def test_outputs_agree(self, jacobi_result):
        outputs = {r.stdout for r in jacobi_result.results.values()}
        assert len(outputs) == 1

    def test_sequential_speedup_is_one(self, jacobi_result):
        assert jacobi_result.speedup("sequential") == pytest.approx(1.0)

    def test_breakdown_sums_to_hundred(self, jacobi_result):
        for configuration in CONFIGURATIONS:
            gpu, comm, cpu = jacobi_result.breakdown(configuration)
            assert gpu + comm + cpu == pytest.approx(100.0)

    def test_gpu_bound_classification(self, jacobi_result):
        assert jacobi_result.limiting_factor == "GPU"

    def test_comm_bound_classification(self, atax_result):
        assert atax_result.limiting_factor == "Comm."

    def test_optimization_effect_on_jacobi(self, jacobi_result):
        assert jacobi_result.speedup("optimized") > \
            jacobi_result.speedup("unoptimized")
        unopt = jacobi_result.results["unoptimized"]
        opt = jacobi_result.results["optimized"]
        assert opt.counters["htod_copies"] < unopt.counters["htod_copies"]


class TestFigure4Helpers:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_build_and_render(self, jacobi_result, atax_result):
        rows = build_figure4([jacobi_result, atax_result])
        assert [r.program for r in rows] == ["jacobi-2d-imper", "atax"]
        rendered = render_figure4(rows)
        assert "jacobi-2d-imper" in rendered
        assert "geomean" in rendered

    def test_clamped_geomeans_not_below_plain(self, jacobi_result,
                                              atax_result):
        rows = build_figure4([jacobi_result, atax_result])
        plain = figure4_geomeans(rows)
        clamped = figure4_geomeans(rows, clamp_at_one=True)
        for series in plain:
            assert clamped[series] >= plain[series]


class TestTable3Helpers:
    def test_rows_and_rendering(self, jacobi_result, atax_result):
        rows = build_table3([jacobi_result, atax_result])
        assert rows[0].kernels >= 1
        rendered = render_table3(rows)
        assert "jacobi-2d-imper" in rendered
        comparison = render_table3_comparison([jacobi_result])
        assert "GPU / GPU" in comparison
