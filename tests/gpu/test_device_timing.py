"""Simulated GPU device and cost-model tests."""

import pytest

from repro.errors import GpuError, MemoryFault
from repro.gpu import CostModel, GpuDevice, SimClock
from repro.gpu.timing import LANE_COMM, LANE_CPU, LANE_GPU
from repro.ir import ArrayType, Module, F64
from repro.memory import GlobalLayout


def fresh_device():
    clock = SimClock()
    device = GpuDevice(clock)
    return device, clock


class TestDeviceMemory:
    def test_alloc_free_roundtrip(self):
        device, _ = fresh_device()
        address = device.mem_alloc(128)
        device.memory.write(address, b"x" * 128)
        assert device.memory.read(address, 4) == b"xxxx"
        device.mem_free(address)
        assert device.live_allocations == 0

    def test_zero_alloc_rejected(self):
        device, _ = fresh_device()
        with pytest.raises(GpuError):
            device.mem_alloc(0)

    def test_double_free_faults(self):
        device, _ = fresh_device()
        address = device.mem_alloc(16)
        device.mem_free(address)
        with pytest.raises(MemoryFault):
            device.mem_free(address)

    def test_device_addresses_disjoint_from_host(self):
        device, _ = fresh_device()
        address = device.mem_alloc(16)
        assert address >= 0xD000_0000

    def test_module_globals(self):
        module = Module("m")
        module.add_global("table", ArrayType(F64, 8))
        layout = GlobalLayout(module)
        device, _ = fresh_device()
        device.load_module(layout)
        device_address = device.module_get_global("table")
        assert device.memory.segment_for(device_address).name == "module"
        with pytest.raises(GpuError):
            device.module_get_global("missing")


class TestTransfers:
    def test_htod_dtoh_roundtrip(self):
        device, clock = fresh_device()
        address = device.mem_alloc(32)
        device.memcpy_htod(address, bytes(range(32)))
        assert device.memcpy_dtoh(address, 32) == bytes(range(32))
        assert clock.counters["htod_copies"] == 1
        assert clock.counters["dtoh_copies"] == 1
        assert clock.counters["htod_bytes"] == 32

    def test_transfer_time_has_latency_floor(self):
        model = CostModel()
        tiny = model.transfer_time(1)
        assert tiny >= model.transfer_latency_s
        big = model.transfer_time(1 << 20)
        assert big > tiny


class TestCostModel:
    def test_gpu_time_critical_path(self):
        model = CostModel(gpu_cores=4, gpu_freq_hz=1.0)
        # 4 threads of 10 ops on 4 cores: bounded by the longest thread.
        assert model.gpu_time(40, 10) == pytest.approx(10.0)
        # 400 threads of 1 op each: bounded by aggregate throughput.
        assert model.gpu_time(400, 1) == pytest.approx(100.0)

    def test_cpu_time_linear(self):
        model = CostModel(cpu_freq_hz=2.0)
        assert model.cpu_time(10) == pytest.approx(5.0)


class TestClock:
    def test_lanes_accumulate(self):
        clock = SimClock()
        clock.advance(LANE_CPU, 1.0)
        clock.advance(LANE_GPU, 2.0)
        clock.advance(LANE_COMM, 3.0)
        assert clock.total_seconds == pytest.approx(6.0)
        assert clock.breakdown()[LANE_COMM] == pytest.approx(0.5)

    def test_negative_duration_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(LANE_CPU, -1.0)

    def test_unknown_lane_rejected(self):
        # Regression: advance() used to silently create a new lane for
        # a typo'd name, so the time vanished from every breakdown.
        clock = SimClock()
        with pytest.raises(ValueError, match="unknown timeline lane"):
            clock.advance("cmm", 1.0)
        assert "cmm" not in clock.lanes
        assert clock.total_seconds == 0.0

    def test_event_recording_toggle(self):
        silent = SimClock()
        silent.advance(LANE_CPU, 1.0, "work")
        assert silent.events == []
        recording = SimClock(record_events=True)
        recording.advance(LANE_CPU, 1.0, "work")
        assert len(recording.events) == 1
        assert recording.events[0].label == "work"
        assert recording.events[0].end == pytest.approx(1.0)

    def test_empty_breakdown(self):
        assert SimClock().breakdown() == {LANE_CPU: 0.0, LANE_GPU: 0.0,
                                          LANE_COMM: 0.0}
