"""Topology model: shapes, routing, lane naming, cache identity."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.gpu.timing import (LANE_COMM, LANE_GPU, STREAM_COMPUTE,
                              STREAM_D2H, STREAM_H2D)
from repro.gpu.topology import Link, Topology


class TestConstruction:
    def test_presets(self):
        assert Topology.single().num_devices == 1
        assert Topology.ring(4).kind == "ring"
        assert Topology.fully_connected(8).num_devices == 8

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown topology kind"):
            Topology("mesh", 4)

    def test_single_with_many_devices_rejected(self):
        with pytest.raises(ConfigError, match="exactly one device"):
            Topology("single", 4)

    def test_multi_kind_needs_two_devices(self):
        with pytest.raises(ConfigError, match="at least 2"):
            Topology("ring", 1)

    def test_bad_device_count_rejected(self):
        with pytest.raises(ConfigError, match="positive integer"):
            Topology("full", 0)

    def test_build_collapses_one_device_to_single(self):
        # The CLI maps --devices 1 to the no-topology shape whatever
        # --topology says, so single-device runs never change lanes.
        assert Topology.build("full", 1).kind == "single"
        assert Topology.build("single", 4).kind == "ring"


class TestRouting:
    def test_full_is_one_hop(self):
        topo = Topology.fully_connected(8)
        assert topo.path(2, 5) == [(2, 5)]
        assert topo.path(3, 3) == []

    def test_ring_takes_shorter_way(self):
        topo = Topology.ring(6)
        assert topo.path(0, 2) == [(0, 1), (1, 2)]
        assert topo.path(0, 5) == [(0, 5)]
        # Ties (opposite side of an even ring) go clockwise.
        assert topo.path(0, 3) == [(0, 1), (1, 2), (2, 3)]

    def test_out_of_range_device_rejected(self):
        with pytest.raises(ConfigError, match="outside topology"):
            Topology.ring(4).path(0, 4)

    def test_transfer_time_is_per_hop(self):
        link = Link(bandwidth_bps=1e9, latency_s=1e-6)
        topo = Topology.ring(8, link)
        one = link.transfer_time(1 << 20)
        assert topo.transfer_time(0, 2, 1 << 20) == pytest.approx(2 * one)
        assert topo.transfer_time(5, 5, 1 << 20) == 0.0

    @given(n=st.integers(2, 12),
           src=st.integers(0, 11), dst=st.integers(0, 11))
    def test_ring_paths_are_connected_and_minimal(self, n, src, dst):
        src, dst = src % n, dst % n
        hops = Topology.ring(n).path(src, dst)
        here = src
        for a, b in hops:
            assert a == here
            here = b
        assert here == dst
        assert len(hops) <= n // 2


class TestNaming:
    def test_device_zero_reuses_builtin_names(self):
        # Single-device topologies must be lane-for-lane identical to
        # no topology at all (byte- and time-identity depends on it).
        topo = Topology.fully_connected(2)
        assert topo.gpu_lane(0) == LANE_GPU
        assert topo.comm_lane(0) == LANE_COMM
        assert topo.h2d_stream(0) == STREAM_H2D
        assert topo.d2h_stream(0) == STREAM_D2H
        assert topo.compute_stream(0) == STREAM_COMPUTE

    def test_other_devices_get_suffixed_names(self):
        topo = Topology.fully_connected(4)
        assert topo.gpu_lane(2) == f"{LANE_GPU}2"
        assert topo.h2d_stream(3) == f"{STREAM_H2D}3"

    def test_p2p_lanes_are_directed(self):
        assert Topology.p2p_lane(0, 1) != Topology.p2p_lane(1, 0)


class TestCacheIdentity:
    def test_key_distinguishes_shape_count_and_link(self):
        keys = {
            Topology.ring(4).key(),
            Topology.fully_connected(4).key(),
            Topology.ring(8).key(),
            Topology.ring(4, Link(bandwidth_bps=1e9)).key(),
        }
        assert len(keys) == 4

    def test_key_is_stable_for_equal_topologies(self):
        assert Topology.ring(4).key() == Topology.ring(4).key()
