"""Deterministic fault injection on the simulated driver (repro.resilience)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GpuLaunchError, GpuOomError, GpuTransferError
from repro.gpu import GpuDevice, SimClock
from repro.gpu.faults import MAX_FAULT_RETRIES, FaultInjector, FaultPlan


def device_with(plan=None, heap_limit=None):
    injector = FaultInjector(plan) if plan is not None else None
    return GpuDevice(SimClock(), fault_injector=injector,
                     heap_limit=heap_limit)


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="alloc_fail_rate"):
            FaultPlan(seed=1, alloc_fail_rate=1.0)
        with pytest.raises(ValueError, match="transfer_fail_rate"):
            FaultPlan(seed=1, transfer_fail_rate=-0.1)

    def test_burst_must_fit_inside_retry_budget(self):
        with pytest.raises(ValueError, match="max_consecutive"):
            FaultPlan(seed=1, max_consecutive=MAX_FAULT_RETRIES)
        with pytest.raises(ValueError, match="max_consecutive"):
            FaultPlan(seed=1, max_consecutive=0)

    def test_armed(self):
        assert not FaultPlan(seed=1).armed
        assert FaultPlan(seed=1, launch_fail_rate=0.1).armed

    def test_injector_requires_seed(self):
        with pytest.raises(ValueError, match="seed"):
            FaultInjector(FaultPlan(alloc_fail_rate=0.5))


class TestInjectorSchedule:
    def test_same_seed_same_schedule(self):
        plan = FaultPlan(seed=42, alloc_fail_rate=0.4,
                         transfer_fail_rate=0.3, launch_fail_rate=0.2)

        def draw(injector):
            verdicts = []
            for i in range(200):
                if i % 3 == 0:
                    verdicts.append(injector.alloc_fault())
                elif i % 3 == 1:
                    verdicts.append(injector.transfer_fault("htod"))
                else:
                    verdicts.append(injector.launch_fault())
            return verdicts

        assert draw(FaultInjector(plan)) == draw(FaultInjector(plan))

    def test_zero_rate_site_never_draws(self):
        """A disarmed site consumes no PRNG state, so arming one site
        never perturbs another site's schedule."""
        alloc_only = FaultPlan(seed=9, alloc_fail_rate=0.4)
        both = FaultPlan(seed=9, alloc_fail_rate=0.4,
                         launch_fail_rate=0.0)
        a, b = FaultInjector(alloc_only), FaultInjector(both)
        for _ in range(100):
            assert b.launch_fault() is False
            assert a.alloc_fault() == b.alloc_fault()

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.floats(0.05, 0.95),
           st.integers(1, MAX_FAULT_RETRIES - 1))
    def test_burst_never_exceeds_retry_budget(self, seed, rate, burst):
        """The retry-loop soundness invariant: no run of consecutive
        failures at one site is ever as long as MAX_FAULT_RETRIES, so
        bounded retry always rides a transient out.  The cooldown
        after each burst is what stops back-to-back bursts from
        merging into a longer run."""
        injector = FaultInjector(
            FaultPlan(seed=seed, alloc_fail_rate=rate,
                      max_consecutive=burst))
        run = longest = 0
        for _ in range(2000):
            if injector.alloc_fault():
                run += 1
                longest = max(longest, run)
            else:
                run = 0
        assert longest <= burst < MAX_FAULT_RETRIES

    def test_injected_counts(self):
        injector = FaultInjector(FaultPlan(seed=3, alloc_fail_rate=0.5))
        fails = sum(injector.alloc_fault() for _ in range(100))
        assert injector.injected["alloc"] == fails == injector.total_injected
        assert fails > 0


class TestDeviceFaults:
    def test_injected_alloc_fault_is_transient_oom(self):
        device = device_with(FaultPlan(seed=0, alloc_fail_rate=0.9))
        with pytest.raises(GpuOomError) as exc:
            for _ in range(MAX_FAULT_RETRIES):
                device.mem_alloc(64)
        assert exc.value.transient
        assert device.clock.counters["injected_alloc_faults"] >= 1

    def test_heap_cap_is_nontransient_oom(self):
        device = device_with(heap_limit=128)
        device.mem_alloc(96)
        with pytest.raises(GpuOomError) as exc:
            device.mem_alloc(64)
        assert not exc.value.transient
        assert "capped" in str(exc.value)

    def test_transfer_fault_moves_no_bytes(self):
        device = device_with()
        address = device.mem_alloc(8)
        device.memcpy_htod(address, b"A" * 8)
        before = device.memory.read(address, 8)
        device.fault_injector = FaultInjector(
            FaultPlan(seed=1, transfer_fail_rate=0.9))
        with pytest.raises(GpuTransferError):
            for _ in range(MAX_FAULT_RETRIES):
                device.memcpy_htod(address, b"B" * 8)
        assert device.memory.read(address, 8) == before

    def test_launch_fault_is_typed(self):
        device = device_with(FaultPlan(seed=2, launch_fail_rate=0.9))
        with pytest.raises(GpuLaunchError) as exc:
            for _ in range(MAX_FAULT_RETRIES):
                device.launch_begin("kernel__doall1", 32)
        assert exc.value.kernel == "kernel__doall1"
        assert exc.value.grid == 32

    def test_mem_alloc_avoid_ranges(self):
        """The runtime passes evicted units' minted ranges as `avoid`
        so reverse translation stays unambiguous; the allocator must
        never hand them out again."""
        device = device_with()
        first = device.mem_alloc(64)
        device.mem_free(first)
        again = device.mem_alloc(64, avoid=[(first, first + 64)])
        assert not (first < again + 64 and again < first + 64)

    def test_mem_alloc_at_respects_heap_cap(self):
        device = device_with(heap_limit=128)
        address = device.mem_alloc(96)
        device.mem_free(address)
        assert device.mem_alloc_at(address, 96)
        assert not device.mem_alloc_at(address + 96, 96)
