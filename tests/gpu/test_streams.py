"""Stream, event, and overlap-scheduler semantics (repro.streams)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import CostModel, GpuDevice, SimClock
from repro.gpu.timing import (LANE_COMM, LANE_CPU, LANE_GPU, STREAM_COMPUTE,
                              STREAM_D2H, STREAM_H2D)


def streams_clock():
    clock = SimClock()
    clock.enable_streams()
    for name in (STREAM_H2D, STREAM_D2H, STREAM_COMPUTE):
        clock.stream_create(name)
    return clock


class TestSerialDiscipline:
    def test_serial_total_is_now(self):
        clock = SimClock()
        clock.advance(LANE_CPU, 1.0)
        clock.advance(LANE_GPU, 2.0)
        assert clock.serial_total_s == pytest.approx(3.0)
        assert clock.critical_path_s == pytest.approx(3.0)
        assert clock.elapsed_s == clock.critical_path_s

    def test_schedule_degrades_to_advance_when_streams_off(self):
        """Without enable_streams, async scheduling IS serial advance:
        the same IR must time identically at every config."""
        serial = SimClock()
        serial.advance(LANE_COMM, 1.5, "copy")
        scheduled = SimClock()
        scheduled.schedule(LANE_COMM, 1.5, STREAM_H2D, "copy")
        assert scheduled.now == serial.now
        assert scheduled.critical_path_s == serial.critical_path_s
        assert scheduled.lanes == serial.lanes

    def test_streams_mode_preserves_lane_sums(self):
        """Lane accounting is discipline-independent: breakdown and
        totals mean the same thing with overlap on."""
        serial = SimClock()
        overlap = streams_clock()
        for clock in (serial, overlap):
            clock.advance(LANE_CPU, 1.0)
            clock.schedule(LANE_COMM, 2.0, STREAM_H2D)
            clock.advance(LANE_GPU, 3.0)
        assert serial.lanes == overlap.lanes
        assert serial.serial_total_s == overlap.serial_total_s


class TestStreamFifo:
    def test_same_stream_is_fifo(self):
        """Two spans on one stream serialize even though the host
        never waited between them."""
        clock = streams_clock()
        first = clock.schedule(LANE_COMM, 1.0, STREAM_H2D)
        second = clock.schedule(LANE_COMM, 1.0, STREAM_H2D)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_one_comm_engine_serializes_across_streams(self):
        """h2d and d2h are distinct FIFOs but share the single copy
        engine: their spans cannot overlap each other."""
        clock = streams_clock()
        up = clock.schedule(LANE_COMM, 1.0, STREAM_H2D)
        down = clock.schedule(LANE_COMM, 1.0, STREAM_D2H)
        assert up == pytest.approx(1.0)
        assert down == pytest.approx(2.0)

    def test_different_engines_overlap(self):
        clock = streams_clock()
        copy_end = clock.schedule(LANE_COMM, 2.0, STREAM_H2D)
        kernel_end = clock.schedule(LANE_GPU, 2.0, STREAM_COMPUTE)
        assert copy_end == pytest.approx(2.0)
        assert kernel_end == pytest.approx(2.0)
        assert clock.critical_path_s == pytest.approx(2.0)
        assert clock.serial_total_s == pytest.approx(4.0)

    def test_host_does_not_block_on_async(self):
        clock = streams_clock()
        clock.schedule(LANE_COMM, 5.0, STREAM_H2D)
        clock.advance(LANE_CPU, 1.0)
        # CPU work started at t=0, concurrent with the copy.
        assert clock.events == [] or True  # events off by default
        assert clock.critical_path_s == pytest.approx(5.0)


class TestEvents:
    def test_event_wait_orders_across_streams(self):
        """compute waits on an event recorded after the h2d copy."""
        clock = streams_clock()
        clock.schedule(LANE_COMM, 3.0, STREAM_H2D)
        event = clock.event_record(STREAM_H2D)
        clock.stream_wait_event(STREAM_COMPUTE, event)
        end = clock.schedule(LANE_GPU, 1.0, STREAM_COMPUTE)
        assert end == pytest.approx(4.0)

    def test_event_before_work_is_no_wait(self):
        clock = streams_clock()
        event = clock.event_record(STREAM_H2D)  # t=0
        clock.stream_wait_event(STREAM_COMPUTE, event)
        end = clock.schedule(LANE_GPU, 1.0, STREAM_COMPUTE)
        assert end == pytest.approx(1.0)

    def test_explicit_after_dependencies(self):
        clock = streams_clock()
        finish = clock.schedule(LANE_COMM, 2.0, STREAM_H2D)
        end = clock.schedule(LANE_GPU, 1.0, STREAM_COMPUTE,
                             after=(finish,))
        assert end == pytest.approx(3.0)


class TestSynchronize:
    def test_stream_synchronize_blocks_host(self):
        clock = streams_clock()
        clock.schedule(LANE_COMM, 4.0, STREAM_D2H)
        clock.stream_synchronize(STREAM_D2H)
        clock.advance(LANE_CPU, 1.0)
        # The CPU span started only after the copy drained.
        assert clock.critical_path_s == pytest.approx(5.0)

    def test_device_synchronize_flushes_every_cursor(self):
        clock = streams_clock()
        clock.schedule(LANE_COMM, 2.0, STREAM_H2D)
        clock.schedule(LANE_GPU, 3.0, STREAM_COMPUTE)
        clock.device_synchronize()
        clock.advance(LANE_CPU, 1.0)
        assert clock.critical_path_s == pytest.approx(4.0)

    def test_synchronize_unknown_stream_is_noop(self):
        clock = streams_clock()
        clock.stream_synchronize("nonexistent")
        assert clock.critical_path_s == pytest.approx(0.0)


class TestCriticalPath:
    def test_critical_path_never_exceeds_serial_total(self):
        clock = streams_clock()
        clock.advance(LANE_CPU, 1.0)
        clock.schedule(LANE_COMM, 2.0, STREAM_H2D)
        clock.schedule(LANE_GPU, 0.5, STREAM_COMPUTE)
        clock.advance(LANE_CPU, 0.25)
        assert clock.critical_path_s <= clock.serial_total_s

    @settings(max_examples=100, deadline=None)
    @given(st.lists(
        st.tuples(
            st.sampled_from([LANE_CPU, LANE_COMM, LANE_GPU]),
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            st.sampled_from(["sync", STREAM_H2D, STREAM_D2H,
                             STREAM_COMPUTE])),
        max_size=40))
    def test_property_critical_path_le_serial_total(self, spans):
        """Any mix of blocking and asynchronous spans: overlap can
        only shorten elapsed time, never extend it."""
        clock = streams_clock()
        for lane, seconds, stream in spans:
            if stream == "sync":
                clock.advance(lane, seconds)
            else:
                clock.schedule(lane, seconds, stream)
        assert clock.critical_path_s <= clock.serial_total_s
        clock.device_synchronize()
        assert clock.critical_path_s <= clock.serial_total_s

    def test_utilisation_zero_safe(self):
        clock = streams_clock()
        assert all(v == 0.0 for v in clock.utilisation().values())
        clock.schedule(LANE_COMM, 2.0, STREAM_H2D)
        clock.schedule(LANE_GPU, 2.0, STREAM_COMPUTE)
        util = clock.utilisation()
        assert util[LANE_COMM] == pytest.approx(1.0)
        assert util[LANE_GPU] == pytest.approx(1.0)


class TestDeviceStreams:
    def _device(self):
        clock = streams_clock()
        return GpuDevice(clock), clock

    def test_stream_create_registers_and_autonames(self):
        device, clock = self._device()
        name = device.stream_create()
        assert name.startswith("stream")
        assert clock.stream_cursor(name) == 0.0
        assert device.stream_create("mine") == "mine"

    def test_async_copies_eager_data_deferred_time(self):
        """Async transfers move bytes at issue but only occupy the
        comm engine on the scheduler's timeline."""
        device, clock = self._device()
        address = device.mem_alloc(32)
        finish = device.memcpy_htod_async(address, bytes(range(32)))
        assert device.memory.read(address, 4) == bytes(range(4))
        assert finish > 0.0
        data, done = device.memcpy_dtoh_async(address, 32)
        assert data == bytes(range(32))
        assert done > finish  # FIFO comm engine: dtoh after htod
        # The host never blocked for either copy.
        device.stream_synchronize(STREAM_D2H)
        assert clock.critical_path_s == pytest.approx(done)

    def test_async_counters_match_sync(self):
        device, _ = self._device()
        address = device.mem_alloc(16)
        device.memcpy_htod_async(address, b"x" * 16)
        device.memcpy_dtoh_async(address, 16)
        assert device.clock.counters["htod_copies"] == 1
        assert device.clock.counters["dtoh_copies"] == 1
        assert device.clock.counters["htod_bytes"] == 16
        assert device.clock.counters["dtoh_bytes"] == 16

    def test_event_record_wait_via_device(self):
        device, clock = self._device()
        finish = device.memcpy_htod_async(device.mem_alloc(8), b"y" * 8)
        event = device.event_record(STREAM_H2D)
        assert event == pytest.approx(finish)
        device.stream_wait_event(STREAM_COMPUTE, event)
        assert clock.stream_cursor(STREAM_COMPUTE) == pytest.approx(finish)


class TestAllocFreeCharges:
    def test_alloc_and_free_charged_separately(self):
        """Regression pin: mem_alloc charges device_alloc_latency_s and
        mem_free charges device_free_latency_s, both on the comm lane."""
        model = CostModel(device_alloc_latency_s=3e-6,
                          device_free_latency_s=5e-6)
        clock = SimClock(model)
        device = GpuDevice(clock)
        address = device.mem_alloc(64)
        assert clock.lanes[LANE_COMM] == pytest.approx(3e-6)
        device.mem_free(address)
        assert clock.lanes[LANE_COMM] == pytest.approx(8e-6)

    def test_default_free_charge_matches_seed_clock(self):
        """The default free latency equals the alloc latency, so
        serial timings are unchanged from before the split."""
        model = CostModel()
        assert model.device_free_latency_s == model.device_alloc_latency_s
        clock = SimClock(model)
        device = GpuDevice(clock)
        device.mem_free(device.mem_alloc(64))
        assert clock.lanes[LANE_COMM] == pytest.approx(
            2 * model.device_alloc_latency_s)

    def test_async_free_is_stream_ordered(self):
        clock = streams_clock()
        device = GpuDevice(clock)
        address = device.mem_alloc(32)
        copy_done = device.memcpy_dtoh_async(address, 32)[1]
        free_done = device.mem_free_async(address)
        assert free_done >= copy_done  # FIFO d2h: free after copy
        assert device.live_allocations == 0
