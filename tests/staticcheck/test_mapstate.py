"""Mapping-state verifier unit tests (pass-level, on hand-managed IR)."""

from repro.frontend import compile_minic
from repro.staticcheck import Severity, lint_module

_KERNEL_GLOBAL = ("__global__ void scale(long tid) "
                  "{ A[tid] = A[tid] * 2.0; }")
_KERNEL_PARAM = ("__global__ void scale(long tid, double *a) "
                 "{ a[tid] = a[tid] * 2.0; }")


def lint(source, passes=("mapstate",)):
    return lint_module(compile_minic(source), passes=passes)


def kinds(report):
    return {f.kind for f in report.findings}


class TestLaunchChecks:
    def test_well_formed_sequence_is_clean(self):
        report = lint(f"""
double A[8];
{_KERNEL_PARAM}
int main(void) {{
    double *d = (double *) map((char *) A);
    __launch(scale, 8, d);
    unmap((char *) A);
    release((char *) A);
    return 0;
}}
""")
        assert report.clean
        assert not report.findings

    def test_unmapped_launch_names_the_unit(self):
        report = lint(f"""
double A[8];
{_KERNEL_GLOBAL}
int main(void) {{
    __launch(scale, 8);
    return 0;
}}
""")
        finding = report.by_kind("launch-unmapped")[0]
        assert finding.severity is Severity.ERROR
        assert finding.function == "main"
        assert "A" in finding.message

    def test_path_sensitive_map_is_a_distinct_kind(self):
        report = lint(f"""
double A[8];
long n;
{_KERNEL_GLOBAL}
int main(void) {{
    n = 2;
    if (n > 1) {{ map((char *) A); }}
    __launch(scale, 8);
    release((char *) A);
    return 0;
}}
""")
        assert "launch-unmapped-path" in kinds(report)
        assert "launch-unmapped" not in kinds(report)


class TestRefcountChecks:
    def test_balanced_nested_references_are_clean(self):
        report = lint(f"""
double A[8];
{_KERNEL_PARAM}
int main(void) {{
    double *d = (double *) map((char *) A);
    double *e = (double *) map((char *) A);
    __launch(scale, 8, d);
    unmap((char *) A);
    release((char *) A);
    release((char *) A);
    return 0;
}}
""")
        assert report.clean

    def test_leak_reported_at_the_return(self):
        report = lint(f"""
double A[8];
{_KERNEL_PARAM}
int main(void) {{
    double *d = (double *) map((char *) A);
    __launch(scale, 8, d);
    unmap((char *) A);
    return 0;
}}
""")
        leaks = report.by_kind("refcount-leak")
        assert leaks and leaks[0].severity is Severity.ERROR


class TestInterprocedural:
    def test_helper_with_caller_held_mapping_is_lenient(self):
        """A helper launching over a unit its caller mapped must not
        be flagged: non-main functions start with unknown inbound
        reference counts."""
        report = lint(f"""
double A[8];
{_KERNEL_GLOBAL}
void compute(void) {{
    __launch(scale, 8);
}}
int main(void) {{
    map((char *) A);
    compute();
    compute();
    unmap((char *) A);
    release((char *) A);
    return 0;
}}
""")
        assert report.clean, [f.render() for f in report.errors]

    def test_callee_effects_flow_to_the_caller(self):
        """main never maps; the callee maps-and-releases, so a later
        launch in main is over an unmapped unit."""
        report = lint(f"""
double A[8];
{_KERNEL_GLOBAL}
void roundtrip(void) {{
    map((char *) A);
    __launch(scale, 8);
    unmap((char *) A);
    release((char *) A);
}}
int main(void) {{
    roundtrip();
    __launch(scale, 8);
    return 0;
}}
""")
        assert any(f.kind in ("launch-unmapped", "use-after-release")
                   and f.function == "main"
                   for f in report.findings), \
            [f.render() for f in report.findings]


class TestCoherenceChecks:
    def test_cpu_write_after_map_goes_stale(self):
        report = lint(f"""
double A[8];
{_KERNEL_PARAM}
int main(void) {{
    double *d = (double *) map((char *) A);
    A[3] = 7.0;
    __launch(scale, 8, d);
    unmap((char *) A);
    release((char *) A);
    return 0;
}}
""")
        assert "stale-device-read" in kinds(report)

    def test_cpu_write_before_map_is_fine(self):
        report = lint(f"""
double A[8];
{_KERNEL_PARAM}
int main(void) {{
    A[3] = 7.0;
    double *d = (double *) map((char *) A);
    __launch(scale, 8, d);
    unmap((char *) A);
    release((char *) A);
    return 0;
}}
""")
        assert report.clean

    def test_device_pointer_dereference_on_cpu(self):
        report = lint("""
double A[8];
int main(void) {
    double *d = (double *) map((char *) A);
    d[0] = 1.0;
    unmap((char *) A);
    release((char *) A);
    return 0;
}
""")
        assert "pointer-mix" in kinds(report)
