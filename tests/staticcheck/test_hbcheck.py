"""Async happens-before auditor unit tests (pass-level and pipeline).

Covers the hazard taxonomy on hand-managed async IR, the precision
contract (errors only on fully analyzable unit facts, notes
otherwise), cross-validation against the explicit happens-before
graph, and the mutation property: deleting any single ``cgcmSync``
the comm-overlap transform inserted must be caught.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis.happens_before import HBNode, build_hb_graph
from repro.core.compiler import CgcmCompiler
from repro.core.config import CgcmConfig
from repro.frontend import compile_minic
from repro.ir.instructions import Call, Load
from repro.runtime.api import SYNC_FUNCTION
from repro.scenarios import scenario_specs
from repro.scenarios.generator import materialize
from repro.staticcheck import Severity, lint_module
from repro.workloads import get_workload

_KERNEL = ("__global__ void scale(long tid) "
           "{ A[tid] = A[tid] * 2.0; }")


def lint(source, passes=("hbcheck",)):
    return lint_module(compile_minic(source), passes=passes)


class TestAsyncHazards:
    def test_read_before_sync_is_an_error(self):
        report = lint(f"""
double A[8];
{_KERNEL}
int main(void) {{
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    print_f64(A[0]);
    cgcmSync();
    release((char *) A);
    return 0;
}}
""")
        (finding,) = report.by_kind("hb-use-before-sync")
        assert finding.severity is Severity.ERROR
        assert "@A" in finding.message
        assert finding.unit == "@A"

    def test_write_during_writeback_is_a_ww_error(self):
        report = lint(f"""
double A[8];
{_KERNEL}
int main(void) {{
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    A[0] = 99.0;
    cgcmSync();
    release((char *) A);
    return 0;
}}
""")
        (finding,) = report.by_kind("hb-ww-conflict")
        assert finding.severity is Severity.ERROR

    def test_unmap_racing_map_without_launch(self):
        report = lint("""
double A[8];
int main(void) {
    mapAsync((char *) A);
    unmapAsync((char *) A);
    cgcmSync();
    release((char *) A);
    return 0;
}
""")
        (finding,) = report.by_kind("hb-map-unmap-race")
        assert finding.severity is Severity.ERROR

    def test_launch_fences_the_race_away(self):
        report = lint(f"""
double A[8];
{_KERNEL}
int main(void) {{
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    cgcmSync();
    release((char *) A);
    return 0;
}}
""")
        assert not report.by_kind("hb-map-unmap-race")
        assert report.clean

    def test_sync_with_nothing_recorded_warns(self):
        report = lint("""
int main(void) {
    cgcmSync();
    return 0;
}
""")
        (finding,) = report.by_kind("hb-sync-unrecorded")
        assert finding.severity is Severity.WARNING

    def test_back_to_back_sync_is_dead(self):
        report = lint(f"""
double A[8];
{_KERNEL}
int main(void) {{
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    cgcmSync();
    cgcmSync();
    release((char *) A);
    return 0;
}}
""")
        (finding,) = report.by_kind("hb-dead-sync")
        assert finding.severity is Severity.WARNING

    def test_well_ordered_schedule_has_no_findings(self):
        report = lint(f"""
double A[8];
{_KERNEL}
int main(void) {{
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    cgcmSync();
    release((char *) A);
    print_f64(A[0]);
    return 0;
}}
""")
        assert not report.findings


class TestPrecisionContract:
    def test_foreign_writeback_is_a_note(self):
        # The pending write-back crosses a call boundary: only the
        # run-time guard orders the read, so the contract demands a
        # note, never an error.
        report = lint(f"""
double A[8];
{_KERNEL}
void flush(void) {{
    unmapAsync((char *) A);
}}
int main(void) {{
    mapAsync((char *) A);
    __launch(scale, 8);
    flush();
    print_f64(A[0]);
    cgcmSync();
    release((char *) A);
    return 0;
}}
""")
        findings = report.by_kind("hb-use-before-sync")
        assert findings, report.render()
        assert all(f.severity is Severity.NOTE for f in findings)
        assert any("call boundary" in f.message for f in findings)

    def test_path_dependent_upload_race_is_a_note(self):
        # The upload is pending on only one path to the unmap: the
        # race is real on that path but not provable on all paths, so
        # h2d_must is off and the report degrades to a note.
        report = lint("""
double A[8];
long n;
int main(void) {
    n = 1;
    if (n > 0) { mapAsync((char *) A); }
    unmapAsync((char *) A);
    cgcmSync();
    release((char *) A);
    return 0;
}
""")
        findings = report.by_kind("hb-map-unmap-race")
        assert findings, report.render()
        assert all(f.severity is Severity.NOTE for f in findings)

    def test_callee_sync_counts_as_must_fence(self):
        report = lint(f"""
double A[8];
{_KERNEL}
void barrier(void) {{
    cgcmSync();
}}
int main(void) {{
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    barrier();
    print_f64(A[0]);
    release((char *) A);
    return 0;
}}
""")
        assert not report.by_kind("hb-use-before-sync"), report.render()


class TestGraphCrossValidation:
    """Every dataflow error verdict must agree with the explicit
    must-happens-before graph: an error means no ordering proof
    exists; a clean read means the graph proves the ordering."""

    def _first_global_read(self, fn):
        for inst in fn.instructions():
            if isinstance(inst, Load):
                return inst
        raise AssertionError("no load found")

    def test_flagged_read_has_no_graph_proof(self):
        module = compile_minic(f"""
double A[8];
{_KERNEL}
int main(void) {{
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    print_f64(A[0]);
    cgcmSync();
    release((char *) A);
    return 0;
}}
""")
        report = lint_module(module, passes=("hbcheck",))
        assert report.by_kind("hb-use-before-sync")
        fn = module.functions["main"]
        graph = build_hb_graph(fn)
        (d2h,) = [i for i in fn.instructions() if isinstance(i, Call)
                  and i.callee.name == "unmapAsync"]
        read = self._first_global_read(fn)
        assert not graph.ordered(HBNode(d2h, "done"),
                                 HBNode(read, "issue"))

    def test_clean_read_has_a_graph_proof(self):
        module = compile_minic(f"""
double A[8];
{_KERNEL}
int main(void) {{
    mapAsync((char *) A);
    __launch(scale, 8);
    unmapAsync((char *) A);
    cgcmSync();
    release((char *) A);
    print_f64(A[0]);
    return 0;
}}
""")
        report = lint_module(module, passes=("hbcheck",))
        assert not report.findings
        fn = module.functions["main"]
        graph = build_hb_graph(fn)
        (d2h,) = [i for i in fn.instructions() if isinstance(i, Call)
                  and i.callee.name == "unmapAsync"]
        read = self._first_global_read(fn)
        assert graph.ordered(HBNode(d2h, "done"), HBNode(read, "issue"))


def _fingerprints(report, pass_name="hbcheck"):
    return {f.fingerprint for f in report.findings
            if f.pass_name == pass_name}


class TestMutationIsCaught:
    """The ``cgcmSync`` barriers the comm-overlap transform inserts
    carry the schedule's ordering proof: some single deletion out of a
    known-clean schedule must produce a new hbcheck finding, and
    stripping every barrier must always be caught.  (A single deletion
    need not always trip the auditor -- a sibling barrier can still
    cover the touch -- which is exactly the dead-sync taxonomy.)"""

    def _compile_streams(self, name, source):
        config = CgcmConfig(streams=True)
        return CgcmCompiler(config).compile_source(source, name)

    def _syncs(self, module):
        return [inst for fn in module.defined_functions()
                for inst in fn.instructions()
                if isinstance(inst, Call)
                and inst.callee.name == SYNC_FUNCTION]

    @pytest.mark.parametrize("name", ["atax", "kmeans", "gramschmidt"])
    def test_some_single_sync_deletion_is_caught(self, name):
        source = get_workload(name).source
        baseline_report = self._compile_streams(name, source)
        assert baseline_report.overlap_stats.get("syncs_inserted", 0) > 0
        baseline = lint_module(baseline_report.module,
                               passes=("hbcheck",))
        assert baseline.clean, baseline.render()
        sync_count = len(self._syncs(baseline_report.module))

        caught = []
        for victim in range(sync_count):
            module = self._compile_streams(name, source).module
            target = self._syncs(module)[victim]
            target.parent.instructions.remove(target)
            mutated = lint_module(module, passes=("hbcheck",))
            if _fingerprints(mutated) - _fingerprints(baseline):
                caught.append(victim)
        assert caught, (
            f"{name}: no single cgcmSync deletion was noticed "
            f"({sync_count} barriers)")

    @pytest.mark.parametrize("name", ["atax", "kmeans", "gramschmidt"])
    def test_stripping_every_sync_is_caught(self, name):
        source = get_workload(name).source
        module = self._compile_streams(name, source).module
        for target in self._syncs(module):
            target.parent.instructions.remove(target)
        mutated = lint_module(module, passes=("hbcheck",))
        assert _fingerprints(mutated), (
            f"{name}: removing all barriers went unnoticed")


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=scenario_specs())
def test_property_generated_streams_schedules_audit_clean(spec):
    """Any drawable fuzzer program, compiled with streams, passes the
    happens-before auditor with zero errors: the pipeline only ever
    emits statically provable schedules."""
    program = materialize(spec, "hb-hypothesis")
    report = CgcmCompiler(CgcmConfig(streams=True)).compile_source(
        program.source, program.name)
    lint = lint_module(report.module, passes=("hbcheck",))
    assert lint.clean, lint.render()
