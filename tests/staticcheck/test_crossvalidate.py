"""Cross-validation: static verdicts against the dynamic sanitizer.

The static checker and the PR-1 communication sanitizer model the same
violation taxonomy from opposite ends (abstract interpretation vs.
concrete execution).  A workload the checker calls clean must also run
clean under the differential oracle -- if the two ever disagree, one
of the two subsystems has a soundness bug.
"""

import pytest

from repro.staticcheck import lint_workload
from repro.workloads import get_workload

_WORKLOADS = ("atax", "gesummv")


@pytest.mark.parametrize("name", _WORKLOADS)
def test_static_clean_implies_sanitizer_clean(name, differential_oracle):
    workload = get_workload(name)
    report = lint_workload(workload)
    assert report.clean, report.render()
    dynamic = differential_oracle(workload)
    assert dynamic.ok, (
        f"{name}: statically clean but the sanitizer disagrees: "
        f"{dynamic.summary()}")
