"""``python -m repro lint`` CLI behavior (human, JSON, corpus)."""

import json

from repro.__main__ import main


class TestLintCommand:
    def test_clean_workload_exits_zero(self, capsys):
        assert main(["lint", "atax"]) == 0
        captured = capsys.readouterr()
        assert "atax: clean" in captured.out
        assert "1/1 modules clean" in captured.err

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["lint", "atax", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (report,) = payload["reports"]
        assert report["module"] == "atax"
        assert report["clean"] is True
        assert report["passes"] == ["verify", "mapstate", "redundant",
                                    "doall", "hbcheck", "placement"]

    def test_source_path_target(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("""
double A[8];
__global__ void k(long tid) { A[tid + 1] = A[tid]; }
int main(void) {
    map((char *) A);
    __launch(k, 8);
    unmap((char *) A);
    release((char *) A);
    return 0;
}
""")
        # The full pipeline re-manages communication but cannot fix
        # the kernel's cross-iteration dependence.
        assert main(["lint", str(bad)]) == 1
        captured = capsys.readouterr()
        assert "doall-race" in captured.out

    def test_corpus_self_check(self, capsys):
        assert main(["lint", "--corpus"]) == 0
        captured = capsys.readouterr()
        assert "MISSED" not in captured.out
        assert "FALSE POSITIVE" not in captured.out
        assert "corpus 27/27 as expected" in captured.err

    def test_corpus_json(self, capsys):
        assert main(["lint", "--corpus", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reports"] == []
        assert len(payload["corpus"]) == 27
        assert all(entry["caught"] for entry in payload["corpus"])
