"""Translation-validation harness: obligations, gating, CLI surface.

The harness must pass silently on every real pipeline stage of every
workload, and catch each obligation class when a "pass" is broken on
purpose (the classic translation-validation smoke test: validate the
validator against seeded miscompilations).
"""

import pytest

from repro.core.compiler import CgcmCompiler
from repro.core.config import CgcmConfig
from repro.errors import TransformValidationError
from repro.frontend import compile_minic
from repro.ir.instructions import Call, LaunchKernel
from repro.ir.parser import parse_module
from repro.ir.printer import module_to_str
from repro.runtime.api import SYNC_FUNCTION
from repro.staticcheck import TranslationValidator, validate_stage
from repro.staticcheck.linter import lint_source
from repro.transforms import (alloca_promotion, comm_overlap,
                              glue_kernels, map_promotion)
from repro.transforms.contract import PassContract
from repro.workloads import get_workload

_SOURCE = """
double A[8];
__global__ void scale(long tid) { A[tid] = A[tid] * 2.0; }
int main(void) {
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    map((char *) A);
    __launch(scale, 8);
    unmap((char *) A);
    release((char *) A);
    print_f64(A[0]);
    return 0;
}
"""

_CONTRACT = PassContract(stage="test-stage")


def _replica(module):
    """Independent copy of a module via the golden IR round-trip."""
    return parse_module(module_to_str(module))


def _kinds(findings):
    return sorted({f.kind for f in findings})


class TestSeededMiscompilations:
    def _module(self):
        return compile_minic(_SOURCE)

    def test_identity_pass_validates_clean(self):
        module = self._module()
        assert validate_stage(_CONTRACT, _replica(module), module) == []

    def test_dropped_launch_is_caught(self):
        module = self._module()
        before = _replica(module)
        for fn in module.defined_functions():
            for inst in list(fn.instructions()):
                if isinstance(inst, LaunchKernel):
                    inst.parent.instructions.remove(inst)
        findings = validate_stage(_CONTRACT, before, module)
        assert "launches-changed" in _kinds(findings)
        assert all(f.severity.name == "ERROR" for f in findings)

    def test_grow_contract_permits_new_launches_only(self):
        grow = PassContract(stage="grow-stage", launches="grow")
        module = self._module()
        before = _replica(module)
        for fn in module.defined_functions():
            for inst in list(fn.instructions()):
                if isinstance(inst, LaunchKernel):
                    inst.parent.instructions.remove(inst)
        # Losing a launch is a violation even under the grow contract.
        findings = validate_stage(grow, before, module)
        assert "launches-changed" in _kinds(findings)

    def test_dropped_observable_call_is_caught(self):
        module = self._module()
        before = _replica(module)
        for fn in module.defined_functions():
            for inst in list(fn.instructions()):
                if isinstance(inst, Call) \
                        and inst.callee.name == "print_f64":
                    inst.parent.instructions.remove(inst)
        findings = validate_stage(_CONTRACT, before, module)
        assert "external-calls-changed" in _kinds(findings)

    def test_dropped_global_is_caught(self):
        module = self._module()
        before = _replica(module)
        before.globals["phantom"] = before.globals["A"]
        findings = validate_stage(_CONTRACT, before, module)
        assert "globals-dropped" in _kinds(findings)
        assert any("@phantom" in f.message for f in findings)

    def test_dropped_runtime_call_is_caught_twin_normalized(self):
        contract = PassContract(stage="overlap-stage",
                                runtime_calls="twin-normalized")
        module = self._module()
        before = _replica(module)
        for fn in module.defined_functions():
            for inst in list(fn.instructions()):
                if isinstance(inst, Call) \
                        and inst.callee.name == "unmap":
                    inst.parent.instructions.remove(inst)
        findings = validate_stage(contract, before, module)
        assert "runtime-calls-changed" in _kinds(findings)
        assert any("unmap" in f.message for f in findings)

    def test_async_rename_is_invisible_under_twin_normalization(self):
        from repro.runtime.api import ASYNC_VARIANTS, RUNTIME_SIGNATURES
        contract = PassContract(stage="overlap-stage",
                                runtime_calls="twin-normalized")
        module = self._module()
        before = _replica(module)
        # Reproduce what comm overlap legitimately does: rename the
        # managed calls to their async twins and add a barrier.
        for fn in list(module.defined_functions()):
            for inst in fn.instructions():
                if isinstance(inst, Call) \
                        and inst.callee.name in ASYNC_VARIANTS:
                    twin = ASYNC_VARIANTS[inst.callee.name]
                    inst.callee = module.declare_function(
                        twin, RUNTIME_SIGNATURES[twin])
        sync = Call(module.declare_function(
            SYNC_FUNCTION, RUNTIME_SIGNATURES[SYNC_FUNCTION]), [])
        last = list(module.functions["main"].blocks)[-1]
        last.insert(len(last.instructions) - 1, sync)
        findings = validate_stage(contract, before, module)
        assert "runtime-calls-changed" not in _kinds(findings)

    def test_mapstate_regression_is_caught(self):
        module = self._module()
        before = _replica(module)
        # Break the protocol on the after side only: drop the release.
        for fn in module.defined_functions():
            for inst in list(fn.instructions()):
                if isinstance(inst, Call) \
                        and inst.callee.name == "release":
                    inst.parent.instructions.remove(inst)
        findings = validate_stage(_CONTRACT, before, module)
        assert "mapstate-regression" in _kinds(findings)

    def test_hb_obligation_catches_unordered_async(self):
        contract = PassContract(stage="overlap-stage", check_hb=True,
                                check_mapstate_regression=False)
        compiled = CgcmCompiler(CgcmConfig(streams=True)).compile_source(
            get_workload("atax").source, "atax")
        module = compiled.module
        # The hb obligation only inspects the after side, so the
        # unmutated module can stand in as its own "before".
        before = module
        for fn in module.defined_functions():
            for inst in list(fn.instructions()):
                if isinstance(inst, Call) \
                        and inst.callee.name == SYNC_FUNCTION:
                    inst.parent.instructions.remove(inst)
        findings = validate_stage(contract, before, module)
        assert "hb-regression" in _kinds(findings)


class TestValidatorHarness:
    def test_validator_accumulates_and_advances_snapshots(self):
        module = compile_minic(_SOURCE)
        validator = TranslationValidator()
        validator.begin(module)
        assert validator.check(_CONTRACT, module) == []
        # Mutate after the snapshot advanced: the next check sees it.
        for fn in module.defined_functions():
            for inst in list(fn.instructions()):
                if isinstance(inst, LaunchKernel):
                    inst.parent.instructions.remove(inst)
        findings = validator.check(_CONTRACT, module)
        assert "launches-changed" in _kinds(findings)
        assert validator.errors == findings

    def test_pipeline_gates_on_a_broken_pass(self, monkeypatch):
        from repro.transforms.comm_overlap import CommOverlap

        original = CommOverlap.run

        def sabotaged(self):
            stats = original(self)
            for fn in self.module.defined_functions():
                for inst in list(fn.instructions()):
                    if isinstance(inst, Call) \
                            and inst.callee.name == SYNC_FUNCTION:
                        inst.parent.instructions.remove(inst)
            return stats

        monkeypatch.setattr(CommOverlap, "run", sabotaged)
        config = CgcmConfig(streams=True, validate=True)
        with pytest.raises(TransformValidationError) as excinfo:
            CgcmCompiler(config).compile_source(
                get_workload("atax").source, "atax")
        assert excinfo.value.findings
        assert {f.kind for f in excinfo.value.findings} \
            >= {"hb-regression"}
        assert excinfo.value.report.module is not None

    def test_report_carries_validation_findings(self):
        config = CgcmConfig(streams=True, validate=True)
        report = CgcmCompiler(config).compile_source(
            get_workload("atax").source, "atax")
        assert report.validation == []


class TestContracts:
    def test_every_optimize_pass_declares_a_contract(self):
        assert glue_kernels.CONTRACT.stage == "glue-kernels"
        assert glue_kernels.CONTRACT.launches == "grow"
        assert alloca_promotion.CONTRACT.stage == "alloca-promotion"
        assert map_promotion.CONTRACT.stage == "map-promotion"
        assert comm_overlap.CONTRACT.stage == "comm-overlap"
        assert comm_overlap.CONTRACT.runtime_calls == "twin-normalized"
        assert comm_overlap.CONTRACT.check_hb


class TestLintSurface:
    def test_lint_validate_merges_transval_pass(self):
        report = lint_source(get_workload("atax").source, "atax",
                             streams=True, validate=True)
        assert report.clean, report.render()
        assert "transval" in report.passes_run

    def test_lint_without_validate_omits_transval(self):
        report = lint_source(get_workload("atax").source, "atax",
                             streams=True)
        assert "transval" not in report.passes_run


_FAST_SUBSET = ["atax", "gemm", "hotspot"]


@pytest.mark.parametrize("name", _FAST_SUBSET)
@pytest.mark.parametrize("streams", [False, True])
def test_workload_pipeline_validates_clean(name, streams):
    config = CgcmConfig(streams=streams, validate=True)
    report = CgcmCompiler(config).compile_source(
        get_workload(name).source, name)
    assert report.validation == []


@pytest.mark.slow
@pytest.mark.parametrize("streams", [False, True])
def test_all_workloads_validate_clean_slow(streams):
    from repro.workloads import workload_names
    failures = []
    for name in workload_names():
        config = CgcmConfig(streams=streams, validate=True)
        try:
            report = CgcmCompiler(config).compile_source(
                get_workload(name).source, name)
        except TransformValidationError as exc:
            failures.append((name, [f.render() for f in exc.findings]))
            continue
        if report.validation:
            failures.append(
                (name, [f.render() for f in report.validation]))
    assert not failures, failures
