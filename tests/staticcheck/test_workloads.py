"""Post-pipeline lint over the paper workloads: zero errors expected.

The pipeline's own output must satisfy the static checker -- any
error here is either a pipeline bug or a checker false positive, and
both matter.  A fast three-workload subset runs in tier-1; the full
24-workload sweep at both pipeline levels is marked slow.
"""

import pytest

from repro.core import OptLevel
from repro.staticcheck import lint_workload
from repro.workloads import get_workload, workload_names

_FAST_SUBSET = ("atax", "gemm", "hotspot")


@pytest.mark.parametrize("name", _FAST_SUBSET)
def test_workload_lints_clean(name):
    report = lint_workload(get_workload(name))
    assert report.clean, report.render()
    assert report.passes_run == ["verify", "mapstate", "redundant",
                                 "doall", "hbcheck", "placement"]


@pytest.mark.slow
@pytest.mark.parametrize("level",
                         [OptLevel.UNOPTIMIZED, OptLevel.OPTIMIZED])
def test_all_workloads_lint_clean(level):
    failures = []
    for name in workload_names():
        report = lint_workload(get_workload(name), level)
        if not report.clean:
            failures.append(report.render())
    assert not failures, "\n".join(failures)
