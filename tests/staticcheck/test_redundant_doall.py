"""Redundant-transfer detector and DOALL race auditor unit tests."""

from repro.frontend import compile_minic
from repro.staticcheck import Severity, lint_module

_KERNEL_GLOBAL = ("__global__ void scale(long tid) "
                  "{ A[tid] = A[tid] * 2.0; }")


def lint(source, passes):
    return lint_module(compile_minic(source), passes=passes)


class TestRedundantTransfers:
    def test_idle_loop_round_trip_is_a_missed_promotion(self):
        report = lint(f"""
double A[8];
{_KERNEL_GLOBAL}
int main(void) {{
    for (int i = 0; i < 4; i++) {{
        map((char *) A);
        __launch(scale, 8);
        unmap((char *) A);
        release((char *) A);
    }}
    return 0;
}}
""", passes=("mapstate", "redundant"))
        promos = report.by_kind("missed-promotion")
        assert promos and promos[0].severity is Severity.WARNING
        assert report.clean  # missed optimizations are warnings

    def test_cpu_store_in_loop_justifies_the_transfers(self):
        report = lint(f"""
double A[8];
{_KERNEL_GLOBAL}
int main(void) {{
    for (int i = 0; i < 4; i++) {{
        A[i] = i + 1.0;
        map((char *) A);
        __launch(scale, 8);
        unmap((char *) A);
        release((char *) A);
    }}
    return 0;
}}
""", passes=("mapstate", "redundant"))
        assert not report.by_kind("missed-promotion")

    def test_immediate_remap_is_a_redundant_transfer(self):
        report = lint(f"""
double A[8];
{_KERNEL_GLOBAL}
int main(void) {{
    map((char *) A);
    __launch(scale, 8);
    unmap((char *) A);
    map((char *) A);
    __launch(scale, 8);
    unmap((char *) A);
    release((char *) A);
    release((char *) A);
    return 0;
}}
""", passes=("mapstate", "redundant"))
        assert report.by_kind("redundant-transfer")

    def test_intervening_cpu_read_keeps_the_unmap(self):
        report = lint(f"""
double A[8];
{_KERNEL_GLOBAL}
int main(void) {{
    map((char *) A);
    __launch(scale, 8);
    unmap((char *) A);
    print_f64(A[0]);
    map((char *) A);
    __launch(scale, 8);
    unmap((char *) A);
    release((char *) A);
    release((char *) A);
    return 0;
}}
""", passes=("mapstate", "redundant"))
        assert not report.by_kind("redundant-transfer")


class TestDoallAuditor:
    def _lint_kernel(self, kernel, grid=8, decl="double A[16];"):
        return lint(f"""
{decl}
{kernel}
int main(void) {{
    map((char *) A);
    __launch(k, {grid});
    unmap((char *) A);
    release((char *) A);
    return 0;
}}
""", passes=("mapstate", "doall"))

    def test_embarrassingly_parallel_kernel_is_clean(self):
        report = self._lint_kernel(
            "__global__ void k(long tid) { A[tid] = A[tid] + 1.0; }")
        assert not report.by_kind("doall-race")
        assert not report.by_kind("doall-unverified")

    def test_cross_iteration_flow_dependence_is_a_race(self):
        report = self._lint_kernel(
            "__global__ void k(long tid) { A[tid + 1] = A[tid]; }")
        races = report.by_kind("doall-race")
        assert races and races[0].severity is Severity.ERROR
        assert races[0].function == "k"

    def test_shared_scalar_reduction_is_a_race(self):
        report = lint("""
double S[1];
double A[8];
__global__ void k(long tid) { S[0] = S[0] + A[tid]; }
int main(void) {
    map((char *) S);
    map((char *) A);
    __launch(k, 8);
    unmap((char *) S);
    release((char *) S);
    unmap((char *) A);
    release((char *) A);
    return 0;
}
""", passes=("mapstate", "doall"))
        assert report.by_kind("doall-race")

    def test_unanalyzable_subscript_is_a_note_not_an_error(self):
        """Indirect addressing cannot be proven racy or race-free:
        the auditor must degrade to a NOTE (zero false positives)."""
        report = lint("""
double A[16];
long IDX[8];
__global__ void k(long tid) { A[IDX[tid]] = 1.0; }
int main(void) {
    map((char *) A);
    map((char *) IDX);
    __launch(k, 8);
    unmap((char *) A);
    release((char *) A);
    unmap((char *) IDX);
    release((char *) IDX);
    return 0;
}
""", passes=("mapstate", "doall"))
        assert not report.by_kind("doall-race")
        notes = report.by_kind("doall-unverified")
        assert notes and all(f.severity is Severity.NOTE for f in notes)

    def test_unlaunched_kernel_is_skipped(self):
        report = lint("""
double A[16];
__global__ void k(long tid) { A[tid + 1] = A[tid]; }
int main(void) {
    return 0;
}
""", passes=("mapstate", "doall"))
        assert not report.findings
