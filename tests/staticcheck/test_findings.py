"""Finding identity: fingerprints, deterministic ordering, SARIF."""

import hashlib
import json

from repro.frontend import compile_minic
from repro.staticcheck import (Severity, lint_module, sarif_document)
from repro.staticcheck.findings import Finding, LintReport


def _finding(**overrides):
    base = dict(pass_name="mapstate", kind="launch-unmapped",
                severity=Severity.ERROR, function="main", block="body",
                block_position=2, index=7, message="the message",
                unit="@A")
    base.update(overrides)
    return Finding(**base)


class TestFingerprint:
    def test_identity_coordinates_only(self):
        # Shifting the instruction position or rewording the message
        # must keep the fingerprint: CI baselines survive refactors.
        original = _finding()
        moved = _finding(block_position=5, index=0,
                         message="reworded diagnostic",
                         severity=Severity.NOTE)
        assert original.fingerprint == moved.fingerprint

    def test_each_coordinate_is_significant(self):
        original = _finding()
        for field, value in [("pass_name", "hbcheck"),
                             ("kind", "launch-raw-pointer"),
                             ("function", "helper"),
                             ("unit", "@B"),
                             ("block", "exit")]:
            assert _finding(**{field: value}).fingerprint \
                != original.fingerprint, field

    def test_sha1_derivation_is_stable_across_processes(self):
        finding = _finding()
        identity = "\x1f".join(("mapstate", "launch-unmapped", "main",
                                "@A", "body"))
        expected = hashlib.sha1(
            identity.encode("utf-8")).hexdigest()[:16]
        assert finding.fingerprint == expected

    def test_separator_prevents_coordinate_gluing(self):
        # ("ab", "c") and ("a", "bc") must not collide.
        glued = _finding(function="mainx", unit="@A")
        split = _finding(function="main", unit="x@A")
        assert glued.fingerprint != split.fingerprint


class TestDeterministicReports:
    _SOURCE = """
double A[8];
double B[8];
__global__ void k(long tid) { A[tid] = B[tid]; }
int main(void) {
    map((char *) B);
    __launch(k, 8);
    unmap((char *) A);
    unmap((char *) B);
    release((char *) B);
    return 0;
}
"""

    def test_findings_are_sorted_on_construction(self):
        module = compile_minic(self._SOURCE)
        report = lint_module(module)
        assert report.findings == sorted(report.findings,
                                         key=Finding.sort_key)
        shuffled = LintReport(report.module_name,
                              list(reversed(report.findings)),
                              report.passes_run)
        assert [f.fingerprint for f in shuffled.findings] \
            == [f.fingerprint for f in report.findings]

    def test_json_roundtrip_is_bytewise_reproducible(self):
        module = compile_minic(self._SOURCE)
        first = json.dumps(lint_module(module).to_json(), indent=2)
        second = json.dumps(
            lint_module(compile_minic(self._SOURCE)).to_json(), indent=2)
        assert first == second

    def test_mapstate_findings_carry_unit_labels(self):
        module = compile_minic(self._SOURCE)
        report = lint_module(module, passes=("mapstate",))
        assert report.findings
        units = {f.unit for f in report.findings}
        assert "@A" in units or "@B" in units
        # Findings about different units never share a fingerprint.
        per_unit = {}
        for f in report.findings:
            per_unit.setdefault((f.kind, f.function, f.unit),
                                set()).add(f.fingerprint)
        prints = [fp for fps in per_unit.values() for fp in fps]
        assert len(prints) == len(set(prints))


class TestSarif:
    def _reports(self):
        module = compile_minic(TestDeterministicReports._SOURCE)
        return [lint_module(module)]

    def test_document_shape(self):
        doc = sarif_document(self._reports())
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["results"], "expected findings on the dirty module"

    def test_results_reference_declared_rules(self):
        (run,) = sarif_document(self._reports())["runs"]
        rules = run["tool"]["driver"]["rules"]
        rule_ids = [rule["id"] for rule in rules]
        assert len(rule_ids) == len(set(rule_ids))
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]

    def test_partial_fingerprints_match_finding_identity(self):
        (report,) = self._reports()
        (run,) = sarif_document([report])["runs"]
        sarif_prints = [r["partialFingerprints"]["repro/finding/v1"]
                        for r in run["results"]]
        assert sarif_prints == [f.fingerprint for f in report.findings]

    def test_levels_use_sarif_vocabulary(self):
        (run,) = sarif_document(self._reports())["runs"]
        assert {r["level"] for r in run["results"]} \
            <= {"error", "warning", "note"}

    def test_document_is_json_serializable(self):
        json.dumps(sarif_document(self._reports()))
