"""Seeded-defect corpus: every seeded bug caught, every control clean.

This is the zero-false-negative acceptance gate from the issue: each
corpus module commits exactly one communication-protocol violation and
the pass named in the entry must flag it with one of the expected
kinds.  The control entries guard the other direction -- a checker
that flags everything would "catch" the defects trivially.
"""

import pytest

from repro.staticcheck import CORPUS, check_corpus
from repro.staticcheck.corpus import get_defect

_DEFECTS = [d.name for d in CORPUS if not d.is_control]
_CONTROLS = [d.name for d in CORPUS if d.is_control]


def test_corpus_is_large_enough():
    assert len(_DEFECTS) >= 12
    assert len(_CONTROLS) >= 2


def test_every_pass_is_exercised():
    passes = {d.expected_pass for d in CORPUS if not d.is_control}
    assert passes == {"mapstate", "redundant", "doall", "hbcheck"}


@pytest.mark.parametrize("name", _DEFECTS)
def test_defect_is_caught(name):
    result = check_corpus([name])[0]
    flagged = sorted({(f.pass_name, f.kind)
                      for f in result.report.findings})
    assert result.caught, (
        f"{name}: expected {result.defect.expected_pass} to report one "
        f"of {result.defect.kinds}, got {flagged}")


@pytest.mark.parametrize("name", _CONTROLS)
def test_control_is_clean(name):
    result = check_corpus([name])[0]
    assert result.caught, (
        f"{name}: control flagged with "
        f"{[f.render() for f in result.report.errors]}")


def test_zero_false_negatives_overall():
    results = check_corpus()
    missed = [r.defect.name for r in results if not r.caught]
    assert not missed, f"corpus entries mishandled: {missed}"


def test_get_defect_unknown_name():
    with pytest.raises(KeyError):
        get_defect("no-such-defect")
