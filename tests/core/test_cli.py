"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main

PROGRAM = r"""
double xs[16];
int main(void) {
    for (int i = 0; i < 16; i++) xs[i] = i;
    for (int t = 0; t < 3; t++)
        for (int i = 0; i < 16; i++)
            xs[i] = xs[i] + 1.0;
    double s = 0.0;
    for (int i = 0; i < 16; i++) s += xs[i];
    print_f64(s);
    return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "program.c"
    path.write_text(PROGRAM)
    return str(path)


class TestRun:
    def test_run_prints_program_output(self, source_file, capsys):
        code = main(["run", source_file])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.strip() == "168"

    def test_levels_agree(self, source_file, capsys):
        outputs = []
        for level in ("sequential", "unoptimized", "optimized"):
            main(["run", source_file, "--level", level])
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_stats_go_to_stderr(self, source_file, capsys):
        main(["run", source_file, "--stats"])
        captured = capsys.readouterr()
        assert "modelled time" in captured.err
        assert "DOALL kernels" in captured.err
        assert "modelled" not in captured.out

    def test_trace_renders_schedule(self, source_file, capsys):
        main(["run", source_file, "--level", "unoptimized", "--trace"])
        captured = capsys.readouterr()
        assert "CPU " in captured.err
        assert "Comm" in captured.err


class TestEmitIr:
    def test_optimized_ir_contains_runtime_calls(self, source_file,
                                                 capsys):
        main(["emit-ir", source_file])
        out = capsys.readouterr().out
        assert "kernel @" in out
        assert "call @map" in out
        assert "launch @" in out

    def test_sequential_ir_is_plain(self, source_file, capsys):
        main(["emit-ir", source_file, "--level", "sequential"])
        out = capsys.readouterr().out
        assert "kernel @" not in out
        assert "call @map" not in out


class TestListAndBench:
    def test_list_names_all_workloads(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert out.count("\n") == 24
        assert "gemm" in out and "blackscholes" in out

    def test_bench_one_workload(self, capsys):
        main(["bench", "atax"])
        out = capsys.readouterr().out
        assert "atax" in out
        assert "Comm." in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["bench", "not-a-workload"])


class TestCacheStats:
    def test_run_reports_artifact_cache_counters(self, source_file,
                                                 capsys):
        from repro import api

        api.clear_cache()
        code = main(["run", source_file, "--cache-stats"])
        captured = capsys.readouterr()
        assert code == 0
        assert "artifact cache:" in captured.err
        assert "1 misses" in captured.err
        main(["run", source_file, "--cache-stats"])
        assert "1 hits" in capsys.readouterr().err
        api.clear_cache()


class TestServe:
    def test_serve_burst_reports(self, capsys):
        code = main(["serve", "--clients", "8"])
        captured = capsys.readouterr()
        assert code == 0
        assert "serve: 8/8 ok" in captured.out
        assert "HtoD bytes saved" in captured.out

    def test_serve_json_is_machine_readable(self, capsys):
        import json

        code = main(["serve", "--clients", "4", "--json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert document["ok"] == 4
        assert len(document["per_request"]) == 4

    def test_serve_tenant_spec_caps_heaps(self, capsys):
        code = main(["serve", "--clients", "4", "--quota-mix",
                     "--tenants", "gold,tiny=8192"])
        captured = capsys.readouterr()
        assert code == 1  # the tiny tenant's requests are rejected
        assert "2 rejected" in captured.out
        assert "tenant tiny" in captured.out

    def test_serve_bad_tenant_spec_exits_2(self, capsys):
        assert main(["serve", "--tenants", "t=lots"]) == 2
        assert "--tenants" in capsys.readouterr().err

    def test_trace_serve_emits_per_request_tracks(self, tmp_path,
                                                  capsys):
        import json

        out = tmp_path / "serve.json"
        code = main(["trace", "--serve", "4", "--out", str(out)])
        assert code == 0
        document = json.loads(out.read_text())
        names = {event["args"]["name"]
                 for event in document["traceEvents"]
                 if event.get("name") == "thread_name"}
        assert {"req0", "req1", "req2", "req3"} <= names

    def test_trace_without_target_or_serve_exits_2(self, capsys):
        assert main(["trace"]) == 2
        assert "required" in capsys.readouterr().err

    def test_servebench_smoke(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_serve.json"
        code = main(["servebench", "--clients", "6",
                     "--out", str(out)])
        captured = capsys.readouterr()
        assert code == 0
        assert "cache speedup" in captured.out
        document = json.loads(out.read_text())
        assert document["byte_identity"]["6"] is True


class TestSanitize:
    def test_sanitize_workloads_clean(self, capsys):
        code = main(["sanitize", "atax", "--verbose"])
        captured = capsys.readouterr()
        assert code == 0
        assert "atax [optimized]: OK" in captured.out
        assert "1/1 clean" in captured.err
        assert "kernel_launches=" in captured.err

    def test_sanitize_source_file(self, source_file, capsys):
        code = main(["sanitize", source_file, "--level", "unoptimized"])
        captured = capsys.readouterr()
        assert code == 0
        assert "[unoptimized]: OK" in captured.out

    def test_sanitize_reports_failure_exit_code(self, tmp_path, capsys):
        # Manual-mode program with a skipped unmap: the subject's
        # globals diverge from the reference and the sanitizer flags
        # the lost update, so the command exits non-zero.
        path = tmp_path / "buggy.c"
        path.write_text(r"""
double A[8];

__global__ void scale(long tid, double *a) { a[tid] = a[tid] * 2.0; }

int main(void) {
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    double *d = (double *) map((char *) A);
    __launch(scale, 8, d);
    release((char *) A);
    double s = 0.0;
    for (int i = 0; i < 8; i++) s += A[i];
    print_f64(s);
    return 0;
}
""")
        code = main(["sanitize", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.out
        # The structured violation names the mishandled unit even
        # though the subject run died mid-way.
        assert "global A" in captured.out
        assert "0/1 clean" in captured.err
