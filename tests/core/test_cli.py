"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main

PROGRAM = r"""
double xs[16];
int main(void) {
    for (int i = 0; i < 16; i++) xs[i] = i;
    for (int t = 0; t < 3; t++)
        for (int i = 0; i < 16; i++)
            xs[i] = xs[i] + 1.0;
    double s = 0.0;
    for (int i = 0; i < 16; i++) s += xs[i];
    print_f64(s);
    return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "program.c"
    path.write_text(PROGRAM)
    return str(path)


class TestRun:
    def test_run_prints_program_output(self, source_file, capsys):
        code = main(["run", source_file])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.strip() == "168"

    def test_levels_agree(self, source_file, capsys):
        outputs = []
        for level in ("sequential", "unoptimized", "optimized"):
            main(["run", source_file, "--level", level])
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_stats_go_to_stderr(self, source_file, capsys):
        main(["run", source_file, "--stats"])
        captured = capsys.readouterr()
        assert "modelled time" in captured.err
        assert "DOALL kernels" in captured.err
        assert "modelled" not in captured.out

    def test_trace_renders_schedule(self, source_file, capsys):
        main(["run", source_file, "--level", "unoptimized", "--trace"])
        captured = capsys.readouterr()
        assert "CPU " in captured.err
        assert "Comm" in captured.err


class TestEmitIr:
    def test_optimized_ir_contains_runtime_calls(self, source_file,
                                                 capsys):
        main(["emit-ir", source_file])
        out = capsys.readouterr().out
        assert "kernel @" in out
        assert "call @map" in out
        assert "launch @" in out

    def test_sequential_ir_is_plain(self, source_file, capsys):
        main(["emit-ir", source_file, "--level", "sequential"])
        out = capsys.readouterr().out
        assert "kernel @" not in out
        assert "call @map" not in out


class TestListAndBench:
    def test_list_names_all_workloads(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert out.count("\n") == 24
        assert "gemm" in out and "blackscholes" in out

    def test_bench_one_workload(self, capsys):
        main(["bench", "atax"])
        out = capsys.readouterr().out
        assert "atax" in out
        assert "Comm." in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["bench", "not-a-workload"])


class TestSanitize:
    def test_sanitize_workloads_clean(self, capsys):
        code = main(["sanitize", "atax", "--verbose"])
        captured = capsys.readouterr()
        assert code == 0
        assert "atax [optimized]: OK" in captured.out
        assert "1/1 clean" in captured.err
        assert "kernel_launches=" in captured.err

    def test_sanitize_source_file(self, source_file, capsys):
        code = main(["sanitize", source_file, "--level", "unoptimized"])
        captured = capsys.readouterr()
        assert code == 0
        assert "[unoptimized]: OK" in captured.out

    def test_sanitize_reports_failure_exit_code(self, tmp_path, capsys):
        # Manual-mode program with a skipped unmap: the subject's
        # globals diverge from the reference and the sanitizer flags
        # the lost update, so the command exits non-zero.
        path = tmp_path / "buggy.c"
        path.write_text(r"""
double A[8];

__global__ void scale(long tid, double *a) { a[tid] = a[tid] * 2.0; }

int main(void) {
    for (int i = 0; i < 8; i++) A[i] = i + 1;
    double *d = (double *) map((char *) A);
    __launch(scale, 8, d);
    release((char *) A);
    double s = 0.0;
    for (int i = 0; i < 8; i++) s += A[i];
    print_f64(s);
    return 0;
}
""")
        code = main(["sanitize", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.out
        # The structured violation names the mishandled unit even
        # though the subject run died mid-way.
        assert "global A" in captured.out
        assert "0/1 clean" in captured.err
