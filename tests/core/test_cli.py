"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main

PROGRAM = r"""
double xs[16];
int main(void) {
    for (int i = 0; i < 16; i++) xs[i] = i;
    for (int t = 0; t < 3; t++)
        for (int i = 0; i < 16; i++)
            xs[i] = xs[i] + 1.0;
    double s = 0.0;
    for (int i = 0; i < 16; i++) s += xs[i];
    print_f64(s);
    return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "program.c"
    path.write_text(PROGRAM)
    return str(path)


class TestRun:
    def test_run_prints_program_output(self, source_file, capsys):
        code = main(["run", source_file])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.strip() == "168"

    def test_levels_agree(self, source_file, capsys):
        outputs = []
        for level in ("sequential", "unoptimized", "optimized"):
            main(["run", source_file, "--level", level])
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_stats_go_to_stderr(self, source_file, capsys):
        main(["run", source_file, "--stats"])
        captured = capsys.readouterr()
        assert "modelled time" in captured.err
        assert "DOALL kernels" in captured.err
        assert "modelled" not in captured.out

    def test_trace_renders_schedule(self, source_file, capsys):
        main(["run", source_file, "--level", "unoptimized", "--trace"])
        captured = capsys.readouterr()
        assert "CPU " in captured.err
        assert "Comm" in captured.err


class TestEmitIr:
    def test_optimized_ir_contains_runtime_calls(self, source_file,
                                                 capsys):
        main(["emit-ir", source_file])
        out = capsys.readouterr().out
        assert "kernel @" in out
        assert "call @map" in out
        assert "launch @" in out

    def test_sequential_ir_is_plain(self, source_file, capsys):
        main(["emit-ir", source_file, "--level", "sequential"])
        out = capsys.readouterr().out
        assert "kernel @" not in out
        assert "call @map" not in out


class TestListAndBench:
    def test_list_names_all_workloads(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert out.count("\n") == 24
        assert "gemm" in out and "blackscholes" in out

    def test_bench_one_workload(self, capsys):
        main(["bench", "atax"])
        out = capsys.readouterr().out
        assert "atax" in out
        assert "Comm." in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["bench", "not-a-workload"])
