"""Session API: per-session caches, ambient defaults, topology injection."""

import pytest

from repro import api
from repro.core import CgcmConfig, OptLevel
from repro.errors import ConfigError
from repro.gpu.topology import Topology

SOURCE = "int main(void) { print_i64(41 + 1); return 0; }"
OTHER = "int main(void) { print_i64(7); return 0; }"


class TestIsolation:
    def test_sessions_do_not_share_caches(self):
        a, b = api.Session(), api.Session()
        a.compile(SOURCE)
        assert a.cache_stats()["misses"] == 1
        assert b.cache_stats()["misses"] == 0
        b.compile(SOURCE)
        b.compile(SOURCE)
        assert b.cache_stats() == {**b.cache_stats(),
                                   "hits": 1, "misses": 1}
        assert a.cache_stats()["hits"] == 0

    def test_clear_cache_is_per_session(self):
        a, b = api.Session(), api.Session()
        a.compile(SOURCE)
        b.compile(SOURCE)
        a.clear_cache()
        assert a.cache_stats()["entries"] == 0
        assert b.cache_stats()["entries"] == 1

    def test_module_wrappers_use_the_default_session(self):
        session = api.default_session()
        session.clear_cache()
        api.compile_workload(OTHER)
        assert session.cache_stats()["misses"] == 1
        assert api.cache_stats() == session.cache_stats()
        api.clear_cache()
        assert session.cache_stats()["entries"] == 0


class TestDefaults:
    def test_session_default_config_applies(self):
        session = api.Session(CgcmConfig(opt_level=OptLevel.SEQUENTIAL))
        workload = session.compile(SOURCE)
        assert workload.config.opt_level is OptLevel.SEQUENTIAL

    def test_explicit_config_wins_over_default(self):
        session = api.Session(CgcmConfig(opt_level=OptLevel.SEQUENTIAL))
        workload = session.compile(
            SOURCE, CgcmConfig(opt_level=OptLevel.OPTIMIZED))
        assert workload.config.opt_level is OptLevel.OPTIMIZED

    def test_bad_argument_types_rejected(self):
        with pytest.raises(ConfigError, match="must be a CgcmConfig"):
            api.Session(config="fast")
        with pytest.raises(ConfigError, match="must be a Topology"):
            api.Session(topology=4)


class TestTopologyInjection:
    def test_session_topology_injected_into_parallel_configs(self):
        session = api.Session(topology=Topology.fully_connected(2))
        workload = session.compile(SOURCE)
        assert workload.config.topology == Topology.fully_connected(2)

    def test_explicit_topology_is_not_overridden(self):
        session = api.Session(topology=Topology.fully_connected(2))
        workload = session.compile(
            SOURCE, CgcmConfig(topology=Topology.ring(4)))
        assert workload.config.topology == Topology.ring(4)

    def test_cpu_only_configs_skip_injection(self):
        session = api.Session(topology=Topology.fully_connected(2))
        workload = session.compile(
            SOURCE, CgcmConfig(opt_level=OptLevel.SEQUENTIAL))
        assert workload.config.topology is None

    def test_topology_is_part_of_the_cache_key(self):
        session = api.Session()
        session.compile(SOURCE)
        session.compile(SOURCE, CgcmConfig(
            topology=Topology.fully_connected(2)))
        assert session.cache_stats()["misses"] == 2
        assert session.cache_stats()["entries"] == 2
