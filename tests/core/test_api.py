"""Tests for the public scripting API (``repro.api``)."""

import dataclasses

import pytest

from repro import api
from repro.core import CgcmConfig, OptLevel
from repro.errors import ConfigError, FrontendError
from repro.gpu.faults import FaultPlan

PROGRAM = r"""
double xs[8];
int main(void) {
    for (int i = 0; i < 8; i++) xs[i] = i * 0.5;
    for (int rep = 0; rep < 3; rep++)
        for (int i = 0; i < 8; i++) xs[i] = xs[i] * 0.5 + 1.0;
    double s = 0.0;
    for (int i = 0; i < 8; i++) s += xs[i];
    print_f64(s);
    return 0;
}
"""


@pytest.fixture(autouse=True)
def fresh_cache():
    api.clear_cache()
    yield
    api.clear_cache()


class TestCompileWorkload:
    def test_string_in_observables_out(self):
        workload = api.compile_workload(PROGRAM)
        result = workload.run()
        assert result.exit_code == 0
        assert len(result.stdout) == 1
        exit_code, stdout, globals_image = result.observable()
        assert exit_code == 0 and stdout == result.stdout
        assert any(name == "xs" for name, _ in globals_image)

    def test_runs_are_isolated(self):
        workload = api.compile_workload(PROGRAM)
        first = workload.run()
        second = workload.run()
        assert first.observable() == second.observable()
        assert first.counters == second.counters
        assert workload.runs == 2

    def test_clocks_exposed(self):
        result = api.compile_workload(PROGRAM).run()
        assert result.total_seconds > 0
        assert result.instructions > 0
        assert result.gpu_seconds > 0  # the rep loop parallelizes

    def test_engine_override_per_run(self):
        workload = api.compile_workload(PROGRAM)
        tree = workload.run(engine="tree")
        compiled = workload.run(engine="compiled")
        assert tree.observable() == compiled.observable()

    def test_lint_report(self):
        report = api.compile_workload(PROGRAM).lint()
        assert report.clean

    def test_sanitize_report(self):
        report = api.compile_workload(PROGRAM).sanitize()
        assert report.ok and not report.violations

    def test_ir_printed(self):
        workload = api.compile_workload(PROGRAM)
        assert workload.ir.startswith('module "workload"')
        assert "kernel" in workload.ir  # the rep loop was outlined

    def test_sequential_config(self):
        config = CgcmConfig(opt_level=OptLevel.SEQUENTIAL)
        result = api.compile_workload(PROGRAM, config).run()
        assert result.gpu_seconds == 0

    def test_caller_config_mutation_does_not_leak(self):
        config = CgcmConfig()
        workload = api.compile_workload(PROGRAM, config)
        config.opt_level = OptLevel.SEQUENTIAL
        assert workload.config.opt_level is OptLevel.OPTIMIZED
        assert workload.run().gpu_seconds > 0


class TestNegativePaths:
    def test_malformed_source_raises_typed_diagnostic(self):
        with pytest.raises(FrontendError) as excinfo:
            api.compile_workload("int main(void) { return 0 }\n")
        assert excinfo.value.line > 0
        assert excinfo.value.column > 0
        assert "1:" in str(excinfo.value)

    def test_lexer_garbage_raises_typed_diagnostic(self):
        with pytest.raises(FrontendError) as excinfo:
            api.compile_workload("int main(void) { int x = `; }\n")
        assert excinfo.value.line > 0

    def test_semantic_error_raises_typed_diagnostic(self):
        with pytest.raises(FrontendError) as excinfo:
            api.compile_workload(
                "int main(void) { return nope; }\n")
        assert excinfo.value.line == 1

    def test_malformed_source_is_not_cached(self):
        for _ in range(2):
            with pytest.raises(FrontendError):
                api.compile_workload("int main(\n")
        assert api.cache_stats()["size"] == 0

    def test_non_string_source_rejected(self):
        with pytest.raises(ConfigError):
            api.compile_workload(b"int main(void) { return 0; }")

    def test_non_config_rejected_before_compilation(self):
        with pytest.raises(ConfigError):
            api.compile_workload(PROGRAM, config={"opt_level": "optimized"})
        # Rejected up front: no compile was attempted, so no miss.
        stats = api.cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert stats["entries"] == 0

    def test_config_mutated_invalid_rejected_before_compilation(self):
        config = CgcmConfig()
        config.engine = "quantum"  # bypasses __post_init__
        with pytest.raises(ConfigError):
            api.compile_workload(PROGRAM, config)
        assert api.cache_stats()["misses"] == 0

    def test_faults_plus_streams_rejected_before_compilation(self):
        config = CgcmConfig(faults=FaultPlan(seed=1, alloc_fail_rate=0.1))
        config.streams = True
        with pytest.raises(ConfigError):
            api.compile_workload(PROGRAM, config)
        assert api.cache_stats()["misses"] == 0


class TestArtifactCache:
    def test_same_source_same_config_hits(self):
        first = api.compile_workload(PROGRAM)
        second = api.compile_workload(PROGRAM)
        assert second is first
        stats = api.cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1

    def test_equivalent_config_objects_hit(self):
        api.compile_workload(PROGRAM, CgcmConfig())
        api.compile_workload(PROGRAM, CgcmConfig())
        assert api.cache_stats()["hits"] == 1

    def test_whitespace_change_misses(self):
        api.compile_workload(PROGRAM)
        api.compile_workload(PROGRAM.replace("    ", "\t"))
        stats = api.cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 2

    def test_name_is_part_of_the_key(self):
        api.compile_workload(PROGRAM, name="a")
        api.compile_workload(PROGRAM, name="b")
        assert api.cache_stats()["misses"] == 2

    def test_config_variants_are_isolated(self):
        variants = [
            CgcmConfig(),
            CgcmConfig(sanitize=True),
            CgcmConfig(streams=True),
            CgcmConfig(faults=FaultPlan(seed=3, alloc_fail_rate=0.2)),
            CgcmConfig(device_heap_limit=4 << 10),
            CgcmConfig(opt_level=OptLevel.UNOPTIMIZED),
            CgcmConfig(engine="tree"),
        ]
        handles = [api.compile_workload(PROGRAM, cfg) for cfg in variants]
        assert api.cache_stats()["misses"] == len(variants)
        assert len({id(h) for h in handles}) == len(variants)
        # Every variant still computes the same observables...
        results = [h.run() for h in handles]
        baseline = results[0].observable()
        assert all(r.observable() == baseline for r in results)
        # ...and the instrumented variants kept their instrumentation.
        assert results[1].sanitizer_report is not None
        assert results[0].sanitizer_report is None

    def test_fault_seed_is_part_of_the_key(self):
        api.compile_workload(
            PROGRAM, CgcmConfig(faults=FaultPlan(seed=1,
                                                 alloc_fail_rate=0.2)))
        api.compile_workload(
            PROGRAM, CgcmConfig(faults=FaultPlan(seed=2,
                                                 alloc_fail_rate=0.2)))
        assert api.cache_stats()["misses"] == 2

    def test_cache_eviction_is_bounded(self):
        template = "int main(void) {{ print_i64({0}); return 0; }}\n"
        for index in range(api.CACHE_CAPACITY + 5):
            api.compile_workload(template.format(index))
        assert api.cache_stats()["size"] == api.CACHE_CAPACITY

    def test_clear_cache_resets_counters(self):
        api.compile_workload(PROGRAM)
        api.clear_cache()
        assert api.cache_stats() == {
            "hits": 0, "misses": 0, "evictions": 0, "entries": 0,
            "size": 0, "capacity": api.CACHE_CAPACITY}

    def test_eviction_counter_tracks_lru_drops(self):
        template = "int main(void) {{ print_i64({0}); return 0; }}\n"
        for index in range(api.CACHE_CAPACITY + 5):
            api.compile_workload(template.format(index))
        stats = api.cache_stats()
        assert stats["evictions"] == 5
        assert stats["entries"] == api.CACHE_CAPACITY
