"""Driver-level tests: CgcmCompiler, configs, ExecutionResult."""

import pytest

from repro import (CgcmCompiler, CgcmConfig, CostModel, OptLevel,
                   compile_and_run)

PROGRAM = r"""
double xs[32];
int main(void) {
    for (int i = 0; i < 32; i++) xs[i] = i;
    for (int t = 0; t < 4; t++)
        for (int i = 0; i < 32; i++)
            xs[i] = xs[i] * 1.01;
    double s = 0.0;
    for (int i = 0; i < 32; i++) s += xs[i];
    print_f64(s);
    return 0;
}
"""


class TestPipelineLevels:
    def test_sequential_has_no_kernels(self):
        compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.SEQUENTIAL))
        report = compiler.compile_source(PROGRAM)
        assert report.doall_kernels == []
        result = compiler.execute(report)
        assert result.gpu_seconds == 0.0
        assert result.comm_seconds == 0.0

    def test_unoptimized_manages_but_does_not_optimize(self):
        compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.UNOPTIMIZED))
        report = compiler.compile_source(PROGRAM)
        assert report.doall_kernels
        assert report.promoted_loops == 0
        assert report.glue_kernels == []

    def test_optimized_runs_all_passes(self):
        compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED))
        report = compiler.compile_source(PROGRAM)
        assert report.promoted_loops >= 1

    def test_observable_equality_across_levels(self):
        observations = [
            compile_and_run(PROGRAM, level).observable()
            for level in (OptLevel.SEQUENTIAL, OptLevel.UNOPTIMIZED,
                          OptLevel.OPTIMIZED)
        ]
        assert observations[0] == observations[1] == observations[2]


class TestExecutionResult:
    def test_total_is_sum_of_lanes(self):
        result = compile_and_run(PROGRAM, OptLevel.OPTIMIZED)
        assert result.total_seconds == pytest.approx(
            result.cpu_seconds + result.gpu_seconds + result.comm_seconds)

    def test_globals_image_captured(self):
        result = compile_and_run(PROGRAM, OptLevel.OPTIMIZED)
        assert "xs" in result.globals_image
        assert len(result.globals_image["xs"]) == 32 * 8

    def test_internal_globals_not_captured(self):
        result = compile_and_run(
            'int main(void) { print_str("hello"); return 0; }',
            OptLevel.SEQUENTIAL)
        assert all(not name.startswith(".str")
                   for name in result.globals_image)

    def test_counters_present_for_gpu_runs(self):
        result = compile_and_run(PROGRAM, OptLevel.UNOPTIMIZED)
        assert result.counters["kernel_launches"] >= 4
        assert result.counters["htod_copies"] >= 1


class TestCustomCostModel:
    def test_slow_bus_hurts_cyclic_patterns_more(self):
        slow_bus = CostModel(transfer_latency_s=50e-6)
        unopt = compile_and_run(
            PROGRAM, OptLevel.UNOPTIMIZED,
            CgcmConfig(cost_model=slow_bus))
        opt = compile_and_run(
            PROGRAM, OptLevel.OPTIMIZED,
            CgcmConfig(cost_model=slow_bus))
        assert opt.total_seconds < unopt.total_seconds / 2

    def test_frozen_model(self):
        model = CostModel()
        with pytest.raises(Exception):
            model.gpu_cores = 1


class TestConfigProperties:
    def test_parallelize_and_optimize_flags(self):
        assert not CgcmConfig(opt_level=OptLevel.SEQUENTIAL).parallelize
        unopt = CgcmConfig(opt_level=OptLevel.UNOPTIMIZED)
        assert unopt.parallelize and not unopt.optimize
        opt = CgcmConfig(opt_level=OptLevel.OPTIMIZED)
        assert opt.parallelize and opt.optimize

    def test_compile_and_run_level_override(self):
        config = CgcmConfig(opt_level=OptLevel.SEQUENTIAL)
        result = compile_and_run(PROGRAM, OptLevel.UNOPTIMIZED, config)
        assert result.counters.get("kernel_launches", 0) > 0
