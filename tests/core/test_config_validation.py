"""CgcmConfig.__post_init__ validation: every bad combination fails
fast with an actionable message (repro.resilience satellite)."""

import pytest

from repro.core.config import CgcmConfig, OptLevel
from repro.errors import ConfigError
from repro.gpu.faults import FaultPlan


def plan(**kwargs):
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("alloc_fail_rate", 0.3)
    return FaultPlan(**kwargs)


class TestEngineValidation:
    def test_unknown_engine(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            CgcmConfig(engine="jit")

    def test_known_engines(self):
        for engine in ("tree", "compiled"):
            assert CgcmConfig(engine=engine).engine == engine


class TestFaultValidation:
    def test_faults_must_be_a_plan(self):
        with pytest.raises(ConfigError, match="must be a FaultPlan"):
            CgcmConfig(faults=42)

    def test_seedless_plan_rejected(self):
        with pytest.raises(ConfigError, match="no seed"):
            CgcmConfig(faults=FaultPlan(alloc_fail_rate=0.3))

    def test_faults_with_streams_rejected(self):
        with pytest.raises(ConfigError, match="streams"):
            CgcmConfig(faults=plan(), streams=True)

    def test_faults_on_sequential_rejected(self):
        with pytest.raises(ConfigError, match="SEQUENTIAL"):
            CgcmConfig(opt_level=OptLevel.SEQUENTIAL, faults=plan())

    def test_armed_plan_accepted(self):
        config = CgcmConfig(faults=plan())
        assert config.resilient


class TestHeapLimitValidation:
    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            CgcmConfig(device_heap_limit=0)
        with pytest.raises(ConfigError, match="positive"):
            CgcmConfig(device_heap_limit=-4096)

    def test_non_integer_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            CgcmConfig(device_heap_limit="64k")

    def test_heap_limit_with_streams_rejected(self):
        with pytest.raises(ConfigError, match="streams"):
            CgcmConfig(device_heap_limit=4096, streams=True)

    def test_heap_limit_on_sequential_rejected(self):
        with pytest.raises(ConfigError, match="SEQUENTIAL"):
            CgcmConfig(opt_level=OptLevel.SEQUENTIAL,
                       device_heap_limit=4096)


class TestResilientProperty:
    def test_off_by_default(self):
        assert not CgcmConfig().resilient

    def test_on_with_either_knob(self):
        assert CgcmConfig(faults=plan()).resilient
        assert CgcmConfig(device_heap_limit=4096).resilient

    def test_config_error_is_a_value_error(self):
        """Callers that predate the typed hierarchy catch ValueError."""
        assert issubclass(ConfigError, ValueError)
