"""CgcmConfig.__post_init__ validation: every bad combination fails
fast with an actionable message (repro.resilience satellite)."""

import pytest

from repro.core.config import CgcmConfig, OptLevel
from repro.errors import ConfigError
from repro.gpu.faults import FaultPlan


def plan(**kwargs):
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("alloc_fail_rate", 0.3)
    return FaultPlan(**kwargs)


class TestEngineValidation:
    def test_unknown_engine(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            CgcmConfig(engine="jit")

    def test_known_engines(self):
        for engine in ("tree", "compiled"):
            assert CgcmConfig(engine=engine).engine == engine


class TestFaultValidation:
    def test_faults_must_be_a_plan(self):
        with pytest.raises(ConfigError, match="must be a FaultPlan"):
            CgcmConfig(faults=42)

    def test_seedless_plan_rejected(self):
        with pytest.raises(ConfigError, match="no seed"):
            CgcmConfig(faults=FaultPlan(alloc_fail_rate=0.3))

    def test_faults_with_streams_rejected(self):
        with pytest.raises(ConfigError, match="streams"):
            CgcmConfig(faults=plan(), streams=True)

    def test_faults_on_sequential_rejected(self):
        with pytest.raises(ConfigError, match="SEQUENTIAL"):
            CgcmConfig(opt_level=OptLevel.SEQUENTIAL, faults=plan())

    def test_armed_plan_accepted(self):
        config = CgcmConfig(faults=plan())
        assert config.resilient


class TestHeapLimitValidation:
    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            CgcmConfig(device_heap_limit=0)
        with pytest.raises(ConfigError, match="positive"):
            CgcmConfig(device_heap_limit=-4096)

    def test_non_integer_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            CgcmConfig(device_heap_limit="64k")

    def test_heap_limit_with_streams_rejected(self):
        with pytest.raises(ConfigError, match="streams"):
            CgcmConfig(device_heap_limit=4096, streams=True)

    def test_heap_limit_on_sequential_rejected(self):
        with pytest.raises(ConfigError, match="SEQUENTIAL"):
            CgcmConfig(opt_level=OptLevel.SEQUENTIAL,
                       device_heap_limit=4096)


class TestStrictHeapLimit:
    """A heap limit smaller than the largest static allocation unit is
    a configuration error, not a permanent sentinel loop."""

    PROGRAM = r"""
    int main(void) {
        double *a = (double *) malloc(16384);
        for (int i = 0; i < 2048; i++) a[i] = 0.001 * i;
        for (int rep = 0; rep < 2; rep++)
            for (int i = 0; i < 2048; i++) a[i] = a[i] * 1.5;
        double s = 0.0;
        for (int i = 0; i < 2048; i++) s += a[i];
        print_f64(s);
        free((char *) a);
        return 0;
    }
    """

    def execute(self, **config_kwargs):
        from repro.core import CgcmCompiler

        config = CgcmConfig(**config_kwargs)
        compiler = CgcmCompiler(config)
        report = compiler.compile_source(self.PROGRAM)
        return compiler.execute(report)

    def test_undersized_limit_rejected_with_typed_error(self):
        with pytest.raises(ConfigError) as excinfo:
            self.execute(device_heap_limit=8 << 10)
        message = str(excinfo.value)
        assert "malloc(16384)" in message
        assert "strict_heap_limit=False" in message

    def test_opt_out_runs_the_degradation_deliberately(self):
        result = self.execute(device_heap_limit=8 << 10,
                              strict_heap_limit=False)
        baseline = self.execute()
        assert result.observable() == baseline.observable()
        assert result.counters.get("cpu_fallback_launches", 0) > 0

    def test_sufficient_limit_passes_the_check(self):
        result = self.execute(device_heap_limit=32 << 10)
        assert result.observable() == self.execute().observable()

    def test_dynamic_sizes_are_invisible_to_the_check(self):
        # A dynamically sized malloc can't be validated statically;
        # the runtime's sentinel degradation still covers it.
        from repro.core import CgcmCompiler

        source = r"""
        int main(void) {
            int n = 2048;
            double *a = (double *) malloc(n * 8);
            for (int i = 0; i < n; i++) a[i] = i;
            for (int rep = 0; rep < 2; rep++)
                for (int i = 0; i < n; i++) a[i] = a[i] + 1.0;
            double s = 0.0;
            for (int i = 0; i < n; i++) s += a[i];
            print_f64(s);
            free((char *) a);
            return 0;
        }
        """
        compiler = CgcmCompiler(CgcmConfig(device_heap_limit=8 << 10))
        report = compiler.compile_source(source)
        result = compiler.execute(report)  # no ConfigError
        assert result.exit_code == 0

    def test_largest_static_unit_scans_call_sites(self):
        from repro.core.compiler import largest_static_unit
        from repro.frontend import compile_minic

        module = compile_minic(self.PROGRAM)
        size, label = largest_static_unit(module)
        assert size == 16384
        assert "malloc(16384)" in label


class TestResilientProperty:
    def test_off_by_default(self):
        assert not CgcmConfig().resilient

    def test_on_with_either_knob(self):
        assert CgcmConfig(faults=plan()).resilient
        assert CgcmConfig(device_heap_limit=4096).resilient

    def test_config_error_is_a_value_error(self):
        """Callers that predate the typed hierarchy catch ValueError."""
        assert issubclass(ConfigError, ValueError)
