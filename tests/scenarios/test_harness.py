"""Tests for the differential property matrix and the fuzz loop."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.scenarios import (check_program, check_source, generate_program,
                             minimize_spec, run_fuzz, scenario_specs,
                             spec_size)
from repro.scenarios.generator import materialize
from repro.scenarios.harness import PROPERTIES
from repro.scenarios.spec import RepeatPhase


class TestPropertyMatrix:
    def test_fixed_seed_batch_passes(self):
        report = run_fuzz(seed=0, count=4)
        assert report.ok, report.render()
        assert report.passed == 4

    def test_every_property_is_checked(self):
        verdict = check_program(generate_program(0, 0), validate=True)
        assert tuple(o.prop for o in verdict.outcomes) == PROPERTIES

    def test_verdicts_are_reproducible(self):
        first = run_fuzz(seed=3, count=3)
        second = run_fuzz(seed=3, count=3)
        assert [v.summary() for v in first.verdicts] \
            == [v.summary() for v in second.verdicts]

    def test_matrix_catches_a_wrong_oracle(self):
        program = generate_program(0, 1)
        tampered = program.expected_stdout + ("999",)
        verdict = check_source(program.source, program.name, tampered)
        assert not verdict.ok
        assert "oracle" in verdict.failed

    def test_matrix_reports_compile_failures_typed(self):
        verdict = check_source("int main(void) { return 0 }\n", "broken")
        assert not verdict.ok
        assert verdict.outcomes[0].prop == "compile"
        assert "FrontendError" in verdict.outcomes[0].detail

    def test_slow_mode_widens_the_matrix(self):
        program = generate_program(0, 2)
        verdict = check_program(program, slow=True)
        assert verdict.ok, verdict.summary()


class TestShrinker:
    def test_shrinks_to_predicate_core(self):
        # Failure mode: "has a repeat phase".  The minimum such spec
        # is tiny; the shrinker must find something close to it.
        program = generate_program(0, 0)
        spec = program.spec
        assert any(isinstance(p, RepeatPhase) for p in spec.phases)

        def failing(candidate):
            return any(isinstance(p, RepeatPhase)
                       for p in candidate.phases)

        reduced = minimize_spec(spec, failing)
        assert failing(reduced)
        assert spec_size(reduced) < spec_size(spec)
        assert len(reduced.phases) == 1
        assert isinstance(reduced.phases[0], RepeatPhase)
        assert len(reduced.phases[0].body) == 1

    def test_shrunk_spec_still_emits_valid_minic(self):
        from repro import compile_minic
        program = generate_program(2, 0)

        def failing(candidate):
            return True  # everything "fails": maximal shrinking

        reduced = minimize_spec(program.spec, failing)
        minimized = materialize(reduced, "min")
        compile_minic(minimized.source)
        assert len(reduced.arrays) >= 1
        assert reduced.checksums or reduced.recursions

    def test_budget_bounds_work(self):
        program = generate_program(0, 3)
        calls = []

        def failing(candidate):
            calls.append(1)
            return True

        minimize_spec(program.spec, failing, budget=5)
        assert len(calls) <= 5

    def test_counterexample_minimization_end_to_end(self, monkeypatch):
        # Plant a deterministic "bug" that trips whenever the program
        # contains a repeat loop, then check run_fuzz both records and
        # minimizes the counterexample down to that core.
        import repro.scenarios.harness as harness
        from repro.scenarios.harness import (PropertyOutcome,
                                             ScenarioVerdict)

        def fake_check_program(program, slow=False, validate=False):
            verdict = ScenarioVerdict(program.name)
            bad = "rep++" in program.source
            verdict.outcomes.append(PropertyOutcome(
                "levels", not bad, "planted repeat-loop bug" if bad
                else ""))
            return verdict

        monkeypatch.setattr(harness, "check_program", fake_check_program)
        assert "rep++" in generate_program(0, 0).source
        report = harness.run_fuzz(seed=0, count=1)
        assert not report.ok
        assert len(report.counterexamples) == 1
        ce = report.counterexamples[0]
        assert ce.failed == ("levels",)
        # Minimization kept the failure and stripped everything else:
        # exactly one repeat phase with a single-phase body remains.
        assert "rep++" in ce.minimized_source
        assert len(ce.minimized_source) < len(ce.source)


@pytest.mark.slow
class TestSlowFuzz:
    def test_wide_fuzz_run(self):
        report = run_fuzz(seed=0, count=60)
        assert report.ok, report.render()

    def test_slow_matrix_batch(self):
        report = run_fuzz(seed=1, count=10, slow=True)
        assert report.ok, report.render()


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=scenario_specs())
def test_property_full_matrix_holds(spec):
    """hypothesis-driven form of the fuzz loop: any drawable program
    passes the whole differential matrix (shrinking comes free)."""
    program = materialize(spec, "hypothesis")
    verdict = check_program(program)
    assert verdict.ok, verdict.summary()
