"""The promoted-survivor corpus: frozen sources, frozen goldens."""

import pytest

from repro import compile_and_run, OptLevel
from repro.scenarios import check_source
from repro.scenarios.promoted import PROMOTED


def test_corpus_shape():
    assert 3 <= len(PROMOTED) <= 8
    names = [scenario.name for scenario in PROMOTED]
    assert len(set(names)) == len(names)
    for scenario in PROMOTED:
        assert scenario.expected_stdout, scenario.name
        assert "main" in scenario.source


def test_corpus_is_feature_dense():
    blob = "".join(scenario.source for scenario in PROMOTED)
    for marker in ("rep++", "PTRS", "rsum_", "double *p_", "run_",
                   "acc_", "] = {"):
        assert marker in blob, f"no promoted scenario exercises {marker}"


@pytest.mark.parametrize("scenario", PROMOTED,
                         ids=[s.name for s in PROMOTED])
def test_golden_stdout_sequential(scenario):
    result = compile_and_run(scenario.source, OptLevel.SEQUENTIAL)
    assert result.exit_code == 0
    assert tuple(result.stdout) == scenario.expected_stdout


@pytest.mark.parametrize("scenario", PROMOTED,
                         ids=[s.name for s in PROMOTED])
def test_golden_stdout_optimized(scenario):
    result = compile_and_run(scenario.source, OptLevel.OPTIMIZED)
    assert tuple(result.stdout) == scenario.expected_stdout


@pytest.mark.parametrize("scenario", PROMOTED[:2],
                         ids=[s.name for s in PROMOTED[:2]])
def test_full_matrix_fast_subset(scenario):
    verdict = check_source(scenario.source, scenario.name,
                           scenario.expected_stdout)
    assert verdict.ok, verdict.summary()


@pytest.mark.slow
@pytest.mark.parametrize("scenario", PROMOTED,
                         ids=[s.name for s in PROMOTED])
def test_full_matrix_slow(scenario):
    verdict = check_source(scenario.source, scenario.name,
                           scenario.expected_stdout, slow=True)
    assert verdict.ok, verdict.summary()
