"""Tests for the MiniC program generator and its pure-Python oracle."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro import compile_and_run, compile_minic, OptLevel
from repro.api import compile_workload
from repro.core import CgcmConfig
from repro.scenarios import (build_spec, emit_minic, evaluate_spec,
                             generate_program, program_seed, scenario_specs)
from repro.scenarios.generator import RandomDrawSource
from repro.scenarios.spec import (AliasPhase, PtrArrayPhase, RepeatPhase,
                                  ScalarUpdatePhase, SeqAccumPhase,
                                  StencilPhase)

import random


class TestDeterminism:
    def test_same_seed_same_program(self):
        for index in (0, 3, 17):
            first = generate_program(5, index)
            second = generate_program(5, index)
            assert first.source == second.source
            assert first.expected_stdout == second.expected_stdout

    def test_different_indices_differ(self):
        sources = {generate_program(0, i).source for i in range(10)}
        assert len(sources) == 10

    def test_string_seeding_is_the_contract(self):
        # The documented stability story: program i of run s is the
        # spec drawn from Random(program_seed(s, i)).
        rng = random.Random(program_seed(4, 2))
        spec = build_spec(RandomDrawSource(rng))
        assert emit_minic(spec, comment="generated scenario fuzz-4-2") \
            == generate_program(4, 2).source

    def test_emission_is_deterministic_per_spec(self):
        program = generate_program(1, 1)
        assert emit_minic(program.spec,
                          comment=f"generated scenario {program.name}") \
            == program.source
        assert evaluate_spec(program.spec) == program.expected_stdout


class TestOracle:
    @pytest.mark.parametrize("index", range(8))
    def test_oracle_matches_sequential_run(self, index):
        program = generate_program(11, index)
        result = compile_and_run(program.source, OptLevel.SEQUENTIAL)
        assert result.exit_code == 0
        assert tuple(result.stdout) == program.expected_stdout

    @pytest.mark.parametrize("index", range(8))
    def test_oracle_matches_optimized_run(self, index):
        program = generate_program(11, index)
        result = compile_and_run(program.source, OptLevel.OPTIMIZED)
        assert tuple(result.stdout) == program.expected_stdout


class TestCoverage:
    """The generated distribution must actually exercise the stack."""

    BATCH = 40

    @pytest.fixture(scope="class")
    def batch(self):
        return [generate_program(0, i) for i in range(self.BATCH)]

    def _phases(self, spec):
        for phase in spec.phases:
            yield phase
            if isinstance(phase, RepeatPhase):
                for inner in phase.body:
                    yield inner

    def test_every_feature_appears(self, batch):
        kinds = set()
        for program in batch:
            for phase in self._phases(program.spec):
                kinds.add(type(phase).__name__)
            if program.spec.recursions:
                kinds.add("recursion")
        for needed in ("InitPhase", "ElementwisePhase", "StencilPhase",
                       "SeqAccumPhase", "AliasPhase", "PtrArrayPhase",
                       "ScalarUpdatePhase", "RepeatPhase", "recursion"):
            assert needed in kinds, f"{needed} never generated"

    def test_programs_launch_kernels(self, batch):
        launched = 0
        for program in batch[:10]:
            workload = compile_workload(program.source, CgcmConfig(),
                                        name=program.name)
            if workload.report.doall_kernels:
                launched += 1
        assert launched >= 8

    def test_some_programs_form_glue_kernels(self, batch):
        glued = 0
        for program in batch:
            workload = compile_workload(program.source, CgcmConfig(),
                                        name=program.name)
            glued += bool(workload.report.glue_kernels)
        assert glued >= 3

    def test_some_programs_promote_maps(self, batch):
        promoted = 0
        for program in batch:
            workload = compile_workload(program.source, CgcmConfig(),
                                        name=program.name)
            promoted += bool(workload.report.promoted_loops
                             or workload.report.promoted_functions)
        assert promoted >= 5


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=scenario_specs())
def test_property_every_spec_compiles_and_matches_oracle(spec):
    """Any drawable spec emits well-typed MiniC whose sequential run
    reproduces the oracle exactly."""
    source = emit_minic(spec)
    compile_minic(source)  # well-formed: lexes, parses, lowers
    result = compile_and_run(source, OptLevel.SEQUENTIAL)
    assert result.exit_code == 0
    assert tuple(result.stdout) == evaluate_spec(spec)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=scenario_specs())
def test_property_pipeline_preserves_oracle(spec):
    """Any drawable spec survives the full optimized pipeline."""
    source = emit_minic(spec)
    result = compile_and_run(source, OptLevel.OPTIMIZED)
    assert result.exit_code == 0
    assert tuple(result.stdout) == evaluate_spec(spec)
