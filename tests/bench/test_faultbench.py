"""The ``faultbench`` job: chaos sweep artifact (BENCH_faults.json).

Byte-identical observables always gate.  The no-fault overhead bound
is asserted only outside CI (``CI`` env var unset): the modelled time
is deterministic, but the bound documents the contract that arming
resilience without faults stays within noise of the unarmed run.
"""

import json
import os

import pytest

from repro.evaluation.faultbench import (FAULTBENCH_SCHEMA,
                                         run_fault_bench)

pytestmark = pytest.mark.bench

#: Written for the CI artifact upload (repo root when run from there).
BENCH_OUT = os.environ.get("BENCH_FAULTS_OUT", "BENCH_faults.json")

#: Modelled-time overhead allowed for the armed-but-quiet schedule.
#: The launch gate's admission check is the only cost when no fault
#: fires; PR 4's streams numbers moved >5%, so 3% is "within noise".
NO_FAULT_OVERHEAD_BOUND = 1.03


@pytest.fixture(scope="module")
def sweep():
    return run_fault_bench()


def test_every_schedule_byte_identical(sweep):
    diverged = [f"{c.name}/{c.schedule}: {c.mismatches}"
                for c in sweep.comparisons if not c.ok]
    assert diverged == []
    assert sweep.workloads_identical == (24, 24)


def test_faults_actually_fired(sweep):
    """A sweep where nothing ever failed would prove nothing."""
    injected = sum(
        c.counters.get("injected_alloc_faults", 0)
        + c.counters.get("injected_transfer_faults", 0)
        + c.counters.get("injected_launch_faults", 0)
        for c in sweep.comparisons)
    assert injected > 0
    retries = sum(c.counters.get("fault_retries", 0)
                  for c in sweep.comparisons)
    assert retries > 0


def test_report_is_written(sweep):
    sweep.write(BENCH_OUT)
    with open(BENCH_OUT) as handle:
        payload = json.load(handle)
    assert payload["schema"] == FAULTBENCH_SCHEMA
    assert len(payload["runs"]) == 24 * 4
    assert payload["identical_workloads"] == "24/24"


def test_no_fault_overhead_within_noise(sweep):
    if os.environ.get("CI"):
        pytest.skip("overhead bound never gates CI; see "
                    "BENCH_faults.json artifact")
    assert sweep.max_overhead <= NO_FAULT_OVERHEAD_BOUND, sweep.render()
