"""The ``bench`` job: full engine sweep, perf trajectory artifact.

Divergence between the engines always fails.  The speedup floor is
asserted only outside CI (``CI`` env var unset): shared runners are
too noisy to gate on raw speed, but the checked-in
``BENCH_interp.json`` records the measured result.
"""

import json
import os

import pytest

from repro.core.config import OptLevel
from repro.evaluation.bench import BENCH_SCHEMA, run_engine_bench

pytestmark = pytest.mark.bench

#: Written for the CI artifact upload (repo root when run from there).
BENCH_OUT = os.environ.get("BENCH_OUT", "BENCH_interp.json")


@pytest.fixture(scope="module")
def sweep():
    return run_engine_bench(level=OptLevel.OPTIMIZED, repeat=1)


def test_no_engine_divergence(sweep):
    diverged = {c.name: c.mismatches for c in sweep.comparisons
                if not c.ok}
    assert diverged == {}
    assert len(sweep.comparisons) == 24


def test_report_is_written(sweep):
    sweep.write(BENCH_OUT)
    with open(BENCH_OUT) as handle:
        payload = json.load(handle)
    assert payload["schema"] == BENCH_SCHEMA
    assert len(payload["workloads"]) == 24
    assert payload["geomean_speedup"] > 0


def test_speedup_floor(sweep):
    if os.environ.get("CI"):
        pytest.skip("raw speed never gates CI; see BENCH_interp.json "
                    "artifact")
    # Source engine headline; the closure engine rides along as a
    # sanity floor so a silent fallback to it still fails loudly.
    assert sweep.geomean_speedup >= 8.0, sweep.render()
    assert sweep.geomean_of("compiled") >= 3.0, sweep.render()
