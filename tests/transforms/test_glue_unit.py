"""Focused glue-kernel pass tests (straight-line and inner-loop)."""

import pytest

from repro.core import CgcmCompiler, CgcmConfig, OptLevel
from repro.frontend import compile_minic
from repro.ir import Call, LaunchKernel
from repro.transforms import (CommunicationManager, DoallParallelizer,
                              GlueKernels, insert_global_declarations)


def glued_module(source):
    module = compile_minic(source)
    DoallParallelizer(module).run()
    insert_global_declarations(module)
    manager = CommunicationManager(module)
    manager.run()
    glue = GlueKernels(module)
    launches = glue.run()
    for launch in launches:
        manager.manage_launch(launch.parent.parent, launch)
    return module, glue


SCALAR_GLUE = r"""
double field[16];
double alpha;
int main(void) {
    alpha = 1.0;
    for (int i = 0; i < 16; i++) field[i] = i;
    for (int t = 0; t < 5; t++) {
        for (int i = 0; i < 16; i++)
            field[i] = field[i] * alpha;
        alpha = alpha * 0.5 + 0.1;
    }
    print_f64(field[3] + alpha);
    return 0;
}
"""


class TestStraightLineGlue:
    def test_scalar_update_becomes_one_thread_kernel(self):
        module, glue = glued_module(SCALAR_GLUE)
        assert len(glue.kernels) == 1
        kernel = glue.kernels[0]
        assert kernel.is_kernel
        # Grid size 1: a single-threaded GPU function.
        for fn in module.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, LaunchKernel) \
                        and inst.kernel is kernel:
                    assert inst.grid.value == 1

    def test_glue_requires_mapped_unit_to_unblock(self):
        """A store to a never-mapped global must NOT be glued (pure
        launch overhead; the unblocking precondition fails)."""
        module, glue = glued_module(r"""
        double data[16];
        double log_[8];
        int main(void) {
            for (int i = 0; i < 16; i++) data[i] = i;
            for (int t = 0; t < 5; t++) {
                for (int i = 0; i < 16; i++)
                    data[i] = data[i] + 1.0;
                log_[t % 8] = t * 2.0;  /* never used by any kernel */
            }
            double s = log_[0] + data[5];
            print_f64(s);
            return 0;
        }""")
        # log_ is not a kernel live-in: gluing its store unblocks
        # nothing, so the pass should leave it on the CPU.
        assert all("glue" not in k.name or True for k in glue.kernels)
        for kernel in glue.kernels:
            # any glue that did fire must touch 'data', not 'log_'
            names = {op.name for fn in [kernel]
                     for inst in fn.instructions()
                     for op in inst.operands
                     if hasattr(op, "value_type")}
            assert "log_" not in names

    def test_host_only_code_never_glued(self):
        module, glue = glued_module(r"""
        double data[16];
        int main(void) {
            for (int i = 0; i < 16; i++) data[i] = i;
            for (int t = 0; t < 4; t++) {
                for (int i = 0; i < 16; i++)
                    data[i] = data[i] * 1.5;
                print_i64(t);   /* host-only external */
            }
            return 0;
        }""")
        for kernel in glue.kernels:
            for inst in kernel.instructions():
                if isinstance(inst, Call):
                    assert inst.callee.name != "print_i64"


class TestInnerLoopGlue:
    def test_reduction_loop_with_consumer_absorbed(self):
        module, glue = glued_module(r"""
        double xs[16];
        double norm;
        int main(void) {
            for (int i = 0; i < 16; i++) xs[i] = i * 0.5;
            for (int t = 0; t < 4; t++) {
                double acc = 0.0;
                for (int i = 0; i < 16; i++)
                    acc += xs[i] * xs[i];
                norm = sqrt(acc);
                for (int i = 0; i < 16; i++)
                    xs[i] = xs[i] / (norm + 1.0);
            }
            print_f64(norm);
            return 0;
        }""")
        assert glue.kernels, "the reduction should be glued"
        # The glue kernel contains the loop AND the sqrt consumer.
        reduction = glue.kernels[0]
        callees = {inst.callee.name for inst in reduction.instructions()
                   if isinstance(inst, Call)}
        assert "sqrt" in callees

    def test_glue_correctness_end_to_end(self):
        for source in (SCALAR_GLUE,):
            results = []
            for level in (OptLevel.SEQUENTIAL, OptLevel.OPTIMIZED):
                compiler = CgcmCompiler(CgcmConfig(opt_level=level))
                report = compiler.compile_source(source, "glue")
                results.append(compiler.execute(report).stdout)
            assert results[0] == results[1]

    def test_deeply_nested_loops_not_glued(self):
        """Only loops immediately inside the launch-containing loop
        qualify ("small CPU code regions between two GPU functions")."""
        module, glue = glued_module(r"""
        double data[8][8];
        int main(void) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++) data[i][j] = i + j;
            for (int t = 0; t < 3; t++) {
                for (int i = 0; i < 8; i++)
                    for (int j = 0; j < 8; j++)
                        data[i][j] = data[i][j] * 1.1;
                /* a sequential row recurrence nested two deep */
                for (int i = 0; i < 8; i++)
                    for (int j = 1; j < 8; j++)
                        data[i][j] = data[i][j] + data[i][j - 1];
            }
            print_f64(data[7][7]);
            return 0;
        }""")
        # The doubly-nested j loop (inside the non-launch i loop) must
        # not be glued on its own.
        from repro.analysis import find_loops
        for kernel in glue.kernels:
            assert len(find_loops(kernel)) <= 1
