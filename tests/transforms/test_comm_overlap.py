"""Comm-overlap transform: hoisting, sinking, async rewrite, syncs."""

from repro.core.compiler import CgcmCompiler, compile_and_run
from repro.core.config import CgcmConfig, OptLevel
from repro.ir.instructions import Call, LaunchKernel
from repro.runtime.cgcm import (ASYNC_RUNTIME_FUNCTIONS, MAP_FUNCTIONS,
                                SYNC_FUNCTION, UNMAP_FUNCTIONS)

#: Two global arrays; A is initialized, then B, then a kernel reads A
#: and writes B, then the checksum prints from B.  Gives the overlap
#: pass independent CPU code on both sides of the communication.
TWO_ARRAYS = """
double A[128];
double B[128];

int main() {
  for (int i = 0; i < 128; i = i + 1) {
    A[i] = i * 0.5;
  }
  for (int r = 0; r < 3; r = r + 1) {
    for (int i = 0; i < 128; i = i + 1) {
      B[i] = A[i] * 2.0 + r;
    }
  }
  double sum = 0.0;
  for (int i = 0; i < 128; i = i + 1) {
    sum = sum + B[i];
  }
  print_f64(sum);
  return 0;
}
"""


def compile_streams(source, name="program"):
    compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED,
                                       streams=True))
    report = compiler.compile_source(source, name)
    return compiler, report


def runtime_calls(module):
    out = []
    for fn in module.defined_functions():
        for inst in fn.instructions():
            if isinstance(inst, Call):
                out.append(inst)
    return out


class TestRewrite:
    def test_moved_calls_become_async(self):
        _, report = compile_streams(TWO_ARRAYS)
        names = {c.callee.name for c in runtime_calls(report.module)}
        assert names & set(ASYNC_RUNTIME_FUNCTIONS)
        assert report.overlap_stats["async_rewrites"] > 0

    def test_stats_reported(self):
        _, report = compile_streams(TWO_ARRAYS)
        stats = report.overlap_stats
        for key in ("maps_hoisted", "block_hops", "unmaps_sunk",
                    "async_rewrites", "syncs_inserted"):
            assert key in stats
        assert stats["maps_hoisted"] > 0
        assert stats["unmaps_sunk"] > 0

    def test_without_streams_no_async_names(self):
        compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED))
        report = compiler.compile_source(TWO_ARRAYS, "serial")
        names = {c.callee.name for c in runtime_calls(report.module)}
        assert not names & set(ASYNC_RUNTIME_FUNCTIONS)
        assert report.overlap_stats == {}


class TestLegality:
    def test_map_never_crosses_launch(self):
        """Epoch semantics: no map/unmap call may have moved across a
        kernel launch, so within every block maps precede the first
        launch only if they did so legally -- spot-checked by the fact
        that each launch still has every operand's map before it."""
        _, report = compile_streams(TWO_ARRAYS)
        for fn in report.module.defined_functions():
            for block in fn.blocks:
                mapped_before = set()
                for inst in block.instructions:
                    if isinstance(inst, Call) \
                            and inst.callee.name in MAP_FUNCTIONS:
                        mapped_before.add(inst)
                    elif isinstance(inst, LaunchKernel):
                        for arg in inst.args:
                            if isinstance(arg, Call) \
                                    and arg.callee.name in MAP_FUNCTIONS \
                                    and arg.parent is block:
                                assert arg in mapped_before

    def test_map_never_crosses_registration(self):
        """Executing the transformed module must not fault: a map
        hoisted above its unit's declareGlobal would."""
        compiler, report = compile_streams(TWO_ARRAYS)
        result = compiler.execute(report)
        assert result.exit_code == 0

    def test_unmap_sink_keeps_release_glued(self):
        """Wherever an unmap sank, a release of the same pointer that
        followed it still follows it."""
        _, report = compile_streams(TWO_ARRAYS)
        for fn in report.module.defined_functions():
            for block in fn.blocks:
                insts = block.instructions
                for i, inst in enumerate(insts):
                    if isinstance(inst, Call) \
                            and inst.callee.name.startswith("release") \
                            and i > 0:
                        prev = insts[i - 1]
                        if isinstance(prev, Call) \
                                and prev.callee.name in UNMAP_FUNCTIONS \
                                and prev.args and inst.args:
                            assert prev.args[0] is inst.args[0]

    def test_verifier_accepts_transformed_module(self):
        from repro.ir.verifier import verify_module
        _, report = compile_streams(TWO_ARRAYS)
        verify_module(report.module)  # raises on breakage


class TestEquivalence:
    def test_observables_identical_and_critical_path_bounded(self):
        serial = compile_and_run(TWO_ARRAYS, OptLevel.OPTIMIZED)
        compiler, report = compile_streams(TWO_ARRAYS)
        streamed = compiler.execute(report)
        assert streamed.observable() == serial.observable()
        assert streamed.critical_path_seconds <= serial.total_seconds
        assert streamed.critical_path_seconds < streamed.total_seconds

    def test_sanitizer_clean_with_streams(self):
        compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED,
                                           streams=True, sanitize=True))
        report = compiler.compile_source(TWO_ARRAYS, "sanitized")
        result = compiler.execute(report)
        assert result.sanitizer_report is not None
        assert result.sanitizer_report.clean

    def test_lint_clean_with_streams(self):
        from repro.staticcheck.linter import lint_source
        report = lint_source(TWO_ARRAYS, "linted", streams=True)
        assert report.clean, [f.render() for f in report.findings]

    def test_engines_agree_under_streams(self):
        """Tree and compiled engines produce identical observables and
        identical stream schedules."""
        results = {}
        for engine in ("tree", "compiled"):
            compiler = CgcmCompiler(CgcmConfig(
                opt_level=OptLevel.OPTIMIZED, streams=True, engine=engine))
            report = compiler.compile_source(TWO_ARRAYS, engine)
            results[engine] = compiler.execute(report)
        tree, compiled = results["tree"], results["compiled"]
        assert tree.observable() == compiled.observable()
        assert tree.critical_path_seconds == compiled.critical_path_seconds
        assert tree.total_seconds == compiled.total_seconds


class TestSyncBarrier:
    #: The CPU reads B immediately after unmapping it in the same
    #: block: the transform must either not sink the unmap past the
    #: read or insert a cgcmSync in front of it.
    READ_AFTER_UNMAP = """
double A[64];
double B[64];

int main() {
  for (int i = 0; i < 64; i = i + 1) {
    A[i] = i * 1.0;
  }
  for (int r = 0; r < 2; r = r + 1) {
    for (int i = 0; i < 64; i = i + 1) {
      B[i] = A[i] + r;
    }
  }
  print_f64(B[0] + B[63]);
  return 0;
}
"""

    def test_reader_still_sees_written_back_bytes(self):
        serial = compile_and_run(self.READ_AFTER_UNMAP, OptLevel.OPTIMIZED)
        compiler, report = compile_streams(self.READ_AFTER_UNMAP)
        streamed = compiler.execute(report)
        assert streamed.observable() == serial.observable()

    def test_every_sync_follows_some_unmap(self):
        """Inserted cgcmSyncs are write-back barriers: each one has at
        least one unmap earlier in its own function."""
        _, report = compile_streams(self.READ_AFTER_UNMAP)
        for fn in report.module.defined_functions():
            unmap_seen = False
            for inst in fn.instructions():
                if not isinstance(inst, Call):
                    continue
                if inst.callee.name in UNMAP_FUNCTIONS:
                    unmap_seen = True
                elif inst.callee.name == SYNC_FUNCTION:
                    assert unmap_seen, "cgcmSync before any unmap"
