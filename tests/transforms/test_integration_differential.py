"""Differential testing: generated programs across all configurations.

Hypothesis composes random (but well-formed) MiniC programs out of
array-processing statement templates — some DOALL-able, some with
reductions or recurrences — and checks that the sequential,
unoptimized-CGCM, and optimized-CGCM configurations produce identical
observable output.  This is the repository's broadest correctness net:
it exercises the parallelizer's legality decisions, the communication
manager, and all three optimizations at once.
"""

from hypothesis import given, settings, strategies as st

from repro.core import CgcmCompiler, CgcmConfig, OptLevel
from repro.gpu.timing import CostModel

ARRAYS = ("A", "B", "C")
SIZE = 12

#: Statement templates over arrays A, B, C and time-step variable t.
TEMPLATES = (
    "for (int i = 0; i < 12; i++) {dst}[i] = {src}[i] * 0.5 + {k};",
    "for (int i = 0; i < 12; i++) {dst}[i] = {src}[i] + {src2}[11 - i];",
    "for (int i = 1; i < 12; i++) {dst}[i] = {dst}[i - 1] + {k};",
    "for (int i = 0; i < 12; i++) {{ double v = {src}[i]; "
    "{dst}[i] = v * v; }}",
    "for (int i = 0; i < 12; i += 2) {dst}[i] = {k};",
    "{{ double acc = 0.0; for (int i = 0; i < 12; i++) acc += {src}[i]; "
    "{dst}[0] = acc; }}",
    "for (int i = 0; i < 12; i++) if ({src}[i] > {k}) "
    "{dst}[i] = {src}[i]; else {dst}[i] = -{src}[i];",
    "for (int i = 0; i < 11; i++) {dst}[i] = "
    "({src}[i] + {src}[i + 1]) * 0.5;",
)

statement = st.builds(
    lambda template, dst, src, src2, k: template.format(
        dst=dst, src=src, src2=src2, k=f"{k}.0"),
    st.sampled_from(TEMPLATES),
    st.sampled_from(ARRAYS),
    st.sampled_from(ARRAYS),
    st.sampled_from(ARRAYS),
    st.integers(-3, 3),
)


def build_program(statements, timesteps):
    body = "\n        ".join(statements)
    decls = "\n".join(f"double {name}[{SIZE}];" for name in ARRAYS)
    return f"""
{decls}

int main(void) {{
    for (int i = 0; i < {SIZE}; i++) {{
        A[i] = i * 0.25;
        B[i] = ({SIZE} - i) * 0.5;
        C[i] = (i % 3) * 1.5;
    }}
    for (int t = 0; t < {timesteps}; t++) {{
        {body}
    }}
    double cs = 0.0;
    for (int i = 0; i < {SIZE}; i++)
        cs += A[i] * (i + 1) + B[i] * 0.5 + C[i] * 0.25;
    print_f64(cs);
    return 0;
}}
"""


@settings(max_examples=25, deadline=None)
@given(st.lists(statement, min_size=1, max_size=4),
       st.integers(1, 3))
def test_random_programs_agree_across_configurations(statements,
                                                     timesteps):
    source = build_program(statements, timesteps)
    observations = []
    for level in (OptLevel.SEQUENTIAL, OptLevel.UNOPTIMIZED,
                  OptLevel.OPTIMIZED):
        # Parallelized levels run sanitizer-armed: the communication
        # the pipeline inserts must be sound, not merely produce the
        # right bytes.
        sanitize = level is not OptLevel.SEQUENTIAL
        compiler = CgcmCompiler(CgcmConfig(opt_level=level,
                                           sanitize=sanitize))
        report = compiler.compile_source(source, "generated")
        result = compiler.execute(report)
        if sanitize:
            assert result.sanitizer_report.clean, \
                f"{result.sanitizer_report.summary()}\n{source}"
        observations.append(result.observable())
    assert observations[0] == observations[1], \
        f"management broke the program:\n{source}"
    assert observations[0] == observations[2], \
        f"optimization broke the program:\n{source}"


@settings(max_examples=10, deadline=None)
@given(st.lists(statement, min_size=2, max_size=4))
def test_optimization_never_slower_on_generated_programs(statements):
    """Optimization may not regress beyond a bounded, explainable slack.

    On N=12 programs where a non-DOALL statement keeps the host in the
    loop, glue kernels can fire without making communication acyclic,
    costing up to a few extra transfer pairs and glue launches over
    the unoptimized schedule.  That overhead is fixed-latency, not
    proportional, so the bound is relative 2% plus an absolute slack
    of four transfers and four launches from the cost model.
    """
    source = build_program(statements, timesteps=3)
    model = CostModel()
    slack = (4 * model.transfer_latency_s
             + 4 * model.kernel_launch_latency_s)
    times = {}
    for level in (OptLevel.UNOPTIMIZED, OptLevel.OPTIMIZED):
        compiler = CgcmCompiler(CgcmConfig(opt_level=level,
                                           cost_model=model))
        report = compiler.compile_source(source, "generated")
        times[level] = compiler.execute(report).total_seconds
    assert times[OptLevel.OPTIMIZED] <= \
        times[OptLevel.UNOPTIMIZED] * 1.02 + slack, source
