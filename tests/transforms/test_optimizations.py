"""Map promotion, alloca promotion, and glue kernel tests (paper §5)."""

import pytest

from repro.core import CgcmCompiler, CgcmConfig, OptLevel
from repro.frontend import compile_minic
from repro.ir import Call, verify_module
from repro.transforms import (AllocaPromotion, DoallParallelizer,
                              GlueKernels, MapPromotion,
                              insert_communication,
                              insert_global_declarations)


def build(source, optimize=True, **toggles):
    config = CgcmConfig(
        opt_level=OptLevel.OPTIMIZED if optimize else OptLevel.UNOPTIMIZED,
        **toggles)
    compiler = CgcmCompiler(config)
    report = compiler.compile_source(source)
    result = compiler.execute(report)
    return report, result


TIME_LOOP = """
double grid[16];
int main(void) {
    for (int i = 0; i < 16; i++) grid[i] = i;
    for (int t = 0; t < 6; t++) {
        for (int i = 0; i < 16; i++) grid[i] = grid[i] * 0.9 + 1.0;
    }
    double s = 0.0;
    for (int i = 0; i < 16; i++) s += grid[i];
    print_f64(s);
    return 0;
}
"""


class TestMapPromotion:
    def test_copies_collapse_to_one_round_trip(self):
        _, unopt = build(TIME_LOOP, optimize=False)
        report, opt = build(TIME_LOOP)
        assert unopt.observable() == opt.observable()
        # Unoptimized: one HtoD per launch (init + 6 iterations).
        assert unopt.counters["htod_copies"] == 7
        # Optimized: the array crosses once in each direction per region.
        assert opt.counters["htod_copies"] <= 2
        assert opt.counters["dtoh_copies"] <= 2
        assert report.promoted_loops >= 1

    def test_cpu_read_in_loop_blocks_promotion(self):
        source = """
        double grid[16];
        int main(void) {
            for (int i = 0; i < 16; i++) grid[i] = i;
            double watch = 0.0;
            for (int t = 0; t < 6; t++) {
                for (int i = 0; i < 16; i++) grid[i] = grid[i] + 1.0;
                watch += grid[0] * t;   /* CPU read forces cyclic comm */
                srand((long) watch);    /* keep it un-glueable */
            }
            print_f64(watch);
            return 0;
        }
        """
        _, unopt = build(source, optimize=False)
        _, opt = build(source)
        assert unopt.observable() == opt.observable()
        # DtoH must still happen every iteration.
        assert opt.counters["dtoh_copies"] >= 6

    def test_promotion_climbs_call_graph(self):
        source = """
        double field[16];
        void step(void) {
            for (int i = 0; i < 16; i++) field[i] = field[i] + 1.0;
        }
        int main(void) {
            for (int i = 0; i < 16; i++) field[i] = 0.0;
            for (int t = 0; t < 5; t++) step();
            print_f64(field[3]);
            return 0;
        }
        """
        report, opt = build(source)
        _, unopt = build(source, optimize=False)
        assert unopt.observable() == opt.observable()
        assert report.promoted_functions >= 1
        assert opt.counters["htod_copies"] < unopt.counters["htod_copies"]

    def test_pass_is_idempotent(self):
        module = compile_minic(TIME_LOOP)
        DoallParallelizer(module).run()
        insert_global_declarations(module)
        insert_communication(module)
        promo = MapPromotion(module)
        promo.run()
        first = promo.promoted_loops
        again = MapPromotion(module)
        again.run()
        assert again.promoted_loops == 0
        verify_module(module)


class TestAllocaPromotion:
    SOURCE = """
    void smooth(long n) {
        double tmp[16];
        for (int i = 0; i < 16; i++) tmp[i] = i * n;
        double s = 0.0;
        for (int i = 0; i < 16; i++) s += tmp[i];
        print_f64(s);
    }
    int main(void) {
        for (int t = 0; t < 3; t++) smooth(t);
        return 0;
    }
    """

    def test_preallocates_in_caller(self):
        module = compile_minic(self.SOURCE)
        DoallParallelizer(module).run()
        insert_global_declarations(module)
        insert_communication(module)
        promo = AllocaPromotion(module)
        promo.run()
        verify_module(module)
        assert promo.promoted >= 1
        main = module.get_function("main")
        smooth = module.get_function("smooth")
        main_declares = [i for i in main.instructions()
                         if isinstance(i, Call)
                         and i.callee.name == "declareAlloca"]
        smooth_declares = [i for i in smooth.instructions()
                           if isinstance(i, Call)
                           and i.callee.name == "declareAlloca"]
        assert main_declares and not smooth_declares
        assert len(smooth.args) >= 2  # gained the prealloc parameter

    def test_behaviour_preserved(self):
        _, unopt = build(self.SOURCE, optimize=False)
        _, opt = build(self.SOURCE)
        assert unopt.observable() == opt.observable()

    def test_recursive_functions_skipped(self):
        source = """
        double out[8];
        void spin(long depth) {
            double tmp[8];
            for (int i = 0; i < 8; i++) tmp[i] = depth;
            for (int i = 0; i < 8; i++) out[i] = out[i] + tmp[i];
            if (depth > 0) spin(depth - 1);
        }
        int main(void) { spin(2); print_f64(out[0]); return 0; }
        """
        module = compile_minic(source)
        DoallParallelizer(module).run()
        insert_global_declarations(module)
        insert_communication(module)
        promo = AllocaPromotion(module)
        promo.run()
        spin = module.get_function("spin")
        own_declares = [i for i in spin.instructions()
                        if isinstance(i, Call)
                        and i.callee.name == "declareAlloca"]
        # Recursion: the declareAlloca must stay inside spin.
        assert own_declares


class TestGlueKernels:
    SOURCE = """
    double field[16];
    double alpha;
    int main(void) {
        alpha = 1.0;
        for (int i = 0; i < 16; i++) field[i] = i;
        for (int t = 0; t < 5; t++) {
            for (int i = 0; i < 16; i++)
                field[i] = field[i] * alpha;
            alpha = alpha * 0.5 + 0.1;   /* CPU glue between launches */
        }
        print_f64(field[5] + alpha);
        return 0;
    }
    """

    def test_scalar_update_outlined(self):
        report, opt = build(self.SOURCE)
        assert report.glue_kernels
        _, unopt = build(self.SOURCE, optimize=False)
        assert unopt.observable() == opt.observable()

    def test_glue_enables_promotion(self):
        _, with_glue = build(self.SOURCE)
        _, without_glue = build(self.SOURCE, enable_glue_kernels=False)
        assert with_glue.observable() == without_glue.observable()
        assert with_glue.counters["htod_copies"] < \
            without_glue.counters["htod_copies"]

    def test_reduction_loop_outlined(self):
        source = """
        double data[16];
        double total;
        int main(void) {
            for (int i = 0; i < 16; i++) data[i] = i * 0.5;
            for (int t = 0; t < 4; t++) {
                double acc = 0.0;
                for (int i = 0; i < 16; i++) acc += data[i];
                total = acc;
                for (int i = 0; i < 16; i++)
                    data[i] = data[i] + total * 0.01;
            }
            print_f64(total);
            return 0;
        }
        """
        report, opt = build(source)
        _, unopt = build(source, optimize=False)
        assert unopt.observable() == opt.observable()
        assert report.glue_kernels
        # With the reduction on the GPU, data stays resident.
        assert opt.counters["htod_copies"] < unopt.counters["htod_copies"]
