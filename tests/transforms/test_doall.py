"""DOALL parallelizer tests: legality, outlining, correctness."""

import pytest

from repro.frontend import compile_minic
from repro.interp import Machine
from repro.ir import verify_module, LaunchKernel
from repro.runtime import CgcmRuntime
from repro.transforms import (DoallParallelizer, insert_communication,
                              insert_global_declarations)


def parallelize(source):
    module = compile_minic(source)
    kernels = DoallParallelizer(module).run()
    return module, kernels


def run_both(source):
    """Sequential result vs parallelized+managed result."""
    seq = Machine(compile_minic(source))
    seq_code = seq.run()

    module, kernels = parallelize(source)
    insert_global_declarations(module)
    insert_communication(module)
    verify_module(module)
    machine = Machine(module)
    CgcmRuntime(machine)
    code = machine.run()
    assert (seq_code, seq.stdout) == (code, machine.stdout)
    return kernels, machine


class TestLegality:
    def test_independent_writes_parallelized(self):
        _, kernels = parallelize("""
        double A[16];
        int main(void) {
            for (int i = 0; i < 16; i++) A[i] = i * 2.0;
            return 0;
        }""")
        assert len(kernels) == 1

    def test_reduction_rejected(self):
        _, kernels = parallelize("""
        double A[16];
        int main(void) {
            double total = 0.0;
            for (int i = 0; i < 16; i++) total += A[i];
            return (int) total;
        }""")
        assert kernels == []

    def test_recurrence_rejected(self):
        _, kernels = parallelize("""
        double A[16];
        int main(void) {
            for (int i = 1; i < 16; i++) A[i] = A[i - 1] + 1.0;
            return 0;
        }""")
        assert kernels == []

    def test_outer_loop_chosen_over_inner(self):
        module, kernels = parallelize("""
        double M[8][8];
        int main(void) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++)
                    M[i][j] = i + j;
            return 0;
        }""")
        assert len(kernels) == 1
        # The launch sits directly in main; the kernel runs the j loop.
        main = module.get_function("main")
        launches = [i for i in main.instructions()
                    if isinstance(i, LaunchKernel)]
        assert len(launches) == 1
        from repro.analysis import find_loops
        assert len(find_loops(kernels[0])) == 1  # inner loop in kernel
        assert find_loops(main) == []

    def test_inner_doall_when_outer_carries_dependence(self):
        module, kernels = parallelize("""
        double y[8];
        double A[8][8];
        int main(void) {
            for (int i = 0; i < 8; i++)        /* accumulates into y */
                for (int j = 0; j < 8; j++)
                    y[j] = y[j] + A[i][j];
            return 0;
        }""")
        assert len(kernels) == 1
        from repro.analysis import find_loops
        main = module.get_function("main")
        assert len(find_loops(main)) == 1  # the i loop survives on CPU

    def test_stencil_outer_rejected_inner_allowed(self):
        source = """
        double M[8][8];
        int main(void) {
            for (int i = 1; i < 7; i++)
                for (int j = 1; j < 7; j++)
                    M[i][j] = (M[i-1][j] + M[i+1][j]) / 2.0;
            return 0;
        }"""
        module, kernels = parallelize(source)
        # The i loop carries a dependence (rows feed each other), but
        # for a fixed row the j loop touches disjoint columns: the
        # parallelizer must keep i sequential and outline only j.
        assert len(kernels) == 1
        from repro.analysis import find_loops
        main = module.get_function("main")
        assert len(find_loops(main)) == 1  # the i loop stays on the CPU
        run_both(source)

    def test_call_to_host_external_rejected(self):
        _, kernels = parallelize("""
        double A[4];
        int main(void) {
            for (int i = 0; i < 4; i++) {
                A[i] = 1.0;
                print_i64(i);
            }
            return 0;
        }""")
        assert kernels == []

    def test_math_externals_allowed(self):
        _, kernels = parallelize("""
        double A[4];
        int main(void) {
            for (int i = 0; i < 4; i++) A[i] = sqrt(i + 1.0);
            return 0;
        }""")
        assert len(kernels) == 1

    def test_loop_with_break_rejected(self):
        _, kernels = parallelize("""
        double A[8];
        int main(void) {
            for (int i = 0; i < 8; i++) {
                if (i == 5) break;
                A[i] = i;
            }
            return 0;
        }""")
        assert kernels == []


class TestCorrectness:
    def test_triangular_start(self):
        run_both("""
        double M[8][8];
        int main(void) {
            for (int k = 0; k < 8; k++)
                for (int j = k; j < 8; j++)
                    M[k][j] = k * 10.0 + j;
            double s = 0.0;
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++) s += M[i][j];
            print_f64(s);
            return 0;
        }""")

    def test_strided_loop(self):
        kernels, machine = run_both("""
        double A[32];
        int main(void) {
            for (int i = 0; i < 32; i += 4) A[i] = i;
            double s = 0.0;
            for (int i = 0; i < 32; i++) s += A[i];
            print_f64(s);
            return 0;
        }""")
        assert kernels

    def test_variable_bounds_from_param(self):
        run_both("""
        double A[16];
        void fill(long n, double v) {
            for (int i = 0; i < n; i++) A[i] = v;
        }
        int main(void) {
            fill(10, 2.5);
            double s = 0.0;
            for (int i = 0; i < 16; i++) s += A[i];
            print_f64(s);
            return 0;
        }""")

    def test_privatized_scalars(self):
        run_both("""
        double out[8];
        double weights[8];
        int main(void) {
            for (int i = 0; i < 8; i++) weights[i] = i * 0.5;
            for (int i = 0; i < 8; i++) {
                double acc = 0.0;
                for (int k = 0; k < 8; k++)
                    acc += weights[k] * (i + 1);
                out[i] = acc;
            }
            double s = 0.0;
            for (int i = 0; i < 8; i++) s += out[i];
            print_f64(s);
            return 0;
        }""")

    def test_read_only_scalar_passed_by_value(self):
        run_both("""
        double A[8];
        int main(void) {
            double scale_factor = 1.5;
            long offset = 3;
            for (int i = 0; i < 8; i++)
                A[i] = i * scale_factor + offset;
            double s = 0.0;
            for (int i = 0; i < 8; i++) s += A[i];
            print_f64(s);
            return 0;
        }""")

    def test_induction_variable_final_value(self):
        run_both("""
        double A[8];
        int main(void) {
            int i;
            for (i = 0; i < 8; i++) A[i] = 1.0;
            print_i64(i);   /* must be 8 after the loop */
            return 0;
        }""")

    def test_empty_trip_count(self):
        run_both("""
        double A[4];
        int main(void) {
            long n = 0;
            for (int i = 0; i < n; i++) A[i] = 99.0;
            print_f64(A[0]);
            return 0;
        }""")

    def test_heap_array(self):
        run_both("""
        int main(void) {
            double *xs = (double *) malloc(16 * sizeof(double));
            for (int i = 0; i < 16; i++) xs[i] = i * 3.0;
            double s = 0.0;
            for (int i = 0; i < 16; i++) s += xs[i];
            free(xs);
            print_f64(s);
            return 0;
        }""")

    def test_escaping_stack_array(self):
        run_both("""
        int main(void) {
            double buffer[12];
            for (int i = 0; i < 12; i++) buffer[i] = i + 0.25;
            double s = 0.0;
            for (int i = 0; i < 12; i++) s += buffer[i];
            print_f64(s);
            return 0;
        }""")
