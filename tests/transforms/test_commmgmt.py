"""Communication-management insertion tests (paper section 4)."""

import pytest

from repro.errors import CgcmUnsupportedError
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.ir import Call, LaunchKernel, verify_module
from repro.runtime import CgcmRuntime
from repro.transforms import (CommunicationManager, DoallParallelizer,
                              insert_communication,
                              insert_global_declarations)


def managed_module(source):
    module = compile_minic(source)
    DoallParallelizer(module).run()
    insert_global_declarations(module)
    manager = insert_communication(module)
    verify_module(module)
    return module, manager


def calls_named(fn, name):
    return [i for i in fn.instructions()
            if isinstance(i, Call) and i.callee.name == name]


class TestInsertion:
    SOURCE = """
    double A[8];
    int main(void) {
        for (int i = 0; i < 8; i++) A[i] = i;
        return 0;
    }
    """

    def test_map_unmap_release_trio(self):
        module, manager = managed_module(self.SOURCE)
        main = module.get_function("main")
        assert len(calls_named(main, "map")) == 1
        assert len(calls_named(main, "unmap")) == 1
        assert len(calls_named(main, "release")) == 1

    def test_trio_ordering_around_launch(self):
        module, _ = managed_module(self.SOURCE)
        main = module.get_function("main")
        block = [i for i in main.instructions()
                 if isinstance(i, LaunchKernel)][0].parent
        names = [i.callee.name if isinstance(i, Call) else i.opcode
                 for i in block.instructions]
        launch_at = names.index("launch")
        assert "map" in names[:launch_at]
        after = names[launch_at:]
        assert after.index("unmap") < after.index("release")

    def test_declare_globals_inserted_before_everything(self):
        module, _ = managed_module(self.SOURCE)
        main = module.get_function("main")
        declares = calls_named(main, "declareGlobal")
        assert declares
        # Registration happens in the entry block, ahead of all other
        # calls (only its own address computations precede it).
        entry = main.entry_block
        assert declares[0].parent is entry
        other_calls = [i for i in entry.instructions if isinstance(i, Call)
                       and i.callee.name != "declareGlobal"]
        for other in other_calls:
            assert entry.index(declares[0]) < entry.index(other)

    def test_scalar_args_not_mapped(self):
        module, manager = managed_module("""
        double A[8];
        int main(void) {
            double bias = 2.0;
            for (int i = 0; i < 8; i++) A[i] = i * bias;
            return 0;
        }""")
        main = module.get_function("main")
        # Only the array is mapped; the scalar travels by value.
        assert len(calls_named(main, "map")) == 1

    def test_jagged_array_uses_map_array(self):
        # Writing through loaded pointers defeats the simple DOALL's
        # dependence test (as in the paper), so launch manually: the
        # communication manager must still pick mapArray via type
        # inference on the kernel.
        module, _ = managed_module("""
        char *rows[4];
        __global__ void poke(long tid, char **rs) {
            char *row = rs[tid];
            row[0] = (char) tid;
        }
        int main(void) {
            for (int r = 0; r < 4; r++)
                rows[r] = (char *) malloc(16);
            __launch(poke, 4, rows);
            return 0;
        }""")
        main = module.get_function("main")
        assert calls_named(main, "mapArray")
        assert calls_named(main, "unmapArray")
        assert calls_named(main, "releaseArray")

    def test_escaping_alloca_becomes_declare_alloca(self):
        module, _ = managed_module("""
        int main(void) {
            double buffer[8];
            for (int i = 0; i < 8; i++) buffer[i] = i;
            double s = 0.0;
            for (int i = 0; i < 8; i++) s += buffer[i];
            print_f64(s);
            return 0;
        }""")
        main = module.get_function("main")
        assert calls_named(main, "declareAlloca")
        from repro.ir import Alloca
        # The escaping array alloca is gone (scalars may remain).
        arrays = [i for i in main.instructions() if isinstance(i, Alloca)
                  and i.allocated_type.is_aggregate]
        assert arrays == []

    def test_triple_indirection_rejected_at_compile_time(self):
        module = compile_minic("""
        char ***deep;
        __global__ void k(long tid, char ***d) {
            char **mid = d[tid];
            char *leaf = mid[0];
            leaf[0] = 1;
        }
        int main(void) {
            __launch(k, 1, deep);
            return 0;
        }""")
        insert_global_declarations(module)
        with pytest.raises(CgcmUnsupportedError):
            insert_communication(module)


class TestManagedExecution:
    def test_managed_run_matches_sequential(self):
        source = """
        double A[8];
        double B[8];
        int main(void) {
            for (int i = 0; i < 8; i++) { A[i] = i; B[i] = 2 * i; }
            for (int i = 0; i < 8; i++) A[i] = A[i] + B[i];
            double s = 0.0;
            for (int i = 0; i < 8; i++) s += A[i];
            print_f64(s);
            return 0;
        }
        """
        seq = Machine(compile_minic(source))
        seq.run()
        module, _ = managed_module(source)
        machine = Machine(module)
        CgcmRuntime(machine)
        machine.run()
        assert machine.stdout == seq.stdout

    def test_all_device_memory_released(self):
        module, _ = managed_module("""
        double A[8];
        int main(void) {
            for (int i = 0; i < 8; i++) A[i] = i;
            return 0;
        }""")
        machine = Machine(module)
        CgcmRuntime(machine)
        machine.run()
        assert machine.device.live_allocations == 0
